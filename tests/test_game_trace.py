"""Tests for trace recording, persistence and replay cursors."""

import pytest

from repro.game.trace import GameTrace, ShotEvent, TraceCursor


class TestRecording:
    def test_record_frame_validates_player_count(self, small_trace):
        trace = GameTrace(map_name="x", num_players=3)
        with pytest.raises(ValueError):
            trace.record_frame(dict(small_trace.frames[0]))  # 8 players

    def test_player_ids_sorted(self, small_trace):
        ids = small_trace.player_ids()
        assert ids == sorted(ids)

    def test_empty_trace_has_no_players(self):
        trace = GameTrace(map_name="x", num_players=3)
        assert trace.player_ids() == []

    def test_positions_of_length(self, small_trace):
        track = small_trace.positions_of(0)
        assert len(track) == small_trace.num_frames

    def test_shots_in_frame(self, small_trace):
        if not small_trace.shots:
            pytest.skip("no shots")
        frame = small_trace.shots[0].frame
        assert all(s.frame == frame for s in small_trace.shots_in_frame(frame))

    def test_kills_in_frame(self, medium_trace):
        if not medium_trace.kills:
            pytest.skip("no kills")
        frame = medium_trace.kills[0].frame
        assert medium_trace.kills_in_frame(frame)


class TestPersistence:
    def test_jsonl_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        small_trace.save_jsonl(path)
        loaded = GameTrace.load_jsonl(path)
        assert loaded.map_name == small_trace.map_name
        assert loaded.num_players == small_trace.num_players
        assert loaded.num_frames == small_trace.num_frames
        assert loaded.seed == small_trace.seed
        for frame in (0, 80, 159):
            for pid in small_trace.player_ids():
                assert loaded.snapshot(frame, pid) == small_trace.snapshot(
                    frame, pid
                )
        assert loaded.shots == small_trace.shots
        assert loaded.kills == small_trace.kills
        assert len(loaded.events) == len(small_trace.events)

    def test_load_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "frame", "frame": 0, "avatars": []}\n')
        with pytest.raises(ValueError, match="header"):
            GameTrace.load_jsonl(path)

    def test_load_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            GameTrace.load_jsonl(path)

    def test_load_unknown_row_type_rejected(self, tmp_path, small_trace):
        path = tmp_path / "weird.jsonl"
        small_trace.save_jsonl(path)
        with path.open("a") as handle:
            handle.write('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="mystery"):
            GameTrace.load_jsonl(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            '{"type": "header", "version": 99, "map": "m", "players": 2,'
            ' "frame_seconds": 0.05, "seed": 0}\n'
        )
        with pytest.raises(ValueError, match="version"):
            GameTrace.load_jsonl(path)


class TestCursor:
    def test_iterates_all_frames(self, small_trace):
        frames = list(TraceCursor(small_trace))
        assert len(frames) == small_trace.num_frames
        assert frames[0][0] == 0
        assert frames[-1][0] == small_trace.num_frames - 1

    def test_start_frame(self, small_trace):
        cursor = TraceCursor(small_trace, start_frame=100)
        frame, _ = next(cursor)
        assert frame == 100

    def test_out_of_range_start_rejected(self, small_trace):
        with pytest.raises(ValueError):
            TraceCursor(small_trace, start_frame=10_000)

    def test_peek_does_not_advance(self, small_trace):
        cursor = TraceCursor(small_trace)
        peeked = cursor.peek()
        frame, snapshots = next(cursor)
        assert frame == 0
        assert peeked is snapshots

    def test_peek_past_end_returns_none(self, small_trace):
        cursor = TraceCursor(small_trace, start_frame=small_trace.num_frames)
        assert cursor.peek() is None

    def test_exhausted_cursor_stops(self, small_trace):
        cursor = TraceCursor(small_trace, start_frame=small_trace.num_frames)
        with pytest.raises(StopIteration):
            next(cursor)
