"""Unit tests for interest management (IS/VS/Others)."""

import math

import pytest

from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import make_arena, make_longest_yard
from repro.game.interest import (
    InteractionRecency,
    InterestConfig,
    SetKind,
    attention_score,
    compute_sets,
    in_vision_cone,
)
from repro.game.vector import Vec3


def snap(player_id, x=0.0, y=0.0, z=0.0, yaw=0.0, alive=True, frame=0):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=Vec3(x, y, z),
        velocity=Vec3(),
        yaw=yaw,
        health=100,
        armor=0,
        weapon="machinegun",
        ammo=100,
        alive=alive,
    )


class TestConfig:
    def test_negative_interest_size_rejected(self):
        with pytest.raises(ValueError):
            InterestConfig(interest_size=-1)

    def test_bad_angle_rejected(self):
        with pytest.raises(ValueError):
            InterestConfig(vision_half_angle=0.0)

    def test_effective_half_angle_includes_slack(self):
        config = InterestConfig()
        assert config.effective_half_angle > config.vision_half_angle

    def test_effective_half_angle_capped_at_pi(self):
        config = InterestConfig(
            vision_half_angle=math.pi, vision_slack=math.pi
        )
        assert config.effective_half_angle == math.pi


class TestVisionCone:
    def setup_method(self):
        self.config = InterestConfig()

    def test_target_dead_ahead(self):
        assert in_vision_cone(snap(0, yaw=0.0), snap(1, x=500), self.config)

    def test_target_behind(self):
        assert not in_vision_cone(snap(0, yaw=0.0), snap(1, x=-500), self.config)

    def test_target_beyond_radius(self):
        far = self.config.vision_radius + 100
        assert not in_vision_cone(snap(0), snap(1, x=far), self.config)

    def test_slack_enlarges_cone(self):
        # Place the target just past the raw half-angle but inside slack.
        angle = self.config.vision_half_angle + self.config.vision_slack / 2
        target = snap(1, x=500 * math.cos(angle), y=500 * math.sin(angle))
        assert in_vision_cone(snap(0), target, self.config, slack=True)
        assert not in_vision_cone(snap(0), target, self.config, slack=False)

    def test_same_position_not_visible(self):
        assert not in_vision_cone(snap(0), snap(1), self.config)


class TestAttention:
    def setup_method(self):
        self.config = InterestConfig()

    def test_closer_is_more_interesting(self):
        me = snap(0)
        assert attention_score(me, snap(1, x=100), 0, self.config) > attention_score(
            me, snap(2, x=1000), 0, self.config
        )

    def test_aimed_at_is_more_interesting(self):
        me = snap(0, yaw=0.0)
        ahead = snap(1, x=500)
        side = snap(2, y=500)
        assert attention_score(me, ahead, 0, self.config) > attention_score(
            me, side, 0, self.config
        )

    def test_recent_interaction_boosts(self):
        me = snap(0)
        target = snap(1, x=500)
        recency = InteractionRecency()
        base = attention_score(me, target, 100, self.config, recency)
        recency.record(0, 1, 99)
        boosted = attention_score(me, target, 100, self.config, recency)
        assert boosted > base

    def test_recency_decays(self):
        recency = InteractionRecency()
        recency.record(0, 1, 0)
        early = recency.score(0, 1, 10, halflife=60)
        late = recency.score(0, 1, 300, halflife=60)
        assert early > late > 0.0

    def test_recency_symmetric_pairs(self):
        recency = InteractionRecency()
        recency.record(5, 2, 10)
        assert recency.frames_since(2, 5, 15) == 5

    def test_recency_unknown_pair(self):
        recency = InteractionRecency()
        assert recency.frames_since(0, 1, 10) is None
        assert recency.score(0, 1, 10, 60) == 0.0


class TestComputeSets:
    def setup_method(self):
        self.arena = make_arena()
        self.config = InterestConfig(interest_size=2)

    def test_partition_is_complete_and_disjoint(self):
        everyone = {i: snap(i, x=i * 100.0) for i in range(8)}
        sets = compute_sets(everyone[0], everyone, self.arena, 0, self.config)
        union = sets.interest | sets.vision | sets.others
        assert union == set(range(1, 8))
        assert not (sets.interest & sets.vision)
        assert not (sets.interest & sets.others)
        assert not (sets.vision & sets.others)

    def test_interest_size_respected(self):
        everyone = {i: snap(i, x=100.0 + i * 50.0) for i in range(10)}
        everyone[0] = snap(0)
        sets = compute_sets(everyone[0], everyone, self.arena, 0, self.config)
        assert len(sets.interest) <= 2

    def test_top_attention_in_interest(self):
        everyone = {
            0: snap(0, yaw=0.0),
            1: snap(1, x=150),  # closest, dead ahead
            2: snap(2, x=900),
            3: snap(3, x=1500),
        }
        sets = compute_sets(everyone[0], everyone, self.arena, 0, self.config)
        assert 1 in sets.interest

    def test_player_behind_is_other(self):
        everyone = {0: snap(0, yaw=0.0), 1: snap(1, x=-500)}
        sets = compute_sets(everyone[0], everyone, self.arena, 0, self.config)
        assert sets.kind_of(1) == SetKind.OTHER

    def test_dead_player_is_other(self):
        everyone = {0: snap(0), 1: snap(1, x=300, alive=False)}
        sets = compute_sets(everyone[0], everyone, self.arena, 0, self.config)
        assert 1 in sets.others

    def test_occluded_player_is_other(self):
        yard = make_longest_yard()
        # Player 1 hidden behind the east pillar.
        everyone = {0: snap(0, x=100, yaw=0.0), 1: snap(1, x=400)}
        sets = compute_sets(everyone[0], everyone, yard, 0, InterestConfig())
        assert sets.kind_of(1) == SetKind.OTHER

    def test_is_members_removed_from_vision(self):
        # More visible players than the IS can hold: the spill-over stays
        # VS.  The row sits at y=-800 to stay clear of the arena pillars.
        everyone = {0: snap(0, y=-800.0, yaw=0.0)}
        for i in range(1, 6):
            everyone[i] = snap(i, x=200.0 * i, y=-800.0)
        sets = compute_sets(everyone[0], everyone, self.arena, 0, self.config)
        assert len(sets.interest) == 2
        assert len(sets.vision) == 3

    def test_kind_of_reports_all_three(self):
        everyone = {
            0: snap(0, y=-800.0, yaw=0.0),
            1: snap(1, x=200, y=-800.0),
            2: snap(2, x=400, y=-800.0),
            3: snap(3, x=600, y=-800.0),
            4: snap(4, x=-500, y=-800.0),
        }
        sets = compute_sets(everyone[0], everyone, self.arena, 0, self.config)
        kinds = {sets.kind_of(i) for i in (1, 2, 3, 4)}
        assert kinds == {SetKind.INTEREST, SetKind.VISION, SetKind.OTHER}

    def test_all_ids_covers_roster(self):
        everyone = {i: snap(i, x=i * 120.0) for i in range(6)}
        sets = compute_sets(everyone[0], everyone, self.arena, 0, self.config)
        assert sets.all_ids() == frozenset(range(1, 6))
