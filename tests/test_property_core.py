"""Property-based tests (hypothesis) for core invariants: PRNG, proxy
schedule, signatures, disclosure algebra, event queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.disclosure import (
    ExposureCategory,
    InfoLevel,
    coalition_category,
)
from repro.core.proxy import ProxySchedule
from repro.crypto.prng import VerifiablePrng, draw_uint
from repro.crypto.signatures import HmacSigner
from repro.net.events import EventQueue

info_levels = st.sampled_from(InfoLevel.ALL)
seeds = st.binary(min_size=1, max_size=16)


class TestPrngProperties:
    @given(seeds, st.integers(0, 1000), st.integers(0, 1000))
    def test_draws_are_pure_functions(self, seed, player, counter):
        assert draw_uint(seed, player, counter) == draw_uint(
            seed, player, counter
        )

    @given(seeds, st.integers(0, 100), st.integers(2, 97))
    def test_bounded_draws_in_range(self, seed, counter, bound):
        prng = VerifiablePrng(seed, 0)
        value = prng.below_at(counter, bound)
        assert 0 <= value < bound

    @given(seeds, seeds)
    def test_distinct_seeds_usually_differ(self, seed_a, seed_b):
        if seed_a == seed_b:
            return
        draws_a = [draw_uint(seed_a, 0, i) for i in range(4)]
        draws_b = [draw_uint(seed_b, 0, i) for i in range(4)]
        assert draws_a != draws_b


class TestProxyScheduleProperties:
    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=50),
        seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_any_roster(self, size, epoch, seed):
        roster = list(range(size))
        schedule = ProxySchedule(roster, common_seed=seed)
        seen = {}
        for player in roster:
            proxy = schedule.proxy_of(player, epoch)
            # 1. Never your own proxy.
            assert proxy != player
            # 2. Proxy is a roster member.
            assert proxy in roster
            seen[player] = proxy
        # 3. Verifiability: a second instance agrees completely.
        other = ProxySchedule(roster, common_seed=seed)
        for player, proxy in seen.items():
            assert other.proxy_of(player, epoch) == proxy

    @given(st.integers(min_value=3, max_value=20), st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_clients_partition(self, size, epoch):
        schedule = ProxySchedule(list(range(size)))
        all_clients = []
        for proxy in range(size):
            all_clients.extend(schedule.clients_of(proxy, epoch))
        assert sorted(all_clients) == list(range(size))


class TestSignatureProperties:
    @given(st.binary(min_size=0, max_size=200), st.integers(0, 50))
    @settings(max_examples=50)
    def test_roundtrip_any_message(self, message, player):
        signer = HmacSigner()
        signature = signer.sign(player, message)
        assert signer.verify(player, message, signature)

    @given(
        st.binary(min_size=1, max_size=100),
        st.binary(min_size=1, max_size=100),
        st.integers(0, 50),
    )
    @settings(max_examples=50)
    def test_different_messages_never_cross_verify(self, m1, m2, player):
        if m1 == m2:
            return
        signer = HmacSigner()
        assert not signer.verify(player, m2, signer.sign(player, m1))

    @given(st.binary(min_size=1, max_size=100),
           st.integers(0, 20), st.integers(0, 20))
    @settings(max_examples=50)
    def test_signers_never_cross_verify(self, message, a, b):
        if a == b:
            return
        signer = HmacSigner()
        assert not signer.verify(b, message, signer.sign(a, message))


class TestDisclosureProperties:
    @given(st.lists(info_levels, min_size=1, max_size=10))
    def test_category_always_valid(self, levels):
        assert coalition_category(levels) in ExposureCategory.ORDER

    @given(st.lists(info_levels, min_size=1, max_size=8), info_levels)
    def test_monotone_in_information(self, levels, extra):
        """Adding a member never makes the coalition know less."""
        rank = {c: i for i, c in enumerate(ExposureCategory.ORDER)}
        before = coalition_category(levels)
        after = coalition_category(levels + [extra])
        assert rank[after] <= rank[before]

    @given(st.lists(info_levels, min_size=1, max_size=8))
    def test_order_independent(self, levels):
        assert coalition_category(levels) == coalition_category(
            list(reversed(levels))
        )

    @given(info_levels)
    def test_singleton_maps_sensibly(self, level):
        category = coalition_category([level])
        expected = {
            InfoLevel.COMPLETE: ExposureCategory.COMPLETE,
            InfoLevel.FREQUENT: ExposureCategory.FREQ,
            InfoLevel.DEAD_RECKONING: ExposureCategory.DR,
            InfoLevel.INFREQUENT: ExposureCategory.INFREQ,
            InfoLevel.NOTHING: ExposureCategory.NOTHING,
        }
        assert category == expected[level]


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=100,
                              allow_nan=False), min_size=0, max_size=50))
    @settings(max_examples=50)
    def test_events_fire_in_nondecreasing_time(self, delays):
        queue = EventQueue()
        fired = []
        for delay in delays:
            queue.schedule(delay, lambda: fired.append(queue.now))
        queue.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                    min_size=1, max_size=30),
           st.floats(min_value=0, max_value=100, allow_nan=False))
    @settings(max_examples=50)
    def test_run_until_splits_cleanly(self, delays, boundary):
        queue = EventQueue()
        fired = []
        for delay in delays:
            queue.schedule(delay, lambda d=delay: fired.append(d))
        queue.run_until(boundary)
        assert all(d <= boundary for d in fired)
        queue.run()
        assert sorted(fired) == sorted(delays)
