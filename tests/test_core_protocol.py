"""Integration tests for WatchmenSession (full protocol over the WAN sim)."""

import pytest

from repro.core import WatchmenConfig, WatchmenSession
from repro.net.latency import uniform_lan
from repro.net.transport import NetworkConfig


class TestHonestRun:
    def test_report_shape(self, honest_session_report):
        _, report = honest_session_report
        assert report.num_players == 8
        assert report.num_frames == 160
        assert report.messages_sent > 0
        assert sum(report.age_histogram.values()) > 0

    def test_age_pdf_normalised(self, honest_session_report):
        _, report = honest_session_report
        assert sum(report.age_pdf().values()) == pytest.approx(1.0)

    def test_most_updates_fresh(self, honest_session_report):
        """Figure 7's core claim: ≥95 % of updates under 3 frames of age."""
        _, report = honest_session_report
        assert report.stale_fraction(3) < 0.05

    def test_all_update_kinds_flow(self, honest_session_report):
        _, report = honest_session_report
        assert set(report.age_histogram_by_kind) == {
            "state",
            "guidance",
            "position",
        }

    def test_no_honest_player_banned(self, honest_session_report):
        _, report = honest_session_report
        assert report.banned == set()

    def test_honest_high_rating_fraction_tiny(self, honest_session_report):
        _, report = honest_session_report
        high = [r for r in report.ratings if r.rating >= 6.0]
        assert len(high) / max(1, len(report.ratings)) < 0.05

    def test_bandwidth_positive_and_bounded(self, honest_session_report):
        _, report = honest_session_report
        assert 0 < report.mean_upload_kbps < 2000
        assert report.mean_upload_kbps <= report.max_upload_kbps

    def test_observed_loss_near_configured(self, honest_session_report):
        session, report = honest_session_report
        assert report.messages_lost / report.messages_sent == pytest.approx(
            0.01, abs=0.01
        )


class TestSessionConstruction:
    def test_too_few_players_rejected(self, small_trace, longest_yard):
        from repro.game.trace import GameTrace

        tiny = GameTrace(map_name="x", num_players=1)
        tiny.frames = [{0: small_trace.snapshot(0, 0)}]
        with pytest.raises(ValueError):
            WatchmenSession(tiny, game_map=longest_yard)

    def test_max_frames_limits_run(self, small_trace, longest_yard):
        session = WatchmenSession(small_trace, game_map=longest_yard)
        report = session.run(max_frames=40)
        assert report.num_frames == 40

    def test_deterministic_given_seeds(self, small_trace, longest_yard):
        a = WatchmenSession(
            small_trace, game_map=longest_yard, latency=uniform_lan(8)
        ).run()
        b = WatchmenSession(
            small_trace, game_map=longest_yard, latency=uniform_lan(8)
        ).run()
        assert a.age_histogram == b.age_histogram
        assert a.messages_sent == b.messages_sent


class TestLanLatency:
    def test_lan_updates_arrive_same_frame(self, small_trace, longest_yard):
        """On a LAN two hops cost ~1 ms: nearly every update is age 0-1."""
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(8, one_way_ms=0.5),
            network_config=NetworkConfig(loss_rate=0.0, jitter_ms=0.1),
        )
        report = session.run(max_frames=80)
        pdf = report.age_pdf()
        assert pdf.get(0, 0.0) + pdf.get(1, 0.0) > 0.95


class TestRelaxedFirstHop:
    def test_relaxed_mode_reduces_age(self, small_trace, longest_yard):
        """Section VI optimization 3: direct sending cuts one hop."""
        from repro.net.latency import king_like

        strict = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=king_like(8, seed=1),
            config=WatchmenConfig(relax_first_hop=False),
        ).run(max_frames=100)
        relaxed = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=king_like(8, seed=1),
            config=WatchmenConfig(relax_first_hop=True),
        ).run(max_frames=100)

        def mean_age(report):
            total = sum(report.age_histogram.values())
            return (
                sum(age * count for age, count in report.age_histogram.items())
                / total
            )

        assert mean_age(relaxed) < mean_age(strict)


class TestReputationIntegration:
    def test_reputation_board_receives_ratings(self, small_trace, longest_yard):
        from repro.core import ReputationBoard

        board = ReputationBoard()
        session = WatchmenSession(
            small_trace, game_map=longest_yard, reputation=board
        )
        session.run(max_frames=60)
        assert board.tags_seen > 0
