"""Paper constants live in core/config.py and are imported, never re-stated.

Satellite of the C601 drift rule: these tests pin the convention the rule
enforces — ``protocol.py``, ``proxy.py``, and ``interest.py`` reference the
shared constants by name (an AST ``Name`` node in the default position, not
a duplicated numeric literal), and the constants agree with the
``WatchmenConfig`` defaults they parameterize.
"""

from __future__ import annotations

import ast
import math
from pathlib import Path

import pytest

from repro.core.config import (
    FRAME_SECONDS,
    FRAMES_PER_SECOND,
    HANDOFF_DEPTH,
    INTEREST_SET_SIZE,
    MAX_USEFUL_AGE_FRAMES,
    PROXY_PERIOD_FRAMES,
    SIGNATURE_BITS,
    STATE_UPDATE_BITS,
    VISION_HALF_ANGLE,
    VISION_SLACK,
    WatchmenConfig,
)

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def _default_exprs(path: Path) -> dict[str, ast.expr]:
    """name -> default/field-value expression, for every function parameter
    default and class-level annotated field in the module."""
    tree = ast.parse(path.read_text())
    defaults: dict[str, ast.expr] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            positional = [*args.posonlyargs, *args.args]
            for arg, default in zip(
                positional[len(positional) - len(args.defaults):], args.defaults
            ):
                defaults.setdefault(arg.arg, default)
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None:
                    defaults.setdefault(arg.arg, default)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if (
                    isinstance(item, ast.AnnAssign)
                    and item.value is not None
                    and isinstance(item.target, ast.Name)
                ):
                    defaults.setdefault(item.target.id, item.value)
    return defaults


def _imports_from_config(path: Path) -> set[str]:
    tree = ast.parse(path.read_text())
    names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.module == "repro.core.config"
        ):
            names.update(alias.name for alias in node.names)
    return names


class TestConstantsAreImportedNotRestated:
    @pytest.mark.parametrize(
        ("rel", "param", "constant"),
        [
            ("core/protocol.py", "max_useful_age", "MAX_USEFUL_AGE_FRAMES"),
            ("core/proxy.py", "proxy_period_frames", "PROXY_PERIOD_FRAMES"),
            ("game/interest.py", "vision_half_angle", "VISION_HALF_ANGLE"),
            ("game/interest.py", "vision_slack", "VISION_SLACK"),
            ("game/interest.py", "interest_size", "INTEREST_SET_SIZE"),
        ],
    )
    def test_default_is_a_name_reference(self, rel, param, constant):
        path = SRC / rel
        default = _default_exprs(path).get(param)
        assert default is not None, f"{rel} no longer defines {param!r}"
        assert isinstance(default, ast.Name), (
            f"{rel}: default for {param!r} is {ast.dump(default)}; it must "
            f"reference {constant} from core/config.py, not a literal"
        )
        assert default.id == constant
        assert constant in _imports_from_config(path)


class TestConstantsMatchConfigDefaults:
    def test_watchmen_config_uses_the_constants(self):
        cfg = WatchmenConfig()
        assert cfg.frame_seconds == FRAME_SECONDS
        assert cfg.proxy_period_frames == PROXY_PERIOD_FRAMES
        assert cfg.handoff_depth == HANDOFF_DEPTH
        assert cfg.signature_bits == SIGNATURE_BITS
        assert cfg.state_update_bits == STATE_UPDATE_BITS
        assert cfg.keyframe_interval_frames == FRAMES_PER_SECOND

    def test_interest_config_uses_the_constants(self):
        cfg = WatchmenConfig()
        assert cfg.interest.vision_half_angle == VISION_HALF_ANGLE
        assert cfg.interest.vision_slack == VISION_SLACK
        assert cfg.interest.interest_size == INTEREST_SET_SIZE

    def test_paper_values(self):
        # Section IV / Table II of the paper.
        assert FRAME_SECONDS == pytest.approx(0.05)
        assert FRAMES_PER_SECOND == 20
        assert PROXY_PERIOD_FRAMES == 40
        assert INTEREST_SET_SIZE == 5
        assert VISION_HALF_ANGLE == pytest.approx(math.radians(60.0))
        assert VISION_SLACK == pytest.approx(math.radians(15.0))
        assert SIGNATURE_BITS == 100
        assert STATE_UPDATE_BITS == 700
        assert MAX_USEFUL_AGE_FRAMES == 3

    def test_frame_rate_consistency(self):
        assert FRAMES_PER_SECOND * FRAME_SECONDS == pytest.approx(1.0)
