"""Unit tests for item lifecycle and pickups."""

import pytest

from repro.game.avatar import AvatarState
from repro.game.gamemap import ItemKind, make_longest_yard
from repro.game.items import PICKUP_RADIUS, ItemManager
from repro.game.vector import Vec3


@pytest.fixture()
def manager():
    return ItemManager(make_longest_yard())


def avatar_at(position, player_id=0):
    return AvatarState(player_id=player_id, position=position)


def item_named(manager, name):
    return next(i for i in manager.instances if i.spec.name == name)


class TestPickups:
    def test_pickup_within_radius(self, manager):
        rail = item_named(manager, "railgun")
        avatar = avatar_at(rail.spec.position + Vec3(10, 0, 0))
        events = manager.try_pickups(avatar, frame=5)
        names = [e.item_name for e in events]
        assert "railgun" in names
        assert avatar.weapon == "railgun"

    def test_no_pickup_out_of_radius(self, manager):
        rail = item_named(manager, "railgun")
        avatar = avatar_at(rail.spec.position + Vec3(PICKUP_RADIUS + 1, 0, 0))
        slugs = item_named(manager, "slugs")
        # Move away from the nearby ammo too.
        avatar.position = rail.spec.position + Vec3(0, PICKUP_RADIUS + 60, 0)
        events = manager.try_pickups(avatar, frame=5)
        assert all(e.item_name != "railgun" for e in events)

    def test_dead_avatar_cannot_pick_up(self, manager):
        rail = item_named(manager, "railgun")
        avatar = avatar_at(rail.spec.position)
        avatar.alive = False
        assert manager.try_pickups(avatar, frame=5) == []

    def test_item_unavailable_after_pickup(self, manager):
        rail = item_named(manager, "railgun")
        avatar = avatar_at(rail.spec.position)
        manager.try_pickups(avatar, frame=5)
        assert not rail.available

    def test_item_respawns_after_timer(self, manager):
        rail = item_named(manager, "railgun")
        avatar = avatar_at(rail.spec.position)
        manager.try_pickups(avatar, frame=5)
        manager.tick(frame=5 + rail.spec.respawn_frames - 1)
        assert not rail.available
        manager.tick(frame=5 + rail.spec.respawn_frames)
        assert rail.available

    def test_pickup_event_payload(self, manager):
        rail = item_named(manager, "railgun")
        avatar = avatar_at(rail.spec.position, player_id=7)
        event = next(
            e for e in manager.try_pickups(avatar, frame=9)
            if e.item_name == "railgun"
        )
        assert event.player_id == 7
        assert event.frame == 9
        assert event.item_kind == ItemKind.WEAPON


class TestEffects:
    def test_health_pickup_heals(self, manager):
        item = item_named(manager, "health-25")
        avatar = avatar_at(item.spec.position)
        avatar.health = 50
        manager.try_pickups(avatar, frame=0)
        assert avatar.health == 75

    def test_mega_health_exceeds_cap(self, manager):
        mega = item_named(manager, "mega")
        avatar = avatar_at(mega.spec.position)
        manager.try_pickups(avatar, frame=0)
        assert avatar.health > 100

    def test_armor_pickup(self, manager):
        armor = item_named(manager, "yellow-armor")
        avatar = avatar_at(armor.spec.position)
        manager.try_pickups(avatar, frame=0)
        assert avatar.armor == 25

    def test_armor_caps_at_100(self, manager):
        armor = item_named(manager, "red-armor")
        avatar = avatar_at(armor.spec.position)
        avatar.armor = 90
        manager.try_pickups(avatar, frame=0)
        assert avatar.armor == 100

    def test_ammo_pickup(self, manager):
        ammo = item_named(manager, "rockets")
        avatar = avatar_at(ammo.spec.position)
        before = avatar.ammo
        manager.try_pickups(avatar, frame=0)
        assert avatar.ammo > before

    def test_weapon_pickup_switches_weapon(self, manager):
        weapon = item_named(manager, "rocket-launcher")
        avatar = avatar_at(weapon.spec.position)
        manager.try_pickups(avatar, frame=0)
        assert avatar.weapon == "rocket-launcher"

    def test_powerup_grants_full_armor(self, manager):
        quad = item_named(manager, "quad-north")
        avatar = avatar_at(quad.spec.position)
        manager.try_pickups(avatar, frame=0)
        assert avatar.armor == 100


class TestQueries:
    def test_nearest_available(self, manager):
        rail = item_named(manager, "railgun")
        found = manager.nearest_available(rail.spec.position, ItemKind.WEAPON)
        assert found is rail

    def test_nearest_skips_unavailable(self, manager):
        rail = item_named(manager, "railgun")
        rail.available = False
        found = manager.nearest_available(rail.spec.position, ItemKind.WEAPON)
        assert found is not None and found is not rail

    def test_nearest_none_when_all_taken(self, manager):
        for instance in manager.instances:
            instance.available = False
        assert manager.nearest_available(Vec3(), None) is None

    def test_available_items_shrinks_after_pickup(self, manager):
        before = len(manager.available_items())
        rail = item_named(manager, "railgun")
        manager.try_pickups(avatar_at(rail.spec.position), frame=0)
        assert len(manager.available_items()) < before
