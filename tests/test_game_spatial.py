"""The spatial grid: conservativeness and bit-identity with the naive scans.

The fast paths in :class:`GameMap` are only allowed to *skip* boxes the
grid proves irrelevant; the per-box tests are unchanged.  These tests pin
the two load-bearing properties:

1. **conservative candidates** — any box that intersects a segment (or
   contains a point's XY) appears in the grid's candidate list;
2. **bit-identical results** — ``line_of_sight`` / ``floor_height`` agree
   exactly with their retained ``*_naive`` references on built-in maps and
   randomized geometry.
"""

import math
from random import Random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.game.gamemap import (
    Box,
    GameMap,
    make_arena,
    make_corridors,
    make_longest_yard,
)
from repro.game.spatial import SpatialGrid
from repro.game.vector import Vec3

finite = st.floats(
    min_value=-3000.0, max_value=3000.0, allow_nan=False, allow_infinity=False
)


def _random_boxes(rng: Random, count: int) -> list[Box]:
    boxes = []
    for index in range(count):
        x = rng.uniform(-2000.0, 2000.0)
        y = rng.uniform(-2000.0, 2000.0)
        z = rng.uniform(-200.0, 400.0)
        hx = rng.uniform(10.0, 600.0)
        hy = rng.uniform(10.0, 600.0)
        hz = rng.uniform(10.0, 300.0)
        boxes.append(
            Box(Vec3(x - hx, y - hy, z - hz), Vec3(x + hx, y + hy, z + hz),
                name=f"b{index}")
        )
    return boxes


def _random_map(rng: Random, count: int) -> GameMap:
    return GameMap(
        name="random",
        bounds_min=Vec3(-3000.0, -3000.0, -1000.0),
        bounds_max=Vec3(3000.0, 3000.0, 1000.0),
        solids=_random_boxes(rng, count),
        respawn_points=[Vec3(0.0, 0.0, 0.0)],
    )


class TestGridStructure:
    def test_empty_grid_returns_no_candidates(self):
        grid = SpatialGrid([])
        assert grid.num_boxes == 0
        assert list(grid.point_candidates(0.0, 0.0)) == []
        assert list(grid.segment_candidates(-1.0, -1.0, 1.0, 1.0)) == []

    def test_every_box_registered_somewhere(self):
        grid = SpatialGrid(make_longest_yard().solids)
        registered = set()
        for count, cells in grid.cell_histogram().items():
            assert count >= 0 and cells >= 0
        for cell in grid._cells:
            registered.update(cell)
        assert registered == set(range(grid.num_boxes))

    def test_box_bounds_mirror_boxes(self):
        grid = SpatialGrid(make_longest_yard().solids)
        for box, bounds in zip(grid.boxes, grid.box_bounds):
            assert bounds == (
                box.min_corner.x, box.min_corner.y, box.min_corner.z,
                box.max_corner.x, box.max_corner.y, box.max_corner.z,
            )

    def test_candidates_deduplicated(self):
        grid = SpatialGrid(make_longest_yard().solids)
        candidates = grid.segment_candidates(-2000.0, -2000.0, 2000.0, 2000.0)
        assert len(candidates) == len(set(candidates))


class TestConservativeness:
    def test_segment_candidates_cover_all_intersecting_boxes(self):
        rng = Random(11)
        for trial in range(30):
            boxes = _random_boxes(rng, rng.randint(1, 24))
            grid = SpatialGrid(boxes)
            for _ in range(40):
                a = Vec3(rng.uniform(-2600, 2600), rng.uniform(-2600, 2600),
                         rng.uniform(-400, 600))
                b = Vec3(rng.uniform(-2600, 2600), rng.uniform(-2600, 2600),
                         rng.uniform(-400, 600))
                candidates = set(grid.segment_candidates(a.x, a.y, b.x, b.y))
                for index, box in enumerate(boxes):
                    if box.intersects_segment(a, b):
                        assert index in candidates, (trial, index, a, b)

    def test_point_candidates_cover_all_containing_boxes(self):
        rng = Random(13)
        for _ in range(30):
            boxes = _random_boxes(rng, rng.randint(1, 24))
            grid = SpatialGrid(boxes)
            for _ in range(60):
                p = Vec3(rng.uniform(-2600, 2600), rng.uniform(-2600, 2600), 0.0)
                candidates = set(grid.point_candidates(p.x, p.y))
                for index, box in enumerate(boxes):
                    if box.contains_xy(p):
                        assert index in candidates

    def test_extreme_slope_segments_stay_conservative(self):
        boxes = [Box(Vec3(-10.0, -1000.0, -10.0), Vec3(10.0, 1000.0, 10.0))]
        grid = SpatialGrid(boxes)
        # Nearly-vertical in XY but just above the vertical threshold.
        a = Vec3(0.0, -900.0, 0.0)
        b = Vec3(5e-12, 900.0, 0.0)
        assert 0 in set(grid.segment_candidates(a.x, a.y, b.x, b.y))


class TestFastPathEquality:
    def test_builtin_maps_los_and_floor_match_naive(self):
        rng = Random(7)
        for game_map in (make_longest_yard(), make_arena(), make_corridors()):
            lo, hi = game_map.bounds_min, game_map.bounds_max
            for _ in range(400):
                a = Vec3(rng.uniform(lo.x, hi.x), rng.uniform(lo.y, hi.y),
                         rng.uniform(lo.z, hi.z))
                b = Vec3(rng.uniform(lo.x, hi.x), rng.uniform(lo.y, hi.y),
                         rng.uniform(lo.z, hi.z))
                assert game_map.line_of_sight(a, b) == game_map.line_of_sight_naive(a, b)
                assert game_map.floor_height(a) == game_map.floor_height_naive(a)

    def test_random_maps_los_matches_naive(self):
        rng = Random(17)
        for _ in range(20):
            game_map = _random_map(rng, rng.randint(0, 30))
            for _ in range(60):
                a = Vec3(rng.uniform(-3000, 3000), rng.uniform(-3000, 3000),
                         rng.uniform(-900, 900))
                b = Vec3(rng.uniform(-3000, 3000), rng.uniform(-3000, 3000),
                         rng.uniform(-900, 900))
                assert game_map.line_of_sight(a, b) == game_map.line_of_sight_naive(a, b)
                assert game_map.floor_height(a) == game_map.floor_height_naive(a)

    @given(
        st.integers(min_value=0, max_value=6),
        finite, finite, finite, finite,
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_los_equality_property(self, num_boxes, ax, ay, bx, by, seed):
        rng = Random(seed)
        game_map = _random_map(rng, num_boxes)
        a = Vec3(ax, ay, rng.uniform(-500, 500))
        b = Vec3(bx, by, rng.uniform(-500, 500))
        assert game_map.line_of_sight(a, b) == game_map.line_of_sight_naive(a, b)

    def test_los_is_symmetric(self):
        game_map = make_longest_yard()
        rng = Random(23)
        for _ in range(200):
            a = Vec3(rng.uniform(-2200, 2200), rng.uniform(-2200, 2200),
                     rng.uniform(-500, 760))
            b = Vec3(rng.uniform(-2200, 2200), rng.uniform(-2200, 2200),
                     rng.uniform(-500, 760))
            assert game_map.line_of_sight(a, b) == game_map.line_of_sight(b, a)
            assert game_map.line_of_sight_naive(a, b) == game_map.line_of_sight_naive(b, a)


class TestIndexInvalidation:
    def test_index_rebuilds_when_solids_list_replaced(self):
        game_map = make_longest_yard()
        first = game_map.spatial_index
        assert game_map.spatial_index is first  # cached
        game_map.solids = list(game_map.solids)  # new list object
        assert game_map.spatial_index is not first

    def test_index_rebuilds_when_length_changes(self):
        game_map = make_longest_yard()
        first = game_map.spatial_index
        game_map.solids.append(
            Box(Vec3(3000.0, 3000.0, 0.0), Vec3(3100.0, 3100.0, 100.0))
        )
        rebuilt = game_map.spatial_index
        assert rebuilt is not first
        assert rebuilt.num_boxes == len(game_map.solids)

    def test_explicit_invalidation_after_in_place_replacement(self):
        game_map = make_longest_yard()
        stale = game_map.spatial_index
        # Same list object, same length: the lazy check cannot see this.
        game_map.solids[0] = Box(
            Vec3(-50.0, -50.0, -50.0), Vec3(50.0, 50.0, 50.0), name="swapped"
        )
        assert game_map.spatial_index is stale
        game_map.invalidate_spatial_index()
        fresh = game_map.spatial_index
        assert fresh is not stale
        # After invalidation the fast path agrees with naive again.
        rng = Random(29)
        for _ in range(100):
            a = Vec3(rng.uniform(-2200, 2200), rng.uniform(-2200, 2200),
                     rng.uniform(-400, 700))
            b = Vec3(rng.uniform(-2200, 2200), rng.uniform(-2200, 2200),
                     rng.uniform(-400, 700))
            assert game_map.line_of_sight(a, b) == game_map.line_of_sight_naive(a, b)


class TestPerfCounters:
    def test_los_counters_track_queries_and_tests(self):
        game_map = make_longest_yard()
        game_map.los_queries = game_map.los_boxes_tested = 0
        a = Vec3(-2000.0, -2000.0, 100.0)
        b = Vec3(2000.0, 2000.0, 100.0)
        game_map.line_of_sight(a, b)
        assert game_map.los_queries == 1
        fast_tested = game_map.los_boxes_tested
        game_map.line_of_sight_naive(a, b)
        assert game_map.los_queries == 2
        naive_tested = game_map.los_boxes_tested - fast_tested
        assert naive_tested == len(game_map.solids)
        assert fast_tested <= naive_tested

    def test_grid_avoids_most_box_tests_on_longest_yard(self):
        game_map = make_longest_yard()
        rng = Random(31)
        game_map.los_queries = game_map.los_boxes_tested = 0
        queries = 300
        for _ in range(queries):
            a = Vec3(rng.uniform(-2200, 2200), rng.uniform(-2200, 2200),
                     rng.uniform(0, 300))
            b = Vec3(rng.uniform(-2200, 2200), rng.uniform(-2200, 2200),
                     rng.uniform(0, 300))
            game_map.line_of_sight(a, b)
        naive_equivalent = queries * len(game_map.solids)
        # The grid should prune well over half the slab tests on this map.
        assert game_map.los_boxes_tested < naive_equivalent / 2

    def test_grid_sizing_tracks_box_count(self):
        rng = Random(37)
        for count in (1, 4, 11, 30):
            grid = SpatialGrid(_random_boxes(rng, count))
            expected = int(math.ceil(2.0 * math.sqrt(count)))
            assert grid.nx == grid.ny == min(64, max(1, expected))
            assert len(grid._cells) == grid.nx * grid.ny
