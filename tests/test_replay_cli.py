"""``repro tape`` CLI: exit-code contract (0 clean / 1 divergent / 2 usage)."""

from __future__ import annotations

import gzip

import pytest

from repro.cli import main

#: Tiny enough for sub-second records inside the test run.
RECORD_ARGS = ["--players", "4", "--frames", "60", "--seed", "3"]


@pytest.fixture(scope="module")
def tape_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "tiny.tape"
    assert main(["tape", "record", *RECORD_ARGS, "--out", str(path)]) == 0
    return path


def _corrupt_payload(path, out):
    body = gzip.decompress(path.read_bytes())
    marker = b'"messages":[['
    index = body.find(marker) + len(marker)
    flip = b"9" if body[index:index + 1] != b"9" else b"8"
    out.write_bytes(
        gzip.compress(body[:index] + flip + body[index + 1:], 9, mtime=0)
    )
    return out


class TestRecord:
    def test_record_is_deterministic(self, tape_path, tmp_path):
        again = tmp_path / "again.tape"
        assert main(["tape", "record", *RECORD_ARGS, "--out", str(again)]) == 0
        assert again.read_bytes() == tape_path.read_bytes()

    def test_unknown_chaos_scenario_is_usage_error(self, tmp_path, capsys):
        code = main([
            "tape", "record", *RECORD_ARGS,
            "--chaos", "meteor_strike", "--out", str(tmp_path / "x.tape"),
        ])
        assert code == 2
        assert "unknown chaos scenario" in capsys.readouterr().err

    def test_unknown_preset_is_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["tape", "record", "--preset", "nope",
                  "--out", str(tmp_path / "x.tape")])
        assert excinfo.value.code == 2


class TestVerify:
    def test_clean_tape_exits_zero(self, tape_path, capsys):
        assert main(["tape", "verify", str(tape_path)]) == 0
        assert "re-simulated byte-identically" in capsys.readouterr().out

    def test_corrupted_tape_exits_one(self, tape_path, tmp_path, capsys):
        bad = _corrupt_payload(tape_path, tmp_path / "bad.tape")
        assert main(["tape", "verify", str(bad)]) == 1
        assert "digest mismatch" in capsys.readouterr().err

    def test_divergence_report_is_written(self, tape_path, tmp_path):
        bad = _corrupt_payload(tape_path, tmp_path / "bad.tape")
        report = tmp_path / "divergence.json"
        code = main([
            "tape", "verify", str(tape_path), str(bad),
            "--diff-out", str(report),
        ])
        assert code == 1
        assert report.is_file()
        text = report.read_text()
        assert '"clean": false' in text and '"clean": true' in text

    def test_missing_tape_exits_two(self, tmp_path):
        assert main(["tape", "verify", str(tmp_path / "missing.tape")]) == 2


class TestInspectAndDiff:
    def test_inspect_prints_header(self, tape_path, capsys):
        assert main(["tape", "inspect", str(tape_path)]) == 0
        out = capsys.readouterr().out
        assert "repro.tape.v1" in out
        assert "4 players" in out

    def test_diff_identical_exits_zero(self, tape_path, tmp_path):
        other = tmp_path / "copy.tape"
        other.write_bytes(tape_path.read_bytes())
        assert main(["tape", "diff", str(tape_path), str(other)]) == 0

    def test_diff_corrupted_is_integrity_failure(self, tape_path, tmp_path, capsys):
        bad = _corrupt_payload(tape_path, tmp_path / "bad.tape")
        assert main(["tape", "diff", str(tape_path), str(bad)]) == 1
        assert "digest mismatch" in capsys.readouterr().err
