"""C601: paper-constant drift detection and the ``--fix`` rewriter."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.lint.configdrift import (
    CONSTANT_ALIASES,
    apply_fixes,
    extract_constants,
    find_drift_sites,
    run_configdrift_rules,
)

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIG_PATH = REPO_ROOT / "src" / "repro" / "core" / "config.py"


def drift_violations(files: dict[str, str], config_path: Path = CONFIG_PATH):
    trees = {rel: ast.parse(source) for rel, source in files.items()}
    sources = {rel: source.splitlines() for rel, source in files.items()}
    return run_configdrift_rules(trees, sources, config_path)


class TestExtractConstants:
    def test_real_config_exposes_paper_constants(self):
        constants = extract_constants(CONFIG_PATH)
        assert constants["FRAME_SECONDS"] == pytest.approx(0.05)
        assert constants["FRAMES_PER_SECOND"] == 20
        assert constants["PROXY_PERIOD_FRAMES"] == 40
        assert constants["SIGNATURE_BITS"] == 100
        # radians() calls are evaluated, not skipped
        assert constants["VISION_HALF_ANGLE"] == pytest.approx(1.0471975512)

    def test_every_alias_targets_a_real_constant(self):
        constants = extract_constants(CONFIG_PATH)
        missing = set(CONSTANT_ALIASES.values()) - set(constants)
        assert missing == set()


class TestC601Detection:
    def test_flags_function_default(self):
        violations = drift_violations(
            {
                "src/repro/game/physics.py": (
                    "def step(state, frame_seconds=0.05):\n"
                    "    return state\n"
                )
            }
        )
        assert [v.rule for v in violations] == ["C601"]
        assert "FRAME_SECONDS" in violations[0].message

    def test_flags_dataclass_field(self):
        violations = drift_violations(
            {
                "src/repro/core/protocol.py": (
                    "class Protocol:\n"
                    "    proxy_period_frames: int = 40\n"
                )
            }
        )
        assert [v.rule for v in violations] == ["C601"]
        assert "PROXY_PERIOD_FRAMES" in violations[0].message

    def test_flags_keyword_argument(self):
        violations = drift_violations(
            {
                "src/repro/net/session.py": (
                    "def make():\n"
                    "    return configure(signature_bits=100)\n"
                )
            }
        )
        assert [v.rule for v in violations] == ["C601"]

    def test_unmapped_name_is_not_flagged(self):
        # Same numeric value as FRAME_SECONDS, but the name has no alias
        # mapping: a documented precision limit, not drift.
        violations = drift_violations(
            {
                "src/repro/game/physics.py": (
                    "class Physics:\n"
                    "    fall_damage_per_speed: float = 0.05\n"
                )
            }
        )
        assert violations == []

    def test_deliberate_override_value_is_not_flagged(self):
        # frame_seconds=0.10 is an intentional departure from the paper
        # constant; C601 only fires on *duplicated* values.
        violations = drift_violations(
            {
                "src/repro/game/physics.py": (
                    "def step(state, frame_seconds=0.10):\n"
                    "    return state\n"
                )
            }
        )
        assert violations == []

    def test_config_module_itself_is_exempt(self):
        violations = drift_violations(
            {
                "src/repro/core/config.py": (
                    "def helper(frame_seconds=0.05):\n"
                    "    return frame_seconds\n"
                )
            }
        )
        assert violations == []

    def test_out_of_scope_package_is_ignored(self):
        violations = drift_violations(
            {
                "src/repro/obs/metrics.py": (
                    "def sample(frame_seconds=0.05):\n"
                    "    return frame_seconds\n"
                )
            }
        )
        assert violations == []

    def test_real_tree_has_zero_drift(self):
        files = {}
        sources = {}
        for file in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            rel = file.relative_to(REPO_ROOT).as_posix()
            text = file.read_text()
            files[rel] = ast.parse(text)
            sources[rel] = text.splitlines()
        assert run_configdrift_rules(files, sources, CONFIG_PATH) == []


class TestFixer:
    DIRTY = (
        '"""Module docstring."""\n'
        "\n"
        "import math\n"
        "\n"
        "\n"
        "def step(state, frame_seconds=0.05, horizon_frames=20):\n"
        "    return state\n"
    )

    def _fix(self, source: str, rel: str = "src/repro/game/demo.py") -> str:
        constants = extract_constants(CONFIG_PATH)
        sites = find_drift_sites({rel: ast.parse(source)}, constants)
        assert sites, "fixture should contain drift"
        return apply_fixes(sites, {rel: source})[rel]

    def test_fix_rewrites_literals_and_adds_import(self):
        fixed = self._fix(self.DIRTY)
        assert "frame_seconds=FRAME_SECONDS" in fixed
        assert "horizon_frames=FRAMES_PER_SECOND" in fixed
        assert "0.05" not in fixed
        assert (
            "from repro.core.config import FRAMES_PER_SECOND, FRAME_SECONDS"
            in fixed
            or "from repro.core.config import FRAME_SECONDS, FRAMES_PER_SECOND"
            in fixed
        )

    def test_fixed_source_is_drift_free(self):
        fixed = self._fix(self.DIRTY)
        constants = extract_constants(CONFIG_PATH)
        assert (
            find_drift_sites(
                {"src/repro/game/demo.py": ast.parse(fixed)}, constants
            )
            == []
        )

    def test_fix_merges_into_existing_config_import(self):
        source = (
            "from repro.core.config import HANDOFF_DEPTH\n"
            "\n"
            "def step(state, frame_seconds=0.05):\n"
            "    return state\n"
        )
        fixed = self._fix(source)
        assert fixed.count("from repro.core.config import") == 1
        assert "FRAME_SECONDS" in fixed
        assert "HANDOFF_DEPTH" in fixed

    def test_cli_fix_roundtrip(self, tmp_path, capsys):
        from repro.lint.cli import main as lint_main

        import shutil

        root = tmp_path / "repo"
        (root / "src").mkdir(parents=True)
        shutil.copytree(REPO_ROOT / "src" / "repro", root / "src" / "repro")
        dirty = root / "src" / "repro" / "game" / "drifted.py"
        dirty.write_text(
            '"""Drift fixture."""\n'
            "\n"
            "\n"
            "def step(state: int, frame_seconds: float = 0.05) -> int:\n"
            "    return state\n"
        )

        assert lint_main(["--root", str(root)]) == 1  # drift detected
        capsys.readouterr()
        assert lint_main(["--root", str(root), "--fix"]) == 0
        capsys.readouterr()
        assert "FRAME_SECONDS" in dirty.read_text()
        assert lint_main(["--root", str(root)]) == 0  # clean after fix
