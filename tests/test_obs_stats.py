"""Nearest-rank percentile semantics (shared by view-error stats and chaos)."""

from __future__ import annotations

import pytest

from repro.obs import nearest_rank


class TestNearestRank:
    def test_single_value(self):
        assert nearest_rank([42.0], 0.95) == 42.0

    def test_p95_of_100_values_is_95th(self):
        values = [float(v) for v in range(1, 101)]
        assert nearest_rank(values, 0.95) == 95.0

    def test_p50_of_four_values_is_second(self):
        # Nearest-rank: rank = ceil(0.5 * 4) = 2, never an interpolation.
        assert nearest_rank([1.0, 2.0, 3.0, 4.0], 0.50) == 2.0

    def test_max_fraction_returns_max(self):
        assert nearest_rank([3.0, 1.0, 2.0], 1.0) == 3.0

    def test_unsorted_input_is_sorted_first(self):
        # rank = ceil(0.3 * 3) = 1 -> smallest value
        assert nearest_rank([9.0, 1.0, 5.0], 0.3) == 1.0

    def test_presorted_skips_sorting(self):
        values = [1.0, 5.0, 9.0]
        assert nearest_rank(values, 0.3, presorted=True) == 1.0

    def test_result_is_always_an_observed_value(self):
        values = [1.0, 10.0]
        # p95 of two samples is the larger one, not 9.55.
        assert nearest_rank(values, 0.95) == 10.0

    def test_tiny_fraction_clamps_to_first_rank(self):
        assert nearest_rank([1.0, 2.0, 3.0], 0.001) == 1.0

    def test_empty_values_raise(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.95)

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_fraction_out_of_range_raises(self, fraction):
        with pytest.raises(ValueError):
            nearest_rank([1.0], fraction)
