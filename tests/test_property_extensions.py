"""Property-based tests for membership, admission, gossip and delta coding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WatchmenConfig, feasibility_test
from repro.core.membership import MembershipView
from repro.core.messages import StateUpdate, message_size_bits
from repro.core.reputation import InteractionTag
from repro.core.reputation_gossip import GossipNode
from repro.game.avatar import AvatarSnapshot, snapshot_delta_fields
from repro.game.vector import Vec3


def snap(player_id=1, frame=0, x=0.0, health=100):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=Vec3(x, 0, 0),
        velocity=Vec3(),
        yaw=0.0,
        health=health,
        armor=0,
        weapon="machinegun",
        ammo=9,
        alive=True,
    )


class TestMembershipProperties:
    @given(
        st.integers(min_value=3, max_value=20),
        st.sets(st.integers(min_value=0, max_value=19), max_size=20),
    )
    @settings(max_examples=60)
    def test_quorum_always_majority(self, size, proposers):
        view = MembershipView(list(range(size)))
        subject = size - 1
        # Frame past the silence threshold so the local view corroborates.
        for proposer in proposers:
            if proposer < size:
                view.record_proposal(proposer, subject, 100, 0)
        valid_proposers = {p for p in proposers if p < size and True}
        scheduled = subject in view.pending_removals()
        assert scheduled == (
            len(valid_proposers) >= size // 2 + 1
        )

    @given(st.integers(min_value=3, max_value=15),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=40)
    def test_removals_never_before_due_epoch(self, size, epoch):
        view = MembershipView(list(range(size)))
        subject = size - 1
        for proposer in range(size // 2 + 1):
            view.record_proposal(proposer, subject, 100, epoch)
        due = view.pending_removals()[subject]
        assert due > epoch
        assert view.apply_removals(due - 1) == set()
        assert view.apply_removals(due) == {subject}


class TestAdmissionProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=30),
            st.floats(min_value=0.0, max_value=50_000.0, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60)
    def test_partition_is_clean(self, capacities):
        decision = feasibility_test(capacities)
        assert set(decision.admitted) | set(decision.rejected) == set(capacities)
        assert not set(decision.admitted) & set(decision.rejected)
        assert set(decision.proxy_pool) <= set(decision.admitted)
        for weight in decision.pool_weights.values():
            assert 1 <= weight <= 4

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=30),
            st.floats(min_value=100.0, max_value=50_000.0, allow_nan=False),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=40)
    def test_more_capacity_never_less_weight(self, capacities):
        decision = feasibility_test(capacities)
        pooled = sorted(decision.proxy_pool, key=lambda p: capacities[p])
        for weaker, stronger in zip(pooled, pooled[1:]):
            assert (
                decision.pool_weights[weaker]
                <= decision.pool_weights[stronger]
            )


class TestGossipProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # subject
                st.integers(min_value=0, max_value=200),  # frame
                st.booleans(),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40)
    def test_digest_merge_idempotent(self, observations):
        source = GossipNode(0)
        for subject, frame, success in observations:
            source.observe(
                InteractionTag(0, subject, frame, success, 1.0)
            )
        sink = GossipNode(1)
        first = sink.receive_digest(source.make_digest(limit=100))
        second = sink.receive_digest(source.make_digest(limit=100))
        assert second == 0
        assert first == sink.tags_known


class TestDeltaCodingProperties:
    @given(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=60)
    def test_delta_never_larger_than_keyframe(self, x, health):
        config = WatchmenConfig()
        old = snap(frame=0)
        new = snap(frame=1, x=x, health=health)
        fields = tuple(snapshot_delta_fields(old, new))
        keyframe = StateUpdate(1, 1, 1, new)
        delta = StateUpdate(1, 1, 1, new, delta_fields=fields or ("yaw",))
        assert message_size_bits(delta, config) <= message_size_bits(
            keyframe, config
        )

    @given(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
    @settings(max_examples=40)
    def test_delta_fields_sound(self, x):
        old = snap(frame=0, x=0.0)
        new = snap(frame=1, x=x)
        fields = snapshot_delta_fields(old, new)
        if x != 0.0:
            assert "position" in fields
        else:
            assert "position" not in fields
