"""Unit tests for the discrete-event engine."""

import pytest

from repro.net.events import EventQueue, SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(0.3, lambda: order.append("c"))
        queue.schedule(0.1, lambda: order.append("a"))
        queue.schedule(0.2, lambda: order.append("b"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        queue = EventQueue()
        order = []
        for tag in "abc":
            queue.schedule(0.5, lambda t=tag: order.append(t))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(1.0, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [1.0]

    def test_now_advances(self):
        queue = EventQueue()
        times = []
        queue.schedule(0.5, lambda: times.append(queue.now))
        queue.schedule(1.5, lambda: times.append(queue.now))
        queue.run()
        assert times == [0.5, 1.5]

    def test_nested_scheduling(self):
        queue = EventQueue()
        seen = []

        def outer():
            seen.append("outer")
            queue.schedule(0.1, lambda: seen.append("inner"))

        queue.schedule(0.0, outer)
        queue.run()
        assert seen == ["outer", "inner"]

    def test_nested_past_scheduling_rejected(self):
        queue = EventQueue()
        errors = []

        def bad():
            try:
                queue.schedule(-1.0, lambda: None)
            except SimulationError as exc:
                errors.append(exc)

        queue.schedule(1.0, bad)
        queue.run()
        assert errors


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        queue = EventQueue()
        seen = []
        event_id = queue.schedule(0.1, lambda: seen.append("x"))
        queue.cancel(event_id)
        queue.run()
        assert seen == []

    def test_cancel_after_fire_is_noop(self):
        queue = EventQueue()
        seen = []
        event_id = queue.schedule(0.1, lambda: seen.append("x"))
        queue.run()
        queue.cancel(event_id)
        assert seen == ["x"]

    def test_cancel_one_of_many(self):
        queue = EventQueue()
        seen = []
        queue.schedule(0.1, lambda: seen.append("a"))
        victim = queue.schedule(0.2, lambda: seen.append("b"))
        queue.schedule(0.3, lambda: seen.append("c"))
        queue.cancel(victim)
        queue.run()
        assert seen == ["a", "c"]


class TestRunUntil:
    def test_run_until_stops_at_boundary(self):
        queue = EventQueue()
        seen = []
        queue.schedule(0.5, lambda: seen.append("early"))
        queue.schedule(2.0, lambda: seen.append("late"))
        count = queue.run_until(1.0)
        assert count == 1
        assert seen == ["early"]
        assert queue.now == 1.0
        assert len(queue) == 1

    def test_run_until_advances_time_when_idle(self):
        queue = EventQueue()
        queue.run_until(5.0)
        assert queue.now == 5.0

    def test_run_until_event_budget(self):
        queue = EventQueue()
        for _ in range(10):
            queue.schedule(0.1, lambda: None)
        with pytest.raises(SimulationError):
            queue.run_until(1.0, max_events=5)

    def test_run_bounded(self):
        queue = EventQueue()

        def reschedule():
            queue.schedule(0.001, reschedule)

        queue.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            queue.run(max_events=100)


class TestBookkeeping:
    def test_len_and_empty(self):
        queue = EventQueue()
        assert queue.empty
        queue.schedule(1.0, lambda: None)
        assert len(queue) == 1
        assert not queue.empty

    def test_processed_counter(self):
        queue = EventQueue()
        for _ in range(5):
            queue.schedule(0.1, lambda: None)
        queue.run()
        assert queue.processed == 5

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False
