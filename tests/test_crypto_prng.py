"""Unit tests for the verifiable PRNG."""

import pytest

from repro.crypto.prng import VerifiablePrng, draw_uint


class TestDrawUint:
    def test_deterministic(self):
        assert draw_uint(b"seed", 1, 2) == draw_uint(b"seed", 1, 2)

    def test_varies_with_seed(self):
        assert draw_uint(b"seed-a", 1, 2) != draw_uint(b"seed-b", 1, 2)

    def test_varies_with_player(self):
        assert draw_uint(b"seed", 1, 2) != draw_uint(b"seed", 2, 2)

    def test_varies_with_counter(self):
        assert draw_uint(b"seed", 1, 2) != draw_uint(b"seed", 1, 3)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            draw_uint(b"seed", -1, 0)
        with pytest.raises(ValueError):
            draw_uint(b"seed", 0, -1)

    def test_64_bit_range(self):
        for counter in range(20):
            value = draw_uint(b"seed", 0, counter)
            assert 0 <= value < 1 << 64


class TestVerifiablePrng:
    def test_empty_seed_rejected(self):
        with pytest.raises(ValueError):
            VerifiablePrng(b"", 0)

    def test_next_uint_advances(self):
        prng = VerifiablePrng(b"seed", 5)
        first = prng.next_uint()
        second = prng.next_uint()
        assert first != second
        assert prng.counter == 2

    def test_stateless_matches_stateful(self):
        stateful = VerifiablePrng(b"seed", 5)
        stateless = VerifiablePrng(b"seed", 5)
        values = [stateful.next_uint() for _ in range(5)]
        assert values == [stateless.uint_at(i) for i in range(5)]

    def test_two_observers_agree(self):
        """The verifiability property: anyone recomputes anyone's draws."""
        alice_view = VerifiablePrng(b"game-7", player_id=3)
        bob_view = VerifiablePrng(b"game-7", player_id=3)
        assert [alice_view.next_uint() for _ in range(10)] == [
            bob_view.next_uint() for _ in range(10)
        ]

    def test_next_below_in_range(self):
        prng = VerifiablePrng(b"seed", 1)
        for _ in range(100):
            assert 0 <= prng.next_below(7) < 7

    def test_next_below_bad_bound(self):
        with pytest.raises(ValueError):
            VerifiablePrng(b"seed", 1).next_below(0)

    def test_below_at_deterministic(self):
        a = VerifiablePrng(b"seed", 1)
        b = VerifiablePrng(b"seed", 1)
        assert [a.below_at(i, 13) for i in range(20)] == [
            b.below_at(i, 13) for i in range(20)
        ]

    def test_below_at_bad_bound(self):
        with pytest.raises(ValueError):
            VerifiablePrng(b"seed", 1).below_at(0, 0)

    def test_below_at_roughly_uniform(self):
        prng = VerifiablePrng(b"seed", 1)
        counts = [0] * 5
        samples = 2000
        for i in range(samples):
            counts[prng.below_at(i * 3, 5)] += 1
        for count in counts:
            assert abs(count - samples / 5) < samples * 0.08
