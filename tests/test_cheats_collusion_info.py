"""Tests for coalitions and the unauthorized-access probes."""

import pytest

from repro.baselines import DonnybrookModel, WatchmenModel
from repro.cheats import (
    Coalition,
    MaphackProbe,
    RateAnalysisProbe,
    SniffingProbe,
    sample_coalitions,
)
from repro.core.disclosure import ExposureCategory
from repro.core.proxy import ProxySchedule


class TestCoalition:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Coalition(set())

    def test_subject_must_be_honest(self, longest_yard, small_trace):
        schedule = ProxySchedule(small_trace.player_ids())
        model = WatchmenModel(longest_yard, schedule)
        model.prepare_frame(0, small_trace.frames[0])
        coalition = Coalition({0, 1})
        with pytest.raises(ValueError):
            coalition.joint_category(model, 1)

    def test_larger_coalition_knows_no_less(self, longest_yard, small_trace):
        """Monotonicity: adding a colluder never lowers exposure rank."""
        schedule = ProxySchedule(small_trace.player_ids())
        model = WatchmenModel(longest_yard, schedule)
        model.prepare_frame(60, small_trace.frames[60])
        small = Coalition({0, 1})
        large = Coalition({0, 1, 2, 3})
        rank = {c: i for i, c in enumerate(ExposureCategory.ORDER)}
        for subject in small_trace.player_ids():
            if subject in large.members:
                continue
            assert rank[large.joint_category(model, subject)] <= rank[
                small.joint_category(model, subject)
            ]

    def test_frame_histogram_counts_honest_players(
        self, longest_yard, small_trace
    ):
        schedule = ProxySchedule(small_trace.player_ids())
        model = WatchmenModel(longest_yard, schedule)
        model.prepare_frame(0, small_trace.frames[0])
        coalition = Coalition({0, 1})
        histogram = coalition.frame_histogram(model, small_trace.player_ids())
        assert sum(histogram.counts.values()) == 6  # 8 players − 2 cheaters


class TestSampling:
    def test_sample_size_validated(self):
        with pytest.raises(ValueError):
            sample_coalitions([1, 2, 3], size=4, count=1)

    def test_sampled_members_are_players(self):
        players = list(range(10))
        for coalition in sample_coalitions(players, 3, 20, seed=1):
            assert coalition.members <= set(players)
            assert len(coalition) == 3

    def test_deterministic(self):
        a = sample_coalitions(list(range(10)), 3, 5, seed=2)
        b = sample_coalitions(list(range(10)), 3, 5, seed=2)
        assert [c.members for c in a] == [c.members for c in b]


class TestProbes:
    def test_sniffing_lower_under_watchmen_than_donnybrook(
        self, longest_yard, small_trace
    ):
        frame = 60
        snapshots = small_trace.frames[frame]
        players = small_trace.player_ids()
        schedule = ProxySchedule(players)
        watchmen = WatchmenModel(longest_yard, schedule)
        donny = DonnybrookModel()
        watchmen.prepare_frame(frame, snapshots)
        donny.prepare_frame(frame, snapshots)
        probe = SniffingProbe()
        w = probe.measure(watchmen, 0, players)
        d = probe.measure(donny, 0, players)
        assert d.fraction == 1.0  # Donnybrook: DR about everyone
        assert w.fraction < d.fraction

    def test_maphack_mostly_defeated_by_watchmen(
        self, longest_yard, small_trace
    ):
        frame = 60
        snapshots = small_trace.frames[frame]
        players = small_trace.player_ids()
        schedule = ProxySchedule(players)
        model = WatchmenModel(longest_yard, schedule)
        model.prepare_frame(frame, snapshots)
        sets = model.sets_of(0)
        visible = frozenset(sets.interest | sets.vision)
        result = MaphackProbe().measure(model, 0, players, visible)
        # Only the (rare) proxy relationship leaks an invisible player.
        assert result.fraction <= 2 / max(1, result.total)

    def test_rate_analysis_defeated_by_indirection(self):
        """Inbound sources are proxies, not subscribers: no signal."""
        probe = RateAnalysisProbe()
        # Under Watchmen all inbound traffic comes via a couple of proxies
        # who are NOT the subscribers.
        inbound = {10: 50, 11: 48, 12: 55}
        subscribers = frozenset({1, 2, 3})
        result = probe.measure(0, inbound, subscribers)
        assert result.exposed == 0

    def test_rate_analysis_works_against_direct_systems(self):
        """Direct subscription systems leak exactly this signal."""
        probe = RateAnalysisProbe()
        inbound = {1: 100, 2: 95, 3: 98, 4: 2, 5: 1}
        subscribers = frozenset({1, 2, 3})
        result = probe.measure(0, inbound, subscribers)
        assert result.fraction == 1.0

    def test_rate_analysis_no_subscribers(self):
        result = RateAnalysisProbe().measure(0, {1: 10}, frozenset())
        assert result.total == 0
        assert result.fraction == 0.0
