"""The .tape subsystem: format round trips, integrity, and verify mode."""

from __future__ import annotations

import gzip
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.node import WatchmenNode
from repro.game.trace import GameTrace
from repro.replay import (
    TAPE_FORMAT,
    GOLDEN_PRESETS,
    CheatSpec,
    Tape,
    TapedMessage,
    TapeFormatError,
    TapeFrame,
    TapeIntegrityError,
    TapeScenario,
    compare_tapes,
    read_header,
    read_tape,
    record_session,
    verify_tape,
    write_tape,
)

#: Small enough to record in well under a second, big enough to carry
#: every message type plus kills.
SMALL = TapeScenario(players=6, frames=100, seed=5)


@pytest.fixture(scope="module")
def small_tape():
    return record_session(SMALL)


@pytest.fixture()
def small_tape_path(small_tape, tmp_path):
    return write_tape(small_tape, tmp_path / "small.tape")


# ---- synthetic round-trip properties (no simulation) -----------------------

_payloads = st.binary(min_size=1, max_size=64)

_messages = st.builds(
    TapedMessage,
    src=st.integers(0, 7),
    dst=st.integers(0, 7),
    size_bytes=st.integers(1, 4096),
    accepted=st.booleans(),
    payload=_payloads,
)

_scenarios = st.builds(
    TapeScenario,
    players=st.integers(2, 12),
    frames=st.integers(1, 500),
    seed=st.integers(0, 2**31),
    latency=st.sampled_from(["king", "peerwise", "lan"]),
    loss_rate=st.floats(0.0, 0.2, allow_nan=False),
)


@st.composite
def _synthetic_tapes(draw):
    scenario = draw(_scenarios)
    num_frames = draw(st.integers(0, 6))
    frames = [
        TapeFrame(
            frame=index,
            messages=draw(st.lists(_messages, max_size=5)),
        )
        for index in range(num_frames)
    ]
    trace = GameTrace(
        map_name=scenario.map_name,
        num_players=scenario.players,
        seed=scenario.seed,
    )
    return Tape(scenario=scenario, trace=trace, frames=frames)


class TestRoundTrip:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(tape=_synthetic_tapes())
    def test_write_read_is_identity(self, tape, tmp_path_factory):
        path = tmp_path_factory.mktemp("tapes") / "t.tape"
        write_tape(tape, path)
        loaded = read_tape(path)
        assert loaded.scenario == tape.scenario
        assert loaded.sha256 == tape.sha256
        assert [f.frame for f in loaded.frames] == [f.frame for f in tape.frames]
        for original, restored in zip(tape.frames, loaded.frames):
            assert restored.messages == original.messages
        assert compare_tapes(tape, loaded).clean

    @settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow])
    @given(tape=_synthetic_tapes())
    def test_rewrite_is_byte_identical(self, tape, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("tapes")
        first = write_tape(tape, tmp / "a.tape").read_bytes()
        second = write_tape(read_tape(tmp / "a.tape"), tmp / "b.tape").read_bytes()
        assert first == second

    def test_scenario_json_round_trip(self):
        for scenario in GOLDEN_PRESETS.values():
            assert TapeScenario.from_json(scenario.to_json()) == scenario

    def test_cheat_spec_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown cheat kind"):
            CheatSpec(0, "wallhack-9000")


# ---- real recordings -------------------------------------------------------

class TestRecordedTape:
    def test_recording_is_deterministic(self, small_tape):
        again = record_session(SMALL)
        assert again.sha256 == small_tape.sha256
        assert again.num_messages == small_tape.num_messages

    def test_recording_does_not_perturb_the_run(self):
        untapped = SMALL.make_session(SMALL.make_trace()).run()
        tapped = record_session(SMALL)
        rerun = SMALL.make_session(tapped.trace).run()
        assert rerun.messages_sent == untapped.messages_sent
        assert rerun.messages_lost == untapped.messages_lost
        assert rerun.age_histogram == untapped.age_histogram

    def test_round_trip_preserves_stream(self, small_tape, small_tape_path):
        loaded = read_tape(small_tape_path)
        assert loaded.sha256 == small_tape.sha256
        assert loaded.num_frames == small_tape.num_frames
        assert compare_tapes(small_tape, loaded).clean

    def test_header_is_cheap_to_read(self, small_tape_path):
        header = read_header(small_tape_path)
        assert header["format"] == TAPE_FORMAT
        assert header["scenario"]["players"] == SMALL.players

    def test_verify_clean(self, small_tape):
        result = verify_tape(small_tape)
        assert result.clean
        assert result.frames == small_tape.num_frames
        assert result.divergence is None


# ---- rejection paths -------------------------------------------------------

def _rows(path):
    return gzip.decompress(path.read_bytes()).splitlines()


def _write_rows(path, rows):
    path.write_bytes(gzip.compress(b"\n".join(rows) + b"\n", 9, mtime=0))


class TestRejection:
    def test_version_mismatch(self, small_tape_path):
        rows = _rows(small_tape_path)
        header = json.loads(rows[0])
        header["version"] = 99
        rows[0] = json.dumps(header).encode()
        _write_rows(small_tape_path, rows)
        with pytest.raises(TapeFormatError, match="unsupported tape version"):
            read_tape(small_tape_path)

    def test_format_tag_mismatch(self, small_tape_path):
        rows = _rows(small_tape_path)
        header = json.loads(rows[0])
        header["format"] = "someone-elses.tape"
        rows[0] = json.dumps(header).encode()
        _write_rows(small_tape_path, rows)
        with pytest.raises(TapeFormatError, match="unknown tape format"):
            read_tape(small_tape_path)

    def test_config_hash_mismatch(self, small_tape_path):
        rows = _rows(small_tape_path)
        header = json.loads(rows[0])
        header["scenario"]["seed"] += 1  # config no longer matches its hash
        rows[0] = json.dumps(header).encode()
        _write_rows(small_tape_path, rows)
        with pytest.raises(TapeIntegrityError, match="config_hash mismatch"):
            read_tape(small_tape_path)

    def test_payload_tamper_reports_first_bad_frame(self, small_tape_path):
        rows = _rows(small_tape_path)
        frame_indices = [
            i for i, row in enumerate(rows)
            if json.loads(row).get("kind") == "frame"
            and json.loads(row)["messages"]
        ]
        victim = frame_indices[len(frame_indices) // 2]
        row = json.loads(rows[victim])
        # Flip a byte inside the base64-armoured binary payload.
        import base64

        payload = bytearray(base64.b64decode(row["messages"][0][4]))
        payload[0] ^= 0xFF
        row["messages"][0][4] = base64.b64encode(bytes(payload)).decode("ascii")
        rows[victim] = json.dumps(row).encode()
        _write_rows(small_tape_path, rows)
        with pytest.raises(TapeIntegrityError) as excinfo:
            read_tape(small_tape_path)
        assert excinfo.value.frame == json.loads(rows[victim])["frame"]

    def test_truncation_is_rejected(self, small_tape_path):
        rows = _rows(small_tape_path)
        _write_rows(small_tape_path, rows[:-1])  # drop the footer
        with pytest.raises(TapeIntegrityError, match="truncated"):
            read_tape(small_tape_path)

    def test_garbage_file_is_rejected(self, tmp_path):
        path = tmp_path / "garbage.tape"
        path.write_bytes(b"not a gzip stream at all")
        with pytest.raises(TapeIntegrityError, match="not a readable tape"):
            read_tape(path)


# ---- divergence reporting --------------------------------------------------

class TestDivergence:
    def test_first_divergent_frame_via_monkeypatch(self, small_tape, monkeypatch):
        """A protocol change must be pinned to its first divergent frame."""
        kill_frames = sorted(
            frame.frame
            for frame in small_tape.frames
            for message in frame.messages
            if message.type_name() == "KillClaim"
        )
        assert kill_frames, "small tape must contain kill claims"
        original = WatchmenNode.claim_kill

        def skewed(self, frame, victim_id, weapon, distance):
            return original(self, frame, victim_id, weapon, distance + 1.0)

        monkeypatch.setattr(WatchmenNode, "claim_kill", skewed)
        result = verify_tape(small_tape)
        assert not result.clean
        assert result.divergence is not None
        assert result.divergence.frame == kill_frames[0]

    def test_message_diff_is_structured(self, small_tape):
        mutated = read_tape_copy(small_tape)
        victim = next(
            f for f in mutated.frames if len(f.messages) >= 2
        )
        message = victim.messages[1]
        victim.messages[1] = TapedMessage(
            src=message.src,
            dst=message.dst,
            size_bytes=message.size_bytes + 7,
            accepted=message.accepted,
            payload=message.payload,
        )
        mutated.fingerprint()
        result = compare_tapes(small_tape, mutated)
        assert not result.clean
        assert result.divergence.kind == "message"
        assert result.divergence.frame == victim.frame
        assert result.divergence.index == 1
        assert result.divergence.expected["size_bytes"] + 7 == (
            result.divergence.actual["size_bytes"]
        )

    def test_frame_count_mismatch(self, small_tape):
        shorter = read_tape_copy(small_tape)
        shorter.frames = shorter.frames[:-5]
        shorter.fingerprint()
        result = compare_tapes(small_tape, shorter)
        assert not result.clean
        assert result.divergence.kind == "frames"


def read_tape_copy(tape: Tape) -> Tape:
    """A deep, independent copy via the serialisation path."""
    return Tape(
        scenario=tape.scenario,
        trace=tape.trace,
        frames=[
            TapeFrame(frame=f.frame, messages=list(f.messages))
            for f in tape.frames
        ],
        faults=tape.faults,
        sha256=tape.sha256,
    )
