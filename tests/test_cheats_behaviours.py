"""Unit tests for the cheat behaviours (hooks in isolation)."""

import pytest

from repro.cheats import (
    AimbotCheat,
    BlindOpponentCheat,
    BogusSubscriptionCheat,
    CheatBehaviour,
    ConsistencyCheat,
    EscapingCheat,
    FakeKillCheat,
    FastRateCheat,
    GuidanceLieCheat,
    NetworkFloodCheat,
    ReplayCheat,
    SpeedHack,
    SpoofCheat,
    SuppressCorrectCheat,
    TeleportCheat,
    TimeCheat,
)
from repro.core.messages import (
    SUB_VISION,
    GuidanceMessage,
    KillClaim,
    StateUpdate,
    SubscriptionRequest,
)
from repro.game.avatar import AvatarSnapshot
from repro.game.deadreckoning import predict_linear
from repro.game.vector import Vec3


def snap(player_id=0, frame=0, x=0.0, vx=100.0, yaw=0.0, alive=True):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=Vec3(x, 0, 0),
        velocity=Vec3(vx, 0, 0),
        yaw=yaw,
        health=100,
        armor=0,
        weapon="machinegun",
        ammo=50,
        alive=alive,
    )


def update(frame=0, sequence=1, player_id=0, x=0.0):
    return StateUpdate(player_id, frame, sequence, snap(player_id, frame, x))


class TestBase:
    def test_bad_cheat_rate_rejected(self):
        with pytest.raises(ValueError):
            CheatBehaviour(cheat_rate=1.5)

    def test_honest_defaults(self):
        cheat = CheatBehaviour(cheat_rate=0.0)
        s = snap()
        assert cheat.mutate_snapshot(0, s) is s
        assert cheat.filter_outgoing(0, update(), 3) == [(update(), 3)]
        assert cheat.extra_messages(0) == []

    def test_cheat_fraction_tracks_rolls(self):
        cheat = CheatBehaviour(cheat_rate=0.0, seed=1)
        for _ in range(10):
            cheat._roll()
        assert cheat.log.cheat_fraction == 0.0


class TestSpeedHack:
    def test_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            SpeedHack(factor=1.0)

    def test_offset_accumulates(self):
        cheat = SpeedHack(factor=2.0, cheat_rate=1.0, seed=1)
        first = cheat.mutate_snapshot(0, snap(frame=0, x=0.0))
        second = cheat.mutate_snapshot(1, snap(frame=1, x=5.0))
        assert first.position.x > 0.0
        assert second.position.x - 5.0 > first.position.x - 0.0

    def test_dead_avatar_untouched(self):
        cheat = SpeedHack(cheat_rate=1.0, seed=1)
        s = snap(alive=False)
        assert cheat.mutate_snapshot(0, s) is s

    def test_ground_truth_recorded(self):
        cheat = SpeedHack(cheat_rate=1.0, seed=1)
        cheat.mutate_snapshot(7, snap(frame=7))
        assert 7 in cheat.log.cheat_frames

    def test_zero_velocity_surges_forward(self):
        cheat = SpeedHack(factor=2.0, cheat_rate=1.0, seed=1)
        mutated = cheat.mutate_snapshot(0, snap(vx=0.0, yaw=0.0))
        assert mutated.position.x > 0.0


class TestTeleport:
    def test_warp_distance(self):
        cheat = TeleportCheat(distance=600.0, cheat_rate=1.0, seed=1)
        mutated = cheat.mutate_snapshot(0, snap())
        assert mutated.position.distance_to(snap().position) == pytest.approx(
            600.0
        )


class TestFlowCheats:
    def test_escaping_goes_silent(self):
        cheat = EscapingCheat(escape_frame=5)
        assert cheat.filter_outgoing(4, update(), 1)
        assert cheat.filter_outgoing(5, update(), 1) == []
        assert cheat.filter_outgoing(100, update(), 1) == []

    def test_time_cheat_delays(self):
        cheat = TimeCheat(delay_frames=3)
        assert cheat.filter_outgoing(0, update(frame=0), 1) == []
        assert cheat.extra_messages(1) == []
        assert cheat.extra_messages(2) == []
        released = cheat.extra_messages(3)
        assert len(released) == 1
        assert released[0][0].frame == 0  # stamped with the original frame

    def test_time_cheat_bad_delay(self):
        with pytest.raises(ValueError):
            TimeCheat(delay_frames=0)

    def test_fast_rate_duplicates(self):
        cheat = FastRateCheat(multiplier=3, cheat_rate=1.0, seed=1)
        sends = cheat.filter_outgoing(0, update(), 1)
        assert len(sends) == 3
        sequences = {m.sequence for m, _ in sends}
        assert len(sequences) == 3  # distinct sequences evade the replay screen

    def test_fast_rate_leaves_other_messages(self):
        cheat = FastRateCheat(cheat_rate=1.0, seed=1)
        claim = KillClaim(0, 1, 0, 1, "railgun", 100.0)
        assert len(cheat.filter_outgoing(0, claim, 1)) == 1

    def test_suppress_correct_warps_after_burst(self):
        cheat = SuppressCorrectCheat(burst_length=3, cheat_rate=1.0, seed=1)
        first = cheat.filter_outgoing(0, update(frame=0, x=0.0), 1)
        assert first == []  # burst starts
        assert cheat.filter_outgoing(1, update(frame=1, x=16.0), 1) == []
        assert cheat.filter_outgoing(2, update(frame=2, x=32.0), 1) == []
        released = cheat.filter_outgoing(3, update(frame=3, x=48.0), 1)
        assert len(released) == 1
        warped = released[0][0].snapshot.position.x
        assert warped == pytest.approx(96.0)  # doubled travel

    def test_blind_opponent_drops_updates(self):
        cheat = BlindOpponentCheat(cheat_rate=1.0, seed=1)
        assert cheat.filter_outgoing(0, update(), 1) == []

    def test_flood_amplifies_at_victim(self):
        cheat = NetworkFloodCheat(victim_id=9, amplification=4, seed=1)
        sends = cheat.filter_outgoing(0, update(), 1)
        to_victim = [d for _, d in sends if d == 9]
        assert len(to_victim) == 4
        assert (sends[0][1]) == 1  # the legitimate copy still goes out


class TestGuidanceLie:
    def test_prediction_rewritten(self):
        cheat = GuidanceLieCheat(cheat_rate=1.0, seed=1)
        s = snap()
        message = GuidanceMessage(0, 0, 1, s, predict_linear(s))
        [(lied, _)] = cheat.filter_outgoing(0, message, 1)
        assert lied.prediction.velocity != message.prediction.velocity
        assert lied.prediction.origin == message.prediction.origin

    def test_non_guidance_untouched(self):
        cheat = GuidanceLieCheat(cheat_rate=1.0, seed=1)
        [(same, _)] = cheat.filter_outgoing(0, update(), 1)
        assert same == update()


class TestFabricationCheats:
    def test_fake_kill_claims(self):
        cheat = FakeKillCheat([1, 2, 3], cheat_rate=1.0, seed=1)
        cheat.player_id = 0
        cheat.proxy_lookup = lambda frame: 7
        [(claim, dst)] = cheat.extra_messages(0)
        assert isinstance(claim, KillClaim)
        assert dst == 7
        assert claim.victim_id in {1, 2, 3}

    def test_fake_kill_needs_wiring(self):
        cheat = FakeKillCheat([1], cheat_rate=1.0, seed=1)
        assert cheat.extra_messages(0) == []

    def test_fake_kill_needs_victims(self):
        with pytest.raises(ValueError):
            FakeKillCheat([])

    def test_bogus_subscription(self):
        cheat = BogusSubscriptionCheat(SUB_VISION, cheat_rate=1.0, seed=1)
        cheat.player_id = 0
        cheat.proxy_lookup = lambda frame: 5
        cheat.invisible_targets = lambda frame: [3]
        [(request, dst)] = cheat.extra_messages(0)
        assert isinstance(request, SubscriptionRequest)
        assert request.target_id == 3
        assert request.kind == SUB_VISION
        assert dst == 5

    def test_bogus_subscription_no_targets(self):
        cheat = BogusSubscriptionCheat(cheat_rate=1.0, seed=1)
        cheat.player_id = 0
        cheat.proxy_lookup = lambda frame: 5
        cheat.invisible_targets = lambda frame: []
        assert cheat.extra_messages(0) == []

    def test_bogus_subscription_kind_validated(self):
        with pytest.raises(ValueError):
            BogusSubscriptionCheat("BOTH")

    def test_spoof_forges_sender(self):
        cheat = SpoofCheat(victim_id=4, cheat_rate=1.0, seed=1)
        cheat.snapshot_source = lambda frame: snap(player_id=4, frame=frame)
        cheat.proxy_lookup = lambda frame: 6
        [(forged, dst)] = cheat.extra_messages(0)
        assert forged.sender_id == 4  # the lie
        assert dst == 6

    def test_replay_captures_and_resends(self):
        from repro.crypto.signatures import Signature

        cheat = ReplayCheat(cheat_rate=1.0, seed=1)
        cheat.roster = [3, 4]
        message = StateUpdate(
            2, 0, 1, snap(2), signature=Signature("hmac-sha256", 2, b"x" * 13)
        )
        cheat.observe_incoming(0, 2, message)
        replays = cheat.extra_messages(1)
        assert replays and replays[0][0] is message
        assert replays[0][1] in {3, 4}

    def test_replay_ignores_unsigned(self):
        cheat = ReplayCheat(cheat_rate=1.0, seed=1)
        cheat.roster = [3]
        cheat.observe_incoming(0, 2, update())
        assert cheat.extra_messages(1) == []


class TestConsistency:
    def test_direct_lie_added(self):
        cheat = ConsistencyCheat([5, 6], cheat_rate=1.0, seed=1)
        sends = cheat.filter_outgoing(0, update(x=100.0), 1)
        assert len(sends) == 2
        lie, victim = sends[1]
        assert victim in {5, 6}
        assert lie.snapshot.position != sends[0][0].snapshot.position

    def test_needs_victims(self):
        with pytest.raises(ValueError):
            ConsistencyCheat([])


class TestAimbot:
    def test_snaps_to_target(self):
        cheat = AimbotCheat(cheat_rate=1.0, seed=1)
        target = snap(player_id=3, x=0.0)
        target = AvatarSnapshot(
            player_id=3, frame=0, position=Vec3(0, 500, 0), velocity=Vec3(),
            yaw=0.0, health=100, armor=0, weapon="machinegun", ammo=9,
            alive=True,
        )
        cheat.target_source = lambda frame: target
        mutated = cheat.mutate_snapshot(0, snap(yaw=0.0))
        import math

        assert mutated.yaw == pytest.approx(math.pi / 2)

    def test_without_target_source_honest(self):
        cheat = AimbotCheat(cheat_rate=1.0, seed=1)
        s = snap()
        assert cheat.mutate_snapshot(0, s) is s
