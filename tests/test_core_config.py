"""Unit tests for WatchmenConfig."""

import pytest

from repro.core.config import WatchmenConfig


class TestValidation:
    def test_defaults_valid(self):
        config = WatchmenConfig()
        assert config.frame_seconds == 0.05
        assert config.proxy_period_frames == 40
        assert config.interest.interest_size == 5

    @pytest.mark.parametrize(
        "field,value",
        [
            ("frame_seconds", 0.0),
            ("proxy_period_frames", 0),
            ("frequent_interval_frames", 0),
            ("guidance_interval_frames", -5),
            ("position_interval_frames", 0),
            ("handoff_depth", -1),
            ("signature_bits", 0),
            ("state_update_bits", -1),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            WatchmenConfig(**{field: value})

    def test_frozen(self):
        with pytest.raises(Exception):
            WatchmenConfig().proxy_period_frames = 99  # type: ignore[misc]


class TestEpochs:
    def test_epoch_of_frame(self):
        config = WatchmenConfig(proxy_period_frames=40)
        assert config.epoch_of_frame(0) == 0
        assert config.epoch_of_frame(39) == 0
        assert config.epoch_of_frame(40) == 1
        assert config.epoch_of_frame(80) == 2

    def test_negative_frame_rejected(self):
        with pytest.raises(ValueError):
            WatchmenConfig().epoch_of_frame(-1)

    def test_custom_period(self):
        config = WatchmenConfig(proxy_period_frames=10)
        assert config.epoch_of_frame(25) == 2


class TestPaperConstants:
    """The paper-given numbers DESIGN.md promises."""

    def test_frame_is_50ms(self):
        assert WatchmenConfig().frame_seconds == 0.05

    def test_guidance_once_per_second(self):
        config = WatchmenConfig()
        assert config.guidance_interval_frames * config.frame_seconds == 1.0

    def test_position_updates_once_per_second(self):
        config = WatchmenConfig()
        assert config.position_interval_frames * config.frame_seconds == 1.0

    def test_proxy_period_couple_of_seconds(self):
        config = WatchmenConfig()
        seconds = config.proxy_period_frames * config.frame_seconds
        assert 1.0 <= seconds <= 4.0

    def test_signature_100_bits(self):
        assert WatchmenConfig().signature_bits == 100

    def test_state_update_700_bits(self):
        assert WatchmenConfig().state_update_bits == 700

    def test_handoff_two_predecessors(self):
        assert WatchmenConfig().handoff_depth == 2

    def test_150ms_staleness_bound(self):
        config = WatchmenConfig()
        assert config.max_useful_age_frames * config.frame_seconds == pytest.approx(0.15)
