"""Integration tests: a short protocol replay populates the registry.

These verify the tentpole wiring end-to-end — an enabled
``MetricsRegistry`` handed to :class:`WatchmenSession` (and through it
to the network, proxy schedule, and every node) comes back populated
with frame-time histograms, per-message-type counters, and bandwidth
gauges, while a disabled registry records nothing and changes nothing.
"""

import pytest

from repro.core import WatchmenSession
from repro.game import generate_trace, make_longest_yard
from repro.obs import MetricsRegistry

PLAYERS = 8
FRAMES = 60


@pytest.fixture(scope="module")
def instrumented_run():
    game_map = make_longest_yard()
    trace = generate_trace(
        num_players=PLAYERS, num_frames=FRAMES, seed=42, game_map=game_map
    )
    registry = MetricsRegistry(enabled=True)
    session = WatchmenSession(trace, game_map=game_map, registry=registry)
    report = session.run()
    return registry, report


class TestReplayPopulatesRegistry:
    def test_frame_time_histogram(self, instrumented_run):
        registry, _ = instrumented_run
        frame = registry.histogram("session.frame_seconds")
        assert frame.count == FRAMES
        assert frame.percentile(0.5) > 0.0
        assert frame.percentile(0.99) >= frame.percentile(0.5)

    def test_per_message_type_counters(self, instrumented_run):
        registry, report = instrumented_run
        counters = registry.snapshot()["counters"]
        assert counters["net.sent.StateUpdate.count"] > 0
        assert counters["net.sent.StateUpdate.bytes"] > 0
        sent_total = sum(
            value
            for name, value in counters.items()
            if name.startswith("net.sent.") and name.endswith(".count")
        )
        assert sent_total == report.messages_sent == counters["net.datagrams.sent"]

    def test_delivery_and_verification_latencies(self, instrumented_run):
        registry, _ = instrumented_run
        delivery = registry.histogram("net.delivery_seconds")
        verify = registry.histogram("node.verify_seconds")
        assert delivery.count > 0
        assert verify.count > 0
        # One-way LAN latency is configured in milliseconds, not seconds.
        assert 0.0 < delivery.percentile(0.5) < 1.0

    def test_bandwidth_gauges_match_report(self, instrumented_run):
        registry, report = instrumented_run
        gauges = registry.snapshot()["gauges"]
        assert gauges["net.upload_kbps.mean"] == pytest.approx(
            report.mean_upload_kbps
        )
        assert gauges["net.upload_kbps.max"] == pytest.approx(
            report.max_upload_kbps
        )
        assert gauges["session.players"] == PLAYERS
        assert gauges["session.frames"] == FRAMES

    def test_node_metrics_mirror_registry(self, instrumented_run):
        registry, report = instrumented_run
        counters = registry.snapshot()["counters"]
        ages = registry.histogram("node.update_age_frames")
        assert ages.count == sum(report.age_histogram.values())
        assert counters.get("node.signature_failures", 0) == 0

    def test_proxy_schedule_memoization_counters(self, instrumented_run):
        registry, _ = instrumented_run
        counters = registry.snapshot()["counters"]
        assert counters["proxy.schedule.lookups"] > counters["proxy.schedule.draws"]
        assert counters["proxy.schedule.draws"] > 0


class TestDisabledRegistryIsInert:
    def test_run_records_nothing(self):
        game_map = make_longest_yard()
        trace = generate_trace(
            num_players=PLAYERS, num_frames=20, seed=42, game_map=game_map
        )
        registry = MetricsRegistry(enabled=False)
        session = WatchmenSession(trace, game_map=game_map, registry=registry)
        report = session.run()
        assert report.messages_sent > 0
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}

    def test_instrumentation_does_not_change_results(self):
        game_map = make_longest_yard()
        trace = generate_trace(
            num_players=PLAYERS, num_frames=40, seed=42, game_map=game_map
        )
        plain = WatchmenSession(trace, game_map=game_map).run()
        instrumented = WatchmenSession(
            trace, game_map=game_map, registry=MetricsRegistry(enabled=True)
        ).run()
        assert plain.messages_sent == instrumented.messages_sent
        assert plain.age_histogram == instrumented.age_histogram
        assert plain.mean_upload_kbps == pytest.approx(
            instrumented.mean_upload_kbps
        )
