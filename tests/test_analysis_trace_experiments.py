"""Tests for the trace-driven experiment harnesses (Figs. 1, 4, 5, churn)."""

import pytest

from repro.analysis import (
    churn_statistics,
    exposure_experiment,
    honest_proxy_probability,
    hotspot_concentration,
    presence_heatmap,
    render_ascii,
    witness_experiment,
)
from repro.analysis.exposure import result_matrix
from repro.core.disclosure import ExposureCategory


class TestHeatmap:
    def test_shape(self, small_trace, longest_yard):
        heatmap = presence_heatmap(small_trace, longest_yard, grid=16)
        assert heatmap.shape == (16, 16)

    def test_values_normalised(self, small_trace, longest_yard):
        heatmap = presence_heatmap(small_trace, longest_yard, grid=16)
        values = [v for row in heatmap.cells for v in row]
        assert max(values) == pytest.approx(1.0)
        assert min(values) >= 0.0

    def test_total_samples_counts_alive_presence(self, small_trace, longest_yard):
        heatmap = presence_heatmap(small_trace, longest_yard, grid=16)
        alive = sum(
            1
            for frame in small_trace.frames
            for snap in frame.values()
            if snap.alive
        )
        assert heatmap.total_samples() == alive

    def test_player_filter(self, small_trace, longest_yard):
        one = presence_heatmap(small_trace, longest_yard, grid=8, player_ids=[0])
        full = presence_heatmap(small_trace, longest_yard, grid=8)
        assert one.total_samples() < full.total_samples()

    def test_grid_validation(self, small_trace, longest_yard):
        with pytest.raises(ValueError):
            presence_heatmap(small_trace, longest_yard, grid=1)

    def test_figure1_hotspots(self, small_trace, longest_yard):
        """The paper's claim: presence is strongly concentrated."""
        heatmap = presence_heatmap(small_trace, longest_yard, grid=16)
        concentration = hotspot_concentration(heatmap, top_fraction=0.10)
        assert concentration > 0.4  # uniform would give 0.10

    def test_npc_more_concentrated_than_humans(self, longest_yard):
        from repro.game import generate_trace

        humans = generate_trace(8, 120, seed=5, npc_fraction=0.0)
        npcs = generate_trace(8, 120, seed=5, npc_fraction=1.0)
        h_conc = hotspot_concentration(
            presence_heatmap(humans, longest_yard, grid=16), 0.05
        )
        n_conc = hotspot_concentration(
            presence_heatmap(npcs, longest_yard, grid=16), 0.05
        )
        # Both populations concentrate far beyond uniform (5 %): humans on
        # item hotspots, NPCs on their predetermined patrol trails.
        assert h_conc > 0.3
        assert n_conc > 0.3

    def test_ascii_rendering(self, small_trace, longest_yard):
        heatmap = presence_heatmap(small_trace, longest_yard, grid=8)
        art = render_ascii(heatmap)
        assert len(art.splitlines()) == 8

    def test_top_fraction_validated(self, small_trace, longest_yard):
        heatmap = presence_heatmap(small_trace, longest_yard, grid=8)
        with pytest.raises(ValueError):
            hotspot_concentration(heatmap, 0.0)


class TestExposure:
    @pytest.fixture(scope="class")
    def results(self, small_trace, longest_yard):
        return exposure_experiment(
            small_trace,
            longest_yard,
            coalition_sizes=[1, 2, 4],
            coalitions_per_size=4,
            frame_stride=40,
        )

    def test_all_cells_present(self, results):
        matrix = result_matrix(results)
        assert set(matrix) == {"client-server", "donnybrook", "watchmen"}
        for per_size in matrix.values():
            assert set(per_size) == {1, 2, 4}

    def test_counts_sum_to_honest_players(self, results):
        for result in results:
            total = sum(result.histogram.counts.values())
            assert total == pytest.approx(8 - result.coalition_size)

    def test_client_server_minimum_information(self, results):
        """CS grants only FREQ (PVS) or NOTHING — no DR, no complete."""
        matrix = result_matrix(results)
        for counts in matrix["client-server"].values():
            assert counts[ExposureCategory.COMPLETE] == 0.0
            assert counts[ExposureCategory.DR] == 0.0
            assert counts[ExposureCategory.INFREQ] == 0.0

    def test_donnybrook_dr_about_everyone(self, results):
        matrix = result_matrix(results)
        for counts in matrix["donnybrook"].values():
            assert counts[ExposureCategory.INFREQ] == 0.0
            assert counts[ExposureCategory.NOTHING] == 0.0

    def test_watchmen_minimum_info_dominates(self, results):
        """Figure 4: Watchmen leaves the coalition mostly infrequent data."""
        matrix = result_matrix(results)
        counts = matrix["watchmen"][1]
        informative = (
            counts[ExposureCategory.COMPLETE]
            + counts[ExposureCategory.FREQ_DR]
            + counts[ExposureCategory.FREQ]
            + counts[ExposureCategory.DR]
        )
        assert counts[ExposureCategory.INFREQ] > informative * 0.5

    def test_watchmen_beats_donnybrook(self, results):
        """The headline: Watchmen discloses far less than Donnybrook."""
        matrix = result_matrix(results)
        for size in (1, 2, 4):
            watchmen_rich = (
                matrix["watchmen"][size][ExposureCategory.FREQ_DR]
                + matrix["watchmen"][size][ExposureCategory.FREQ]
                + matrix["watchmen"][size][ExposureCategory.DR]
                + matrix["watchmen"][size][ExposureCategory.COMPLETE]
            )
            donny_rich = (
                matrix["donnybrook"][size][ExposureCategory.FREQ_DR]
                + matrix["donnybrook"][size][ExposureCategory.FREQ]
                + matrix["donnybrook"][size][ExposureCategory.DR]
            )
            assert watchmen_rich < donny_rich

    def test_exposure_grows_with_coalition(self, results):
        # Coalitions are sampled independently per size, so compare the
        # extremes (nested monotonicity is covered in the collusion tests).
        matrix = result_matrix(results)
        complete = [
            matrix["watchmen"][size][ExposureCategory.COMPLETE]
            for size in (1, 2, 4)
        ]
        assert complete[0] < complete[2]

    def test_empty_sizes_rejected(self, small_trace, longest_yard):
        with pytest.raises(ValueError):
            exposure_experiment(small_trace, longest_yard, coalition_sizes=[])


class TestWitnesses:
    def test_analytic_probability(self):
        assert honest_proxy_probability(48, 4) == pytest.approx(1 - 3 / 47)
        assert honest_proxy_probability(48, 1) == 1.0

    def test_analytic_validation(self):
        with pytest.raises(ValueError):
            honest_proxy_probability(1, 1)
        with pytest.raises(ValueError):
            honest_proxy_probability(10, 11)

    def test_experiment_results(self, small_trace, longest_yard):
        results = witness_experiment(
            small_trace,
            longest_yard,
            coalition_sizes=[1, 4],
            coalitions_per_size=4,
            frame_stride=40,
        )
        assert len(results) == 2
        solo, coalition4 = results
        # Solo cheater: proxy always honest.
        assert solo.avg_honest_proxies == pytest.approx(1.0)
        # With 3 partners out of 8 players: 1 − 3/7 ≈ 0.57 expected.
        assert coalition4.avg_honest_proxies == pytest.approx(
            1 - 3 / 7, abs=0.15
        )
        # Witnesses exist beyond the proxy.
        assert solo.total_witnesses > 1.0

    def test_witness_counts_shrink_with_collusion(
        self, small_trace, longest_yard
    ):
        results = witness_experiment(
            small_trace,
            longest_yard,
            coalition_sizes=[1, 4],
            coalitions_per_size=4,
            frame_stride=40,
        )
        assert results[1].avg_honest_proxies <= results[0].avg_honest_proxies


class TestChurn:
    @pytest.fixture(scope="class")
    def stats(self, medium_trace, longest_yard):
        return churn_statistics(medium_trace, longest_yard)

    def test_turnover_meaningful(self, stats):
        """A large share of the IS changes within a proxy period.

        The paper measures ~50 % over human Quake III play; our bots are
        twitchier, so turnover runs higher — the design consequence
        (retention timeouts, not per-frame subscriptions) is the same.
        """
        assert 0.15 <= stats.turnover_after_period <= 0.97

    def test_long_spells_rare(self, stats):
        """<10 % of spells last more than 300 frames (paper)."""
        assert stats.spells_longer_than_cap <= 0.2

    def test_frame_stability_high(self, stats):
        """~88 % of the IS persists frame to frame (paper)."""
        assert stats.frame_stability >= 0.75

    def test_slow_attention_centre_majority(self, stats):
        """~83 % of IS entries are not instantly the attention centre."""
        assert stats.slow_attention_centre >= 0.5

    def test_mean_spell_positive(self, stats):
        assert stats.mean_spell_frames > 1.0
