"""Exactness gates for the batched frame kernels.

Every fast path introduced for paper-scale throughput — the physics batch
step, the flat dead-reckoning kernels, batched attention scoring, and the
bot perception loop — retains its naive implementation verbatim, and the
properties here assert the two produce *bit-identical* results (floats
compared by their IEEE-754 bit patterns, not tolerances).  This is the
same playbook the interest-management fast path uses
(tests/test_game_interest_fast.py): an optimisation that changes a single
bit anywhere changes traces, tapes and signatures, so nothing less than
bit equality is acceptable.
"""

from __future__ import annotations

import math
import struct
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.game.avatar import AvatarSnapshot
from repro.game.bots import BotController
from repro.game.deadreckoning import (
    GuidancePrediction,
    simulate_guidance,
    simulate_guidance_reference,
    trajectory_deviation_area,
    trajectory_deviation_area_reference,
)
from repro.game.gamemap import make_arena, make_corridors, make_longest_yard
from repro.game.interest import (
    InteractionRecency,
    InterestConfig,
    ObserverFrame,
    _attention_score_reference,
)
from repro.game.physics import MoveIntent, Physics
from repro.game.simulator import generate_trace
from repro.game.vector import Vec3

MAPS = {
    "longest-yard": make_longest_yard(),
    "arena": make_arena(),
    "corridors": make_corridors(),
}


def bits(value: float) -> bytes:
    """The IEEE-754 bit pattern — the equality the exactness gate demands."""
    return struct.pack(">d", value)


def assert_results_bit_identical(expected, actual) -> None:
    assert bits(actual.position.x) == bits(expected.position.x)
    assert bits(actual.position.y) == bits(expected.position.y)
    assert bits(actual.position.z) == bits(expected.position.z)
    assert bits(actual.velocity.x) == bits(expected.velocity.x)
    assert bits(actual.velocity.y) == bits(expected.velocity.y)
    assert bits(actual.velocity.z) == bits(expected.velocity.z)
    assert bits(actual.yaw) == bits(expected.yaw)
    assert actual.on_ground == expected.on_ground
    assert actual.fall_damage == expected.fall_damage
    assert actual.fell_in_void == expected.fell_in_void


finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
coords = st.floats(-2400.0, 2400.0)
speeds = st.floats(-1000.0, 1000.0)
yaws = st.floats(-8.0, 8.0)


def vec(strategy):
    return st.builds(Vec3, strategy, strategy, strategy)


_states = st.tuples(
    vec(coords),
    vec(speeds),
    yaws,
    st.builds(
        MoveIntent,
        wish_direction=vec(st.floats(-1.0, 1.0)),
        wish_speed=st.floats(-20.0, 500.0),
        jump=st.booleans(),
        yaw=yaws,
    ),
)


class TestPhysicsBatch:
    @pytest.mark.parametrize("map_name", sorted(MAPS))
    @given(states=st.lists(_states, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_step_many_matches_step_bitwise(self, map_name, states):
        physics = Physics(MAPS[map_name])
        batched = physics.step_many(states)
        assert len(batched) == len(states)
        for args, fast in zip(states, batched):
            assert_results_bit_identical(physics.step(*args), fast)

    @pytest.mark.parametrize("map_name", sorted(MAPS))
    def test_step_many_near_floors_and_walls(self, map_name):
        """Deterministic sweep biased to land on platform edges, where the
        wall-block and landing branches actually fire."""
        game_map = MAPS[map_name]
        physics = Physics(game_map)
        rng = Random(map_name)
        states = []
        anchors = [box.center for box in game_map.solids] or [Vec3()]
        for index in range(600):
            anchor = anchors[index % len(anchors)]
            position = Vec3(
                anchor.x + rng.uniform(-300.0, 300.0),
                anchor.y + rng.uniform(-300.0, 300.0),
                anchor.z + rng.uniform(-80.0, 200.0),
            )
            velocity = Vec3(
                rng.uniform(-400.0, 400.0),
                rng.uniform(-400.0, 400.0),
                rng.uniform(-900.0, 300.0),
            )
            intent = MoveIntent(
                wish_direction=Vec3(rng.uniform(-1, 1), rng.uniform(-1, 1), 0.0),
                wish_speed=rng.uniform(0.0, 400.0),
                jump=rng.random() < 0.3,
                yaw=rng.uniform(-math.pi, math.pi),
            )
            states.append((position, velocity, rng.uniform(-math.pi, math.pi), intent))
        for args, fast in zip(states, physics.step_many(states)):
            assert_results_bit_identical(physics.step(*args), fast)

    def test_step_many_empty_batch(self):
        assert Physics(MAPS["arena"]).step_many([]) == []

    @pytest.mark.parametrize("map_name", sorted(MAPS))
    @given(x=coords, y=coords)
    @settings(max_examples=100, deadline=None)
    def test_floor_height_xy_matches_floor_height(self, map_name, x, y):
        game_map = MAPS[map_name]
        assert game_map.floor_height_xy(x, y) == game_map.floor_height(
            Vec3(x, y, 0.0)
        )


_predictions = st.builds(
    GuidancePrediction,
    frame=st.integers(0, 500),
    origin=vec(coords),
    velocity=vec(speeds),
    yaw=yaws,
    horizon_frames=st.integers(1, 40),
)


class TestDeadReckoningKernels:
    @given(
        prediction=_predictions,
        start=st.integers(0, 600),
        span=st.integers(0, 80),
    )
    @settings(max_examples=100, deadline=None)
    def test_simulate_guidance_matches_reference_bitwise(
        self, prediction, start, span
    ):
        fast = simulate_guidance(prediction, start, start + span)
        reference = simulate_guidance_reference(prediction, start, start + span)
        assert len(fast) == len(reference)
        for a, b in zip(fast, reference):
            assert bits(a.x) == bits(b.x)
            assert bits(a.y) == bits(b.y)
            assert bits(a.z) == bits(b.z)

    def test_simulate_guidance_rejects_reversed_range(self):
        prediction = GuidancePrediction(0, Vec3(), Vec3(), 0.0, 10)
        with pytest.raises(ValueError):
            simulate_guidance(prediction, 10, 5)

    @given(
        pairs=st.lists(st.tuples(vec(coords), vec(coords)), max_size=40),
        frame_seconds=st.floats(0.01, 0.2),
    )
    @settings(max_examples=100, deadline=None)
    def test_deviation_area_matches_reference_bitwise(self, pairs, frame_seconds):
        predicted = [p for p, _ in pairs]
        actual = [a for _, a in pairs]
        assert bits(
            trajectory_deviation_area(predicted, actual, frame_seconds)
        ) == bits(
            trajectory_deviation_area_reference(predicted, actual, frame_seconds)
        )

    def test_deviation_area_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            trajectory_deviation_area([Vec3()], [Vec3(), Vec3()])


def _roster(seed: int, count: int) -> dict[int, AvatarSnapshot]:
    rng = Random(seed)
    return {
        pid: AvatarSnapshot(
            player_id=pid,
            frame=0,
            position=Vec3(
                rng.uniform(-2000.0, 2000.0),
                rng.uniform(-2000.0, 2000.0),
                rng.uniform(0.0, 300.0),
            ),
            velocity=Vec3(),
            yaw=rng.uniform(-math.pi, math.pi),
            health=100,
            armor=0,
            weapon="machinegun",
            ammo=10,
            alive=rng.random() > 0.1,
        )
        for pid in range(count)
    }


class TestAttentionBatch:
    @given(seed=st.integers(0, 10_000), count=st.integers(2, 24))
    @settings(max_examples=60, deadline=None)
    def test_attention_scores_match_scalar_paths_bitwise(self, seed, count):
        roster = _roster(seed, count)
        config = InterestConfig()
        recency = InteractionRecency()
        rng = Random(seed + 1)
        for _ in range(count):
            a, b = rng.randrange(count), rng.randrange(count)
            if a != b:
                recency.record(a, b, rng.randrange(50))
        observer = roster[0]
        oframe = ObserverFrame(observer, config)
        candidates = [pid for pid in roster if pid != 0]
        batched = oframe.attention_scores(roster, candidates, 50, recency)
        assert set(batched) == set(candidates)
        for pid in candidates:
            scalar = oframe.attention_score(roster[pid], 50, recency)
            reference = _attention_score_reference(
                observer, roster[pid], 50, config, recency
            )
            assert bits(batched[pid]) == bits(scalar)
            assert bits(batched[pid]) == bits(reference)

    def test_attention_scores_without_recency(self):
        roster = _roster(3, 8)
        oframe = ObserverFrame(roster[0], InterestConfig())
        candidates = [pid for pid in roster if pid != 0]
        batched = oframe.attention_scores(roster, candidates, 0, None)
        for pid in candidates:
            assert bits(batched[pid]) == bits(
                oframe.attention_score(roster[pid], 0, None)
            )


class TestBotPerception:
    @given(seed=st.integers(0, 10_000), count=st.integers(2, 20))
    @settings(max_examples=40, deadline=None)
    def test_visible_enemies_matches_reference(self, seed, count):
        game_map = MAPS["longest-yard"]
        roster = _roster(seed, count)
        controller = BotController(0, game_map, Random(seed))
        fast = controller._visible_enemies(roster[0], roster)
        reference = controller._visible_enemies_reference(roster[0], roster)
        assert [s.player_id for s in fast] == [s.player_id for s in reference]
        assert fast == reference


class TestSimulatorBatching:
    def test_trace_unchanged_by_batched_kinematics(self, monkeypatch):
        """Replacing the batch kernel with a scalar step loop must produce
        the byte-identical trace — the simulator-level exactness gate."""
        batched = generate_trace(num_players=6, num_frames=50, seed=13)

        def scalar_loop(self, batch):
            return [self.step(*args) for args in batch]

        monkeypatch.setattr(Physics, "step_many", scalar_loop)
        looped = generate_trace(num_players=6, num_frames=50, seed=13)
        assert list(batched.to_json_rows()) == list(looped.to_json_rows())
