"""Membership under adversity: the ISSUE's three robustness properties.

Property-based (hypothesis) whole-session runs, derandomized and kept
small so tier-1 stays fast:

1. A crashed player is evicted everywhere within
   ``silence_threshold + effective_delay`` (plus proposal latency and
   epoch-boundary rounding).
2. A live player is never evicted under <= 20% uniform loss — the
   liveness-defense challenge/response defeats correlated first-hop
   silence.
3. Proxy crash with failover enabled strands nobody: the client fails
   over to a verifiable candidate within one proxy period.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WatchmenSession
from repro.core.config import PROXY_PERIOD_FRAMES, WatchmenConfig
from repro.faults import CrashFault, CrashProxyFault, FaultSchedule
from repro.game import generate_trace
from repro.net.transport import NetworkConfig

#: Eviction latency bound: silence detection + one proposal round
#: (frames, not epochs) + the effective-delay epoch + boundary rounding.
SILENCE_THRESHOLD_FRAMES = 60
EFFECTIVE_DELAY_EPOCHS = 1


def eviction_bound(crash_frame: int) -> int:
    rounding = 2 * PROXY_PERIOD_FRAMES  # quorum epoch + boundary alignment
    return (
        crash_frame
        + SILENCE_THRESHOLD_FRAMES
        + EFFECTIVE_DELAY_EPOCHS * PROXY_PERIOD_FRAMES
        + rounding
    )


class TestCrashedPlayerEvicted:
    @given(
        seed=st.integers(min_value=1, max_value=40),
        crash_frame=st.integers(min_value=45, max_value=85),
    )
    @settings(max_examples=5, deadline=None, derandomize=True)
    def test_evicted_within_bound(self, seed, crash_frame):
        bound = eviction_bound(crash_frame)
        trace = generate_trace(num_players=8, num_frames=bound + 1, seed=seed)
        schedule = FaultSchedule(
            crashes=(CrashFault(node_id=2, frame=crash_frame),)
        )
        session = WatchmenSession(trace, faults=schedule)
        session.run()
        for node in session.nodes.values():
            if node.player_id == 2:
                continue
            assert 2 in node.membership.removed, (
                f"node {node.player_id} had not evicted the crashed player "
                f"by frame {bound} (crash at {crash_frame}, seed {seed})"
            )


class TestLivePlayerNeverEvicted:
    @given(
        seed=st.integers(min_value=1, max_value=40),
        loss_rate=st.floats(min_value=0.05, max_value=0.20),
        gates=st.booleans(),
    )
    @settings(max_examples=6, deadline=None, derandomize=True)
    def test_no_false_eviction_under_loss(self, seed, loss_rate, gates):
        trace = generate_trace(num_players=8, num_frames=200, seed=seed)
        config = WatchmenConfig(
            proxy_failover=gates, reliable_delivery=gates
        )
        session = WatchmenSession(
            trace,
            config=config,
            network_config=NetworkConfig(loss_rate=loss_rate, seed=seed),
        )
        report = session.run()
        for node in session.nodes.values():
            assert node.membership.removed == set(), (
                f"node {node.player_id} evicted {node.membership.removed} "
                f"at loss {loss_rate:.2f} seed {seed} gates {gates}"
            )
        assert report.banned == set()


class TestProxyCrashStrandsNobody:
    @given(
        seed=st.integers(min_value=1, max_value=40),
        target=st.sampled_from([0, 3, 7]),
    )
    @settings(max_examples=6, deadline=None, derandomize=True)
    def test_failover_within_one_period(self, seed, target):
        fault_frame = 45  # early in epoch 1, before rotation can mask it
        trace = generate_trace(num_players=8, num_frames=200, seed=seed)
        schedule = FaultSchedule(
            proxy_crashes=(
                CrashProxyFault(player_id=target, frame=fault_frame),
            )
        )
        config = WatchmenConfig(proxy_failover=True, reliable_delivery=True)
        session = WatchmenSession(trace, config=config, faults=schedule)
        report = session.run()
        (victim,) = report.crashed
        if victim == target:
            # The target was its own proxy and is now down; no client-side
            # failover to observe.
            return
        # Some client of the dead proxy re-routes around it within one
        # proxy period (the target's own slot may rotate away first; the
        # chaos frames_to_reproxy metric counts any stranded client).
        events = [
            frame
            for node in session.nodes.values()
            for frame, scheduled, _ in node.failover_events
            if scheduled == victim
            and fault_frame < frame <= fault_frame + PROXY_PERIOD_FRAMES
        ]
        assert events, (
            f"no client failed over within a period (seed {seed}, "
            f"victim {victim})"
        )
        # Nobody falsely evicted: only the crashed victim may be removed.
        for node in session.nodes.values():
            if node.player_id == victim:
                continue
            assert node.membership.removed <= {victim}
