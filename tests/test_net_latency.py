"""Unit tests for the synthetic latency models."""

import pytest

from repro.net.latency import king_like, peerwise_like, uniform_lan


class TestKingLike:
    def test_mean_calibrated(self):
        matrix = king_like(40, seed=1)
        assert matrix.mean_one_way() == pytest.approx(0.031, rel=0.02)

    def test_symmetric(self):
        matrix = king_like(20, seed=2)
        for i in range(20):
            for j in range(20):
                assert matrix.one_way(i, j) == matrix.one_way(j, i)

    def test_zero_self_delay(self):
        matrix = king_like(10, seed=3)
        for i in range(10):
            assert matrix.one_way(i, i) == 0.0

    def test_deterministic_per_seed(self):
        a = king_like(10, seed=4)
        b = king_like(10, seed=4)
        assert a.delays == b.delays

    def test_different_seeds_differ(self):
        assert king_like(10, seed=1).delays != king_like(10, seed=2).delays

    def test_rtt_is_double_one_way(self):
        matrix = king_like(5, seed=5)
        assert matrix.rtt(0, 1) == pytest.approx(2 * matrix.one_way(0, 1))

    def test_positive_delays(self):
        matrix = king_like(15, seed=6)
        for i in range(15):
            for j in range(15):
                if i != j:
                    assert matrix.one_way(i, j) > 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            king_like(0)

    def test_custom_mean(self):
        matrix = king_like(30, seed=7, mean_one_way_ms=50.0)
        assert matrix.mean_one_way() == pytest.approx(0.050, rel=0.02)


class TestPeerwiseLike:
    def test_mean_calibrated(self):
        matrix = peerwise_like(40, seed=1)
        assert matrix.mean_one_way() == pytest.approx(0.034, rel=0.02)

    def test_has_spread(self):
        matrix = peerwise_like(30, seed=2)
        values = [
            matrix.one_way(i, j) for i in range(30) for j in range(i + 1, 30)
        ]
        assert max(values) > 2 * min(values)

    def test_percentiles_ordered(self):
        matrix = peerwise_like(30, seed=3)
        assert (
            matrix.percentile_one_way(10)
            <= matrix.percentile_one_way(50)
            <= matrix.percentile_one_way(95)
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            peerwise_like(0)


class TestUniformLan:
    def test_flat_delay(self):
        matrix = uniform_lan(8, one_way_ms=0.5)
        for i in range(8):
            for j in range(8):
                if i != j:
                    assert matrix.one_way(i, j) == pytest.approx(0.0005)

    def test_size(self):
        assert uniform_lan(5).size == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            uniform_lan(0)


class TestPercentiles:
    def test_single_pair(self):
        matrix = uniform_lan(2)
        assert matrix.percentile_one_way(50) == pytest.approx(0.0005)

    def test_degenerate_single_host(self):
        matrix = uniform_lan(1)
        assert matrix.percentile_one_way(50) == 0.0
        assert matrix.mean_one_way() == 0.0
