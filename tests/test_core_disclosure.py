"""Unit tests for information-disclosure accounting."""

import pytest

from repro.core.disclosure import (
    ExposureCategory,
    ExposureHistogram,
    InfoLevel,
    coalition_category,
    watchmen_observer_level,
)


class TestCoalitionCategory:
    def test_empty_coalition_nothing(self):
        assert coalition_category([]) == ExposureCategory.NOTHING

    def test_complete_dominates(self):
        levels = [InfoLevel.COMPLETE, InfoLevel.NOTHING, InfoLevel.FREQUENT]
        assert coalition_category(levels) == ExposureCategory.COMPLETE

    def test_freq_and_dr_combine(self):
        levels = [InfoLevel.FREQUENT, InfoLevel.DEAD_RECKONING]
        assert coalition_category(levels) == ExposureCategory.FREQ_DR

    def test_freq_alone(self):
        assert coalition_category([InfoLevel.FREQUENT]) == ExposureCategory.FREQ

    def test_dr_alone(self):
        assert (
            coalition_category([InfoLevel.DEAD_RECKONING]) == ExposureCategory.DR
        )

    def test_infrequent(self):
        levels = [InfoLevel.INFREQUENT, InfoLevel.NOTHING]
        assert coalition_category(levels) == ExposureCategory.INFREQ

    def test_nothing(self):
        assert (
            coalition_category([InfoLevel.NOTHING, InfoLevel.NOTHING])
            == ExposureCategory.NOTHING
        )

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            coalition_category(["telepathy"])

    def test_paper_example(self):
        """The worked example from Section VII (8 players, 2 cheaters).

        The coalition has: complete about {3}; freq+DR about {6}; freq only
        about {4, 5}; DR only about {7}; infrequent about {8}.
        """
        # Player 1: IS {4,5}, VS {2,6}, proxy of {3}.
        # Player 2: IS {1,6}, VS {7}, proxy of {1}.
        cheaters = {1, 2}
        interest = {1: {4, 5}, 2: {1, 6}}
        vision = {1: {2, 6}, 2: {7}}
        proxies = {3: 1, 1: 2}  # subject -> proxy

        def level(observer, subject):
            if proxies.get(subject) == observer:
                return InfoLevel.COMPLETE
            if subject in interest[observer]:
                return InfoLevel.FREQUENT
            if subject in vision[observer]:
                return InfoLevel.DEAD_RECKONING
            return InfoLevel.INFREQUENT

        joint = {
            subject: coalition_category(
                [level(cheater, subject) for cheater in cheaters]
            )
            for subject in range(3, 9)
        }
        assert joint[3] == ExposureCategory.COMPLETE
        assert joint[6] == ExposureCategory.FREQ_DR
        assert joint[4] == ExposureCategory.FREQ
        assert joint[5] == ExposureCategory.FREQ
        assert joint[7] == ExposureCategory.DR
        assert joint[8] == ExposureCategory.INFREQ


class TestObserverLevel:
    def test_proxy_complete(self):
        level = watchmen_observer_level(
            1, 2, frozenset(), frozenset(), proxy_of_subject=1
        )
        assert level == InfoLevel.COMPLETE

    def test_interest_frequent(self):
        level = watchmen_observer_level(
            1, 2, frozenset({2}), frozenset(), proxy_of_subject=5
        )
        assert level == InfoLevel.FREQUENT

    def test_vision_dr(self):
        level = watchmen_observer_level(
            1, 2, frozenset(), frozenset({2}), proxy_of_subject=5
        )
        assert level == InfoLevel.DEAD_RECKONING

    def test_default_infrequent(self):
        level = watchmen_observer_level(
            1, 2, frozenset(), frozenset(), proxy_of_subject=5
        )
        assert level == InfoLevel.INFREQUENT

    def test_proxy_beats_interest(self):
        level = watchmen_observer_level(
            1, 2, frozenset({2}), frozenset(), proxy_of_subject=1
        )
        assert level == InfoLevel.COMPLETE

    def test_self_observation_rejected(self):
        with pytest.raises(ValueError):
            watchmen_observer_level(1, 1, frozenset(), frozenset(), 2)


class TestHistogram:
    def test_empty(self):
        histogram = ExposureHistogram.empty()
        assert sum(histogram.counts.values()) == 0.0
        assert set(histogram.counts) == set(ExposureCategory.ORDER)

    def test_add(self):
        histogram = ExposureHistogram.empty()
        histogram.add(ExposureCategory.FREQ)
        histogram.add(ExposureCategory.FREQ, weight=2.0)
        assert histogram.counts[ExposureCategory.FREQ] == 3.0

    def test_add_unknown_rejected(self):
        with pytest.raises(ValueError):
            ExposureHistogram.empty().add("psychic")

    def test_normalized_sums_to_one(self):
        histogram = ExposureHistogram.empty()
        histogram.add(ExposureCategory.FREQ, 3.0)
        histogram.add(ExposureCategory.DR, 1.0)
        proportions = histogram.normalized()
        assert sum(proportions.values()) == pytest.approx(1.0)
        assert proportions[ExposureCategory.FREQ] == pytest.approx(0.75)

    def test_normalized_empty(self):
        assert all(v == 0.0 for v in ExposureHistogram.empty().normalized().values())

    def test_scaled(self):
        histogram = ExposureHistogram.empty()
        histogram.add(ExposureCategory.DR, 4.0)
        assert histogram.scaled(0.5).counts[ExposureCategory.DR] == 2.0

    def test_merged(self):
        a = ExposureHistogram.empty()
        b = ExposureHistogram.empty()
        a.add(ExposureCategory.FREQ, 1.0)
        b.add(ExposureCategory.FREQ, 2.0)
        b.add(ExposureCategory.INFREQ, 1.0)
        merged = a.merged(b)
        assert merged.counts[ExposureCategory.FREQ] == 3.0
        assert merged.counts[ExposureCategory.INFREQ] == 1.0

    def test_order_most_to_least_informative(self):
        assert ExposureCategory.ORDER[0] == ExposureCategory.COMPLETE
        assert ExposureCategory.ORDER[-1] == ExposureCategory.NOTHING
