"""Serialization round-trip for every message in the ``GameMessage`` union.

The union members are enumerated via :func:`typing.get_args`, and instances
are built generically from each dataclass's resolved type hints — so a
message type added to ``core/messages.py`` is covered here automatically
(and a missing codec registration fails both this test and lint rule P203).
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing

import pytest

from repro.core import messages as msgs
from repro.core.wire import (
    MESSAGE_TAGS,
    MESSAGE_TYPES,
    WireError,
    decode_bytes,
    decode_json_bytes,
    decode_message,
    encode_bytes,
    encode_json_bytes,
    encode_message,
    encode_signable,
)
from repro.crypto.signatures import Signature
from repro.game.avatar import AvatarSnapshot
from repro.game.vector import Vec3

MESSAGE_CLASSES = typing.get_args(msgs.GameMessage)

# Some fields are semantically constrained; the generic builder can't guess.
FIELD_OVERRIDES = {
    ("SubscriptionRequest", "kind"): msgs.SUB_VISION,
}

_SCALARS = {
    int: 7,
    float: 1.25,
    str: "rail",
    bool: True,
    bytes: b"\x01\x02sig",
}


def sample_value(hint: object, owner: str, name: str, depth: int = 0) -> object:
    """A deterministic, non-default sample instance of ``hint``."""
    override = FIELD_OVERRIDES.get((owner, name))
    if override is not None:
        return override
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin in (typing.Union, types.UnionType):
        # Optional[X] and unions: prefer a concrete (non-None) member so the
        # round-trip actually exercises the payload codec.
        concrete = [a for a in args if a is not type(None)]
        return sample_value(concrete[0], owner, name, depth)
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return (sample_value(args[0], owner, name, depth + 1),)
        return tuple(sample_value(a, owner, name, depth + 1) for a in args)
    if origin is frozenset:
        return frozenset({sample_value(args[0], owner, name, depth + 1)})
    if hint in _SCALARS:
        return _SCALARS[hint]  # type: ignore[index]
    if dataclasses.is_dataclass(hint):
        hints = typing.get_type_hints(hint)
        return hint(
            **{
                f.name: sample_value(hints[f.name], hint.__name__, f.name, depth + 1)
                for f in dataclasses.fields(hint)
            }
        )
    raise AssertionError(f"no sample strategy for {owner}.{name}: {hint!r}")


def build_message(cls: type) -> object:
    hints = typing.get_type_hints(cls)
    return cls(
        **{
            f.name: sample_value(hints[f.name], cls.__name__, f.name)
            for f in dataclasses.fields(cls)
        }
    )


class TestRoundTrip:
    @pytest.mark.parametrize("cls", MESSAGE_CLASSES, ids=lambda c: c.__name__)
    def test_every_union_member_round_trips(self, cls):
        message = build_message(cls)
        assert decode_message(encode_message(message)) == message

    @pytest.mark.parametrize("cls", MESSAGE_CLASSES, ids=lambda c: c.__name__)
    def test_bytes_round_trip_and_stability(self, cls):
        message = build_message(cls)
        wire = encode_bytes(message)
        assert decode_bytes(wire) == message
        # Canonical form: same message always yields the same bytes.
        assert encode_bytes(decode_bytes(wire)) == wire

    def test_none_optional_fields_survive(self):
        message = msgs.KillClaim(
            sender_id=1,
            victim_id=2,
            frame=3,
            sequence=4,
            weapon="rail",
            claimed_distance=9.5,
            signature=None,
        )
        assert decode_message(encode_message(message)) == message

    def test_empty_collections_survive(self):
        message = msgs.HandoffMessage(
            sender_id=1,
            player_id=2,
            epoch=0,
            sequence=1,
            interest_subscribers=frozenset(),
            vision_subscribers=frozenset(),
            summaries=(),
            signature=None,
        )
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert isinstance(decoded.interest_subscribers, frozenset)
        assert isinstance(decoded.summaries, tuple)

    def test_none_nested_snapshot_survives(self):
        summary = msgs.HandoffSummary(
            player_id=3,
            epoch=1,
            proxy_id=9,
            last_snapshot=None,
            update_count=0,
            suspicion_flags=0,
        )
        message = msgs.HandoffMessage(
            sender_id=1,
            player_id=3,
            epoch=1,
            sequence=2,
            interest_subscribers=frozenset({4}),
            vision_subscribers=frozenset({5, 6}),
            summaries=(summary,),
        )
        assert decode_message(encode_message(message)) == message


class TestRegistry:
    def test_registry_covers_union_exactly(self):
        assert set(MESSAGE_TYPES.values()) == set(MESSAGE_CLASSES)
        assert set(MESSAGE_TYPES) == {c.__name__ for c in MESSAGE_CLASSES}

    def test_tag_table_matches_registry(self):
        # The P206 lint rule enforces this statically; this is the
        # runtime half of the same invariant.
        assert set(MESSAGE_TAGS) == set(MESSAGE_TYPES)
        tags = list(MESSAGE_TAGS.values())
        assert len(tags) == len(set(tags)), "tags must be unique"
        assert all(0 <= tag <= 255 for tag in tags), "tags must fit one byte"

    def test_envelope_starts_with_type_tag_byte(self):
        for cls in MESSAGE_CLASSES:
            wire = encode_bytes(build_message(cls))
            assert wire[0] == MESSAGE_TAGS[cls.__name__]

    def test_json_envelope_retained_with_type_tag(self):
        message = build_message(msgs.PositionUpdate)
        envelope = encode_message(message)
        assert envelope["type"] == "PositionUpdate"
        # The legacy JSON form stays canonical (sorted keys, compact).
        wire = encode_json_bytes(message)
        parsed = json.loads(wire.decode("utf-8"))
        assert parsed == json.loads(
            json.dumps(envelope, sort_keys=True, separators=(",", ":"))
        )
        assert decode_json_bytes(wire) == message

    def test_binary_beats_json_on_every_type(self):
        for cls in MESSAGE_CLASSES:
            message = build_message(cls)
            assert len(encode_bytes(message)) < len(encode_json_bytes(message))

    def test_signable_bytes_is_frame_minus_signature(self):
        message = build_message(msgs.StateUpdate)
        signable = encode_signable(message)
        assert signable[0] == MESSAGE_TAGS["StateUpdate"]
        # The signed form appends only the signature's encoding.
        assert encode_bytes(message).startswith(signable)
        unsigned = dataclasses.replace(message, signature=None)
        assert encode_signable(unsigned) == signable


class TestErrors:
    def test_unknown_type_tag(self):
        with pytest.raises(WireError):
            decode_message({"type": "Teleport", "sender_id": 1})

    def test_missing_type_tag(self):
        with pytest.raises(WireError):
            decode_message({"sender_id": 1})

    def test_unregistered_message_encode(self):
        @dataclasses.dataclass(frozen=True, slots=True)
        class Rogue:
            sender_id: int

        with pytest.raises(WireError):
            encode_message(Rogue(sender_id=1))

    def test_bad_payload_field(self):
        envelope = encode_message(build_message(msgs.KillClaim))
        envelope.pop("victim_id")
        with pytest.raises(WireError):
            decode_message(envelope)

    def test_malformed_bytes(self):
        with pytest.raises(WireError):
            decode_bytes(b"{not json")
        with pytest.raises(WireError):
            decode_json_bytes(b"{not json")


class TestMalformedBinary:
    """Hostile binary input must always surface as WireError — never a
    struct.error, IndexError, or UnicodeDecodeError leaking from the
    decoder internals (mirrors the JSON codec's rejection tests)."""

    def test_empty_frame(self):
        with pytest.raises(WireError):
            decode_bytes(b"")

    def test_unknown_tag(self):
        used = set(MESSAGE_TAGS.values())
        for tag in (0, *(t for t in range(256) if t not in used)):
            with pytest.raises(WireError):
                decode_bytes(bytes([tag]))

    @pytest.mark.parametrize("cls", MESSAGE_CLASSES, ids=lambda c: c.__name__)
    def test_every_truncation_is_rejected(self, cls):
        wire = encode_bytes(build_message(cls))
        for cut in range(len(wire)):
            with pytest.raises(WireError):
                decode_bytes(wire[:cut])

    @pytest.mark.parametrize("cls", MESSAGE_CLASSES, ids=lambda c: c.__name__)
    def test_trailing_bytes_are_rejected(self, cls):
        wire = encode_bytes(build_message(cls))
        for junk in (b"\x00", b"\xff", b"extra"):
            with pytest.raises(WireError):
                decode_bytes(wire + junk)

    def test_non_bytes_input(self):
        with pytest.raises(WireError):
            decode_bytes("not bytes")  # type: ignore[arg-type]

    def test_non_minimal_varint_is_rejected(self):
        # AckMessage: tag, then sender_id as a varint.  0x80 0x00 is a
        # two-byte encoding of zero — valid LEB128, not canonical.
        tag = bytes([MESSAGE_TAGS["AckMessage"]])
        with pytest.raises(WireError, match="non-minimal"):
            decode_bytes(tag + b"\x80\x00" + b"\x00" * 8)

    def test_oversized_varint_is_rejected(self):
        tag = bytes([MESSAGE_TAGS["AckMessage"]])
        with pytest.raises(WireError):
            decode_bytes(tag + b"\xff" * 10 + b"\x01")

    def test_bad_presence_byte_is_rejected(self):
        # Flip the signature presence byte (always last-field prefix on a
        # signed message) to an out-of-range value.
        message = build_message(msgs.AckMessage)
        wire = bytearray(encode_bytes(message))
        prefix = len(encode_signable(message))
        assert wire[prefix] == 1  # presence byte of the signature
        wire[prefix] = 2
        with pytest.raises(WireError, match="presence byte"):
            decode_bytes(bytes(wire))

    def test_bad_bool_byte_is_rejected(self):
        message = build_message(msgs.StateUpdate)
        wire = encode_bytes(message)
        # AvatarSnapshot.alive is the only bool; True encodes as 0x01.
        # Rather than compute its offset, fuzz every 0x01 position and
        # require that *no* corruption ever escapes WireError.
        for index, value in enumerate(wire):
            if value != 1:
                continue
            mutated = bytearray(wire)
            mutated[index] = 2
            try:
                decoded = decode_bytes(bytes(mutated))
            except WireError:
                continue
            assert decoded != message  # if it decodes, it must differ

    def test_unsorted_set_is_rejected(self):
        message = msgs.HandoffMessage(
            sender_id=1, player_id=2, epoch=3, sequence=4,
            interest_subscribers=frozenset({1, 2}),
            vision_subscribers=frozenset(),
        )
        wire = encode_bytes(message)
        # Elements 1 and 2 zigzag-encode as 0x02 and 0x04; swapping the
        # adjacent pair breaks the strictly-ascending canonical order.
        swapped = wire.replace(b"\x02\x02\x04", b"\x02\x04\x02", 1)
        assert swapped != wire, "expected the encoded set in the frame"
        with pytest.raises(WireError, match="ascending"):
            decode_bytes(swapped)

    def test_non_canonical_table_string_is_rejected(self):
        base = build_message(msgs.KillClaim)
        railgun = encode_bytes(dataclasses.replace(base, weapon="railgun"))
        shotgun = encode_bytes(dataclasses.replace(base, weapon="shotgun"))
        # Both weapons are table-coded, so the two frames differ in
        # exactly one byte: the weapon's table code.
        assert len(railgun) == len(shotgun)
        diffs = [i for i, (a, b) in enumerate(zip(railgun, shotgun)) if a != b]
        assert len(diffs) == 1
        index = diffs[0]
        # Re-encode "railgun" inline (0x00 escape + length + UTF-8)
        # instead of its table code; decode must refuse the alias.
        aliased = railgun[:index] + b"\x00\x07railgun" + railgun[index + 1:]
        with pytest.raises(WireError, match="non-canonical"):
            decode_bytes(aliased)

    @pytest.mark.parametrize("cls", MESSAGE_CLASSES, ids=lambda c: c.__name__)
    def test_single_byte_corruption_never_leaks(self, cls):
        """Exhaustive single-byte corruption: decode either fails with
        WireError or yields a (different or equal) valid message —
        nothing else."""
        wire = encode_bytes(build_message(cls))
        for index in range(len(wire)):
            mutated = bytearray(wire)
            mutated[index] ^= 0xFF
            try:
                decode_bytes(bytes(mutated))
            except WireError:
                pass


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)

#: wire ints are 64-bit; the encoder rejects anything wider
wire_int = st.integers(-(2**63), 2**63 - 1)

STRATEGY_OVERRIDES = {
    ("SubscriptionRequest", "kind"): st.sampled_from(
        [msgs.SUB_VISION, msgs.SUB_INTEREST]
    ),
}


def _hint_strategy(hint: object, owner: str, name: str) -> "st.SearchStrategy":
    override = STRATEGY_OVERRIDES.get((owner, name))
    if override is not None:
        return override
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin in (typing.Union, types.UnionType):
        concrete = [a for a in args if a is not type(None)]
        inner = st.one_of(*(_hint_strategy(a, owner, name) for a in concrete))
        return st.none() | inner if type(None) in args else inner
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return st.lists(
                _hint_strategy(args[0], owner, name), max_size=3
            ).map(tuple)
        return st.tuples(*(_hint_strategy(a, owner, name) for a in args))
    if origin is frozenset:
        return st.frozensets(_hint_strategy(args[0], owner, name), max_size=6)
    if hint is int:
        return wire_int
    if hint is float:
        return finite
    if hint is str:
        # Mix table strings and arbitrary unicode so both encodings run.
        return st.text(max_size=12) | st.sampled_from(
            ["", "railgun", "position", "hmac-sha256"]
        )
    if hint is bool:
        return st.booleans()
    if hint is bytes:
        return st.binary(max_size=20)
    if dataclasses.is_dataclass(hint):
        return _class_strategy(hint)
    raise AssertionError(f"no strategy for {owner}.{name}: {hint!r}")


def _class_strategy(cls: type) -> "st.SearchStrategy":
    hints = typing.get_type_hints(cls)
    return st.builds(
        cls,
        **{
            f.name: _hint_strategy(hints[f.name], cls.__name__, f.name)
            for f in dataclasses.fields(cls)
        },
    )


class TestProperties:
    @pytest.mark.parametrize("cls", MESSAGE_CLASSES, ids=lambda c: c.__name__)
    def test_generated_messages_round_trip_canonically(self, cls):
        """Hypothesis round-trip for every MESSAGE_TYPES entry: decode is
        the exact inverse of encode, and re-encoding reproduces the
        canonical bytes."""

        @settings(max_examples=40, deadline=None)
        @given(message=_class_strategy(cls))
        def run(message):
            wire = encode_bytes(message)
            decoded = decode_bytes(wire)
            assert decoded == message
            assert encode_bytes(decoded) == wire
            assert encode_signable(decoded) == encode_signable(message)

        run()

    @settings(max_examples=50, deadline=None)
    @given(
        x=finite, y=finite, z=finite, yaw=finite,
        distance=finite, frame=st.integers(0, 2**31),
    )
    def test_float_fields_round_trip_exactly(self, x, y, z, yaw, distance, frame):
        spawn = msgs.ProjectileSpawn(
            sender_id=1,
            frame=frame,
            sequence=frame,
            weapon="rocket",
            origin=Vec3(x, y, z),
            velocity=Vec3(z, x, y),
            signature=Signature(scheme="hmac", signer_id=1, data=b"\x00\xff"),
        )
        assert decode_bytes(encode_bytes(spawn)) == spawn

    @settings(max_examples=50, deadline=None)
    @given(
        health=st.integers(0, 200),
        ammo=st.integers(0, 999),
        yaw=finite,
        alive=st.booleans(),
        weapon=st.text(max_size=12),
    )
    def test_snapshot_payload_round_trips(self, health, ammo, yaw, alive, weapon):
        snapshot = AvatarSnapshot(
            player_id=2, frame=10,
            position=Vec3(0.5, -1.5, 2.0), velocity=Vec3(0.0, 0.0, 0.0),
            yaw=yaw, health=health, armor=0, weapon=weapon, ammo=ammo,
            alive=alive,
        )
        message = msgs.StateUpdate(
            sender_id=2, frame=10, sequence=3, snapshot=snapshot,
            delta_fields=("position", "yaw"),
        )
        assert decode_bytes(encode_bytes(message)) == message

    @settings(max_examples=25, deadline=None)
    @given(members=st.frozensets(st.integers(0, 1000), max_size=16))
    def test_subscriber_sets_round_trip(self, members):
        message = msgs.HandoffMessage(
            sender_id=1, player_id=2, epoch=3, sequence=4,
            interest_subscribers=members, vision_subscribers=frozenset(),
        )
        assert decode_bytes(encode_bytes(message)) == message
