"""Serialization round-trip for every message in the ``GameMessage`` union.

The union members are enumerated via :func:`typing.get_args`, and instances
are built generically from each dataclass's resolved type hints — so a
message type added to ``core/messages.py`` is covered here automatically
(and a missing codec registration fails both this test and lint rule P203).
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing

import pytest

from repro.core import messages as msgs
from repro.core.wire import (
    MESSAGE_TYPES,
    WireError,
    decode_bytes,
    decode_message,
    encode_bytes,
    encode_message,
)
from repro.crypto.signatures import Signature
from repro.game.avatar import AvatarSnapshot
from repro.game.vector import Vec3

MESSAGE_CLASSES = typing.get_args(msgs.GameMessage)

# Some fields are semantically constrained; the generic builder can't guess.
FIELD_OVERRIDES = {
    ("SubscriptionRequest", "kind"): msgs.SUB_VISION,
}

_SCALARS = {
    int: 7,
    float: 1.25,
    str: "rail",
    bool: True,
    bytes: b"\x01\x02sig",
}


def sample_value(hint: object, owner: str, name: str, depth: int = 0) -> object:
    """A deterministic, non-default sample instance of ``hint``."""
    override = FIELD_OVERRIDES.get((owner, name))
    if override is not None:
        return override
    origin = typing.get_origin(hint)
    args = typing.get_args(hint)
    if origin in (typing.Union, types.UnionType):
        # Optional[X] and unions: prefer a concrete (non-None) member so the
        # round-trip actually exercises the payload codec.
        concrete = [a for a in args if a is not type(None)]
        return sample_value(concrete[0], owner, name, depth)
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return (sample_value(args[0], owner, name, depth + 1),)
        return tuple(sample_value(a, owner, name, depth + 1) for a in args)
    if origin is frozenset:
        return frozenset({sample_value(args[0], owner, name, depth + 1)})
    if hint in _SCALARS:
        return _SCALARS[hint]  # type: ignore[index]
    if dataclasses.is_dataclass(hint):
        hints = typing.get_type_hints(hint)
        return hint(
            **{
                f.name: sample_value(hints[f.name], hint.__name__, f.name, depth + 1)
                for f in dataclasses.fields(hint)
            }
        )
    raise AssertionError(f"no sample strategy for {owner}.{name}: {hint!r}")


def build_message(cls: type) -> object:
    hints = typing.get_type_hints(cls)
    return cls(
        **{
            f.name: sample_value(hints[f.name], cls.__name__, f.name)
            for f in dataclasses.fields(cls)
        }
    )


class TestRoundTrip:
    @pytest.mark.parametrize("cls", MESSAGE_CLASSES, ids=lambda c: c.__name__)
    def test_every_union_member_round_trips(self, cls):
        message = build_message(cls)
        assert decode_message(encode_message(message)) == message

    @pytest.mark.parametrize("cls", MESSAGE_CLASSES, ids=lambda c: c.__name__)
    def test_bytes_round_trip_and_stability(self, cls):
        message = build_message(cls)
        wire = encode_bytes(message)
        assert decode_bytes(wire) == message
        # Canonical form: same message always yields the same bytes.
        assert encode_bytes(decode_bytes(wire)) == wire

    def test_none_optional_fields_survive(self):
        message = msgs.KillClaim(
            sender_id=1,
            victim_id=2,
            frame=3,
            sequence=4,
            weapon="rail",
            claimed_distance=9.5,
            signature=None,
        )
        assert decode_message(encode_message(message)) == message

    def test_empty_collections_survive(self):
        message = msgs.HandoffMessage(
            sender_id=1,
            player_id=2,
            epoch=0,
            sequence=1,
            interest_subscribers=frozenset(),
            vision_subscribers=frozenset(),
            summaries=(),
            signature=None,
        )
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert isinstance(decoded.interest_subscribers, frozenset)
        assert isinstance(decoded.summaries, tuple)

    def test_none_nested_snapshot_survives(self):
        summary = msgs.HandoffSummary(
            player_id=3,
            epoch=1,
            proxy_id=9,
            last_snapshot=None,
            update_count=0,
            suspicion_flags=0,
        )
        message = msgs.HandoffMessage(
            sender_id=1,
            player_id=3,
            epoch=1,
            sequence=2,
            interest_subscribers=frozenset({4}),
            vision_subscribers=frozenset({5, 6}),
            summaries=(summary,),
        )
        assert decode_message(encode_message(message)) == message


class TestRegistry:
    def test_registry_covers_union_exactly(self):
        assert set(MESSAGE_TYPES.values()) == set(MESSAGE_CLASSES)
        assert set(MESSAGE_TYPES) == {c.__name__ for c in MESSAGE_CLASSES}

    def test_envelope_is_json_with_type_tag(self):
        message = build_message(msgs.PositionUpdate)
        envelope = encode_message(message)
        assert envelope["type"] == "PositionUpdate"
        # Wire bytes are plain JSON, sorted keys, compact separators.
        wire = encode_bytes(message)
        parsed = json.loads(wire.decode("utf-8"))
        assert parsed == json.loads(
            json.dumps(envelope, sort_keys=True, separators=(",", ":"))
        )


class TestErrors:
    def test_unknown_type_tag(self):
        with pytest.raises(WireError):
            decode_message({"type": "Teleport", "sender_id": 1})

    def test_missing_type_tag(self):
        with pytest.raises(WireError):
            decode_message({"sender_id": 1})

    def test_unregistered_message_encode(self):
        @dataclasses.dataclass(frozen=True, slots=True)
        class Rogue:
            sender_id: int

        with pytest.raises(WireError):
            encode_message(Rogue(sender_id=1))

    def test_bad_payload_field(self):
        envelope = encode_message(build_message(msgs.KillClaim))
        envelope.pop("victim_id")
        with pytest.raises(WireError):
            decode_message(envelope)

    def test_malformed_bytes(self):
        with pytest.raises(WireError):
            decode_bytes(b"{not json")


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        x=finite, y=finite, z=finite, yaw=finite,
        distance=finite, frame=st.integers(0, 2**31),
    )
    def test_float_fields_round_trip_exactly(self, x, y, z, yaw, distance, frame):
        spawn = msgs.ProjectileSpawn(
            sender_id=1,
            frame=frame,
            sequence=frame,
            weapon="rocket",
            origin=Vec3(x, y, z),
            velocity=Vec3(z, x, y),
            signature=Signature(scheme="hmac", signer_id=1, data=b"\x00\xff"),
        )
        assert decode_bytes(encode_bytes(spawn)) == spawn

    @settings(max_examples=50, deadline=None)
    @given(
        health=st.integers(0, 200),
        ammo=st.integers(0, 999),
        yaw=finite,
        alive=st.booleans(),
        weapon=st.text(max_size=12),
    )
    def test_snapshot_payload_round_trips(self, health, ammo, yaw, alive, weapon):
        snapshot = AvatarSnapshot(
            player_id=2, frame=10,
            position=Vec3(0.5, -1.5, 2.0), velocity=Vec3(0.0, 0.0, 0.0),
            yaw=yaw, health=health, armor=0, weapon=weapon, ammo=ammo,
            alive=alive,
        )
        message = msgs.StateUpdate(
            sender_id=2, frame=10, sequence=3, snapshot=snapshot,
            delta_fields=("position", "yaw"),
        )
        assert decode_bytes(encode_bytes(message)) == message

    @settings(max_examples=25, deadline=None)
    @given(members=st.frozensets(st.integers(0, 1000), max_size=16))
    def test_subscriber_sets_round_trip(self, members):
        message = msgs.HandoffMessage(
            sender_id=1, player_id=2, epoch=3, sequence=4,
            interest_subscribers=members, vision_subscribers=frozenset(),
        )
        assert decode_bytes(encode_bytes(message)) == message
