"""repro lint CLI: exit codes, baseline workflow, --explain, JSON artifact.

Exit-code contract (mirrors ``repro bench-diff``): 0 clean, 1 new
violations, 2 usage errors.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent

CLEAN_MODULE = '''\
from __future__ import annotations

from random import Random


def roll(seed: int) -> float:
    return Random(seed).random()
'''

DIRTY_MODULE = '''\
from __future__ import annotations

import random


def roll():
    return random.random()
'''

pytestmark = pytest.mark.lint


def make_repo(root: Path, dirty: bool = False) -> Path:
    """A tiny lintable repo: one module under src/repro/game."""
    game = root / "src" / "repro" / "game"
    game.mkdir(parents=True)
    (game / "dice.py").write_text(DIRTY_MODULE if dirty else CLEAN_MODULE)
    return root


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        make_repo(tmp_path)
        assert lint_main(["--root", str(tmp_path)]) == 0
        assert "0 new violation(s)" in capsys.readouterr().out

    def test_injected_violation_fails_the_gate(self, tmp_path, capsys):
        # What CI runs: a freshly introduced violation must exit nonzero.
        make_repo(tmp_path, dirty=True)
        assert lint_main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "D102" in out
        assert "T301" in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        make_repo(tmp_path)
        code = lint_main(["--root", str(tmp_path), str(tmp_path / "nope.py")])
        assert code == 2

    def test_bad_root_is_usage_error(self, tmp_path):
        assert lint_main(["--root", str(tmp_path / "missing")]) == 2

    def test_unknown_explain_rule_is_usage_error(self, capsys):
        assert lint_main(["--explain", "Z999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        make_repo(tmp_path)
        bad = tmp_path / "lint-baseline.json"
        bad.write_text("{not json")
        assert lint_main(["--root", str(tmp_path)]) == 2
        assert "baseline" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_then_rerun_suppresses(self, tmp_path, capsys):
        make_repo(tmp_path, dirty=True)
        assert lint_main(["--root", str(tmp_path), "--write-baseline"]) == 0
        baseline = tmp_path / "lint-baseline.json"
        data = json.loads(baseline.read_text())
        assert data["schema"] == "repro.lint-baseline.v1"
        assert len(data["suppressions"]) >= 2  # D102 + T301
        capsys.readouterr()

        # The same violations are now visible-but-allowed.
        assert lint_main(["--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 new violation(s)" in out
        assert "baseline-suppressed" in out

    def test_new_violation_on_top_of_baseline_still_fails(self, tmp_path, capsys):
        root = make_repo(tmp_path, dirty=True)
        assert lint_main(["--root", str(tmp_path), "--write-baseline"]) == 0
        capsys.readouterr()
        extra = root / "src" / "repro" / "game" / "more.py"
        extra.write_text("import random\n")
        assert lint_main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "more.py" in out
        assert "dice.py" not in out  # old findings stay suppressed

    def test_baseline_counts_multiplicity(self, tmp_path, capsys):
        # Two identical lines in one file: baseline of one only absorbs one.
        game = tmp_path / "src" / "repro" / "game"
        game.mkdir(parents=True)
        (game / "a.py").write_text("import random\n")
        assert lint_main(["--root", str(tmp_path), "--write-baseline"]) == 0
        (game / "a.py").write_text("import random\nimport random\n")
        capsys.readouterr()
        assert lint_main(["--root", str(tmp_path)]) == 1

    def test_no_baseline_flag_reports_everything(self, tmp_path, capsys):
        make_repo(tmp_path, dirty=True)
        assert lint_main(["--root", str(tmp_path), "--write-baseline"]) == 0
        capsys.readouterr()
        assert lint_main(["--root", str(tmp_path), "--no-baseline"]) == 1

    def test_inline_ignore_suppresses_one_rule(self, tmp_path):
        game = tmp_path / "src" / "repro" / "game"
        game.mkdir(parents=True)
        (game / "a.py").write_text(
            "import random  # repro-lint: ignore[D102]\n"
        )
        assert lint_main(["--root", str(tmp_path)]) == 0

    def test_inline_ignore_is_rule_scoped(self, tmp_path):
        game = tmp_path / "src" / "repro" / "game"
        game.mkdir(parents=True)
        (game / "a.py").write_text(
            "import random  # repro-lint: ignore[D101]\n"
        )
        assert lint_main(["--root", str(tmp_path)]) == 1


class TestExplainAndListing:
    @pytest.mark.parametrize(
        "rule", ["D101", "D102", "D103", "P201", "P202", "P203", "P204", "T301"]
    )
    def test_every_rule_explains(self, rule, capsys):
        assert lint_main(["--explain", rule]) == 0
        out = capsys.readouterr().out
        assert rule in out
        assert "scope:" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert lint_main(["--explain", "d102"]) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("D101", "P203", "T301"):
            assert rule in out


class TestJsonArtifact:
    def test_bench_schema_artifact(self, tmp_path, capsys):
        make_repo(tmp_path, dirty=True)
        artifact = tmp_path / "lint-report.json"
        assert lint_main(["--root", str(tmp_path), "--json", str(artifact)]) == 1
        data = json.loads(artifact.read_text())
        assert data["schema"] == "repro.bench.v1"
        rows = {row["bench"]: row for row in data["rows"]}
        assert set(rows) == {"lint", "lint_wall"}
        metrics = rows["lint"]["metrics"]
        assert metrics["violations.total"] == metrics["violations.D"] + metrics[
            "violations.P"
        ] + metrics["violations.T"]
        assert metrics["violations.D102"] == 1.0
        assert metrics["files.scanned"] >= 1.0
        # Whole-program families report even when zero, plus wall time.
        for family in ("C", "F", "R", "S"):
            assert metrics[f"violations.{family}"] == 0.0
        assert metrics["wall_seconds"] > 0.0
        # The analyzer-cost row CI diffs against the committed baseline.
        cost = rows["lint_wall"]["metrics"]
        assert cost["wall_seconds"] == metrics["wall_seconds"]
        assert cost["functions_analyzed"] >= 1.0
        assert cost["fixpoint_iterations"] >= cost["functions_analyzed"]

    def test_json_to_stdout(self, tmp_path, capsys):
        make_repo(tmp_path)
        assert lint_main(["--root", str(tmp_path), "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload, _, summary = out.rpartition("\nrepro lint:")
        data = json.loads(payload)
        assert data["schema"] == "repro.bench.v1"


class TestDeduplication:
    def test_directory_plus_explicit_path_reports_once(self, tmp_path, capsys):
        # Satellite: the same file via the default dir scan AND an explicit
        # argument must yield each violation exactly once.
        root = make_repo(tmp_path, dirty=True)
        dice = root / "src" / "repro" / "game" / "dice.py"
        assert lint_main(["--root", str(tmp_path), str(dice)]) == 1
        out = capsys.readouterr().out
        assert out.count("D102") == 2  # finding line + summary tally, not 2 findings
        assert out.count("dice.py:3") == 1

    def test_odd_path_spelling_still_dedupes(self, tmp_path, capsys):
        root = make_repo(tmp_path, dirty=True)
        odd = (
            root / "src" / "repro" / "game" / ".." / "game" / "dice.py"
        )
        assert lint_main(["--root", str(tmp_path), str(odd)]) == 1
        out = capsys.readouterr().out
        assert out.count("dice.py:3") == 1

    def test_file_listed_twice_dedupes(self, tmp_path, capsys):
        root = make_repo(tmp_path, dirty=True)
        dice = root / "src" / "repro" / "game" / "dice.py"
        assert lint_main(["--root", str(tmp_path), str(dice), str(dice)]) == 1
        assert capsys.readouterr().out.count("dice.py:3") == 1


class TestGithubFormat:
    def test_github_annotations_on_findings(self, tmp_path, capsys):
        make_repo(tmp_path, dirty=True)
        assert lint_main(["--root", str(tmp_path), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert "::error file=src/repro/game/dice.py,line=3::D102" in out

    def test_github_format_clean_tree(self, tmp_path, capsys):
        make_repo(tmp_path)
        assert lint_main(["--root", str(tmp_path), "--format", "github"]) == 0
        assert "::error" not in capsys.readouterr().out


class TestRatchet:
    def _write(self, path: Path, suppressions: list[dict]) -> Path:
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.lint-baseline.v1",
                    "suppressions": suppressions,
                }
            )
        )
        return path

    ENTRY = {
        "rule": "D102",
        "path": "src/repro/game/dice.py",
        "context": "import random",
        "count": 1,
    }

    def test_identical_baselines_pass(self, tmp_path):
        from repro.lint.baseline import ratchet_regressions

        old = self._write(tmp_path / "old.json", [self.ENTRY])
        new = self._write(tmp_path / "new.json", [self.ENTRY])
        assert ratchet_regressions(old, new) == []

    def test_shrinking_passes(self, tmp_path):
        from repro.lint.baseline import ratchet_regressions

        old = self._write(tmp_path / "old.json", [self.ENTRY])
        new = self._write(tmp_path / "new.json", [])
        assert ratchet_regressions(old, new) == []

    def test_new_fingerprint_is_a_regression(self, tmp_path):
        from repro.lint.baseline import ratchet_regressions

        old = self._write(tmp_path / "old.json", [])
        new = self._write(tmp_path / "new.json", [self.ENTRY])
        regressions = ratchet_regressions(old, new)
        assert len(regressions) == 1
        assert "D102" in regressions[0]

    def test_count_increase_is_a_regression(self, tmp_path):
        from repro.lint.baseline import ratchet_regressions

        old = self._write(tmp_path / "old.json", [self.ENTRY])
        new = self._write(tmp_path / "new.json", [{**self.ENTRY, "count": 2}])
        assert len(ratchet_regressions(old, new)) == 1

    def test_ratchet_cli_exit_codes(self, tmp_path, capsys):
        from repro.lint.baseline import _ratchet_main

        old = self._write(tmp_path / "old.json", [])
        ok = self._write(tmp_path / "ok.json", [])
        bad = self._write(tmp_path / "bad.json", [self.ENTRY])
        assert _ratchet_main([str(old), str(ok)]) == 0
        assert _ratchet_main([str(old), str(bad)]) == 1
        malformed = tmp_path / "malformed.json"
        malformed.write_text("{not json")
        assert _ratchet_main([str(old), str(malformed)]) == 2


class TestRealRepo:
    def test_repo_is_lint_clean(self, capsys):
        # The acceptance criterion: `repro lint` clean on src/repro with the
        # committed (empty) baseline.
        assert lint_main(["--root", str(REPO_ROOT)]) == 0
        assert "0 new violation(s)" in capsys.readouterr().out

    def test_repro_cli_lint_subcommand(self, capsys):
        assert repro_main(["lint", "--root", str(REPO_ROOT)]) == 0

    def test_repro_cli_lint_explain(self, capsys):
        assert repro_main(["lint", "--explain", "P202"]) == 0
        assert "demultiplexer" in capsys.readouterr().out
