"""F401/F402: information-flow rules, must-flag and must-pass fixtures."""

from __future__ import annotations

import ast

import pytest

from repro.lint.callgraph import ParsedModule, build_call_graph
from repro.lint.flow import run_flow_rules

pytestmark = pytest.mark.lint


def flow_violations(*modules: tuple[str, str]):
    parsed = [
        ParsedModule(
            module=name,
            path=f"src/{name.replace('.', '/')}.py",
            tree=ast.parse(source),
        )
        for name, source in modules
    ]
    sources = {
        p.path: source.splitlines()
        for p, (_, source) in zip(parsed, modules)
    }
    return run_flow_rules(build_call_graph(parsed), sources)


GATES = (
    "repro.core.subscriptions",
    "class SubscriberTable:\n"
    "    def interest_subscribers(self, frame):\n        return []\n",
)


class TestF401:
    def test_flags_ungated_full_state_send(self):
        violations = flow_violations(
            GATES,
            (
                "repro.core.node",
                "from repro.core.messages import StateUpdate\n"
                "class Node:\n"
                "    def leak(self, peer):\n"
                "        update = StateUpdate()\n"
                "        self._transmit(update, peer)\n",
            ),
        )
        assert [v.rule for v in violations] == ["F401"]
        assert "subscription" in violations[0].message

    def test_flags_inline_constructor_send(self):
        violations = flow_violations(
            GATES,
            (
                "repro.core.node",
                "from repro.core.messages import StateUpdate\n"
                "class Node:\n"
                "    def leak(self, peer):\n"
                "        self._send_raw(0, peer, StateUpdate(), 1)\n",
            ),
        )
        assert [v.rule for v in violations] == ["F401"]

    def test_flags_annotated_parameter_send(self):
        violations = flow_violations(
            GATES,
            (
                "repro.core.node",
                "class Node:\n"
                "    def forward(self, update: StateUpdate, peer: int):\n"
                "        self._transmit(update, peer)\n",
            ),
        )
        assert [v.rule for v in violations] == ["F401"]

    def test_passes_when_function_consults_a_gate(self):
        violations = flow_violations(
            GATES,
            (
                "repro.core.node",
                "from repro.core.messages import StateUpdate\n"
                "class Node:\n"
                "    def fan_out(self, table, frame):\n"
                "        update = StateUpdate()\n"
                "        for s in table.interest_subscribers(frame):\n"
                "            self._transmit(update, s)\n",
            ),
        )
        assert violations == []

    def test_passes_when_dominated_by_a_gated_caller(self):
        # send() itself has no gate, but its only caller checks one first.
        violations = flow_violations(
            GATES,
            (
                "repro.core.node",
                "from repro.core.messages import StateUpdate\n"
                "class Node:\n"
                "    def gated_entry(self, table, frame, update: StateUpdate):\n"
                "        for s in table.interest_subscribers(frame):\n"
                "            self.fan(update, s)\n"
                "    def fan(self, update: StateUpdate, peer):\n"
                "        self._transmit(update, peer)\n",
            ),
        )
        assert violations == []

    def test_non_full_state_messages_are_ignored(self):
        violations = flow_violations(
            GATES,
            (
                "repro.core.node",
                "class Node:\n"
                "    def ping(self, message, peer):\n"
                "        self._transmit(message, peer)\n",
            ),
        )
        assert violations == []

    def test_cheats_package_is_out_of_scope(self):
        violations = flow_violations(
            GATES,
            (
                "repro.cheats.state",
                "from repro.core.messages import StateUpdate\n"
                "class Cheat:\n"
                "    def leak(self, peer):\n"
                "        self._transmit(StateUpdate(), peer)\n",
            ),
        )
        assert violations == []


class TestF402:
    def test_flags_raw_snapshot_in_position_update(self):
        violations = flow_violations(
            (
                "repro.core.node",
                "from repro.core.messages import PositionUpdate\n"
                "class Node:\n"
                "    def publish(self, snapshot):\n"
                "        return PositionUpdate(snapshot=snapshot)\n",
            ),
        )
        assert [v.rule for v in violations] == ["F402"]
        assert "PositionUpdate.snapshot" in violations[0].message

    def test_passes_with_reduction_helper_call(self):
        violations = flow_violations(
            (
                "repro.core.node",
                "from repro.core.messages import PositionUpdate\n"
                "class Node:\n"
                "    def publish(self, snapshot):\n"
                "        return PositionUpdate(snapshot=snapshot.position_only())\n",
            ),
        )
        assert violations == []

    def test_passes_via_transitive_helper(self):
        # _predict -> predict_linear, mirroring WatchmenNode._guidance_prediction
        violations = flow_violations(
            (
                "repro.game.deadreckoning",
                "def predict_linear(snapshot, horizon):\n    return snapshot\n",
            ),
            (
                "repro.core.node",
                "from repro.core.messages import GuidanceMessage\n"
                "from repro.game.deadreckoning import predict_linear\n"
                "class Node:\n"
                "    def _predict(self, snapshot):\n"
                "        return predict_linear(snapshot, 20)\n"
                "    def publish(self, snapshot):\n"
                "        return GuidanceMessage(prediction=self._predict(snapshot))\n",
            ),
        )
        assert violations == []

    def test_flags_guidance_prediction_from_raw_value(self):
        violations = flow_violations(
            (
                "repro.core.node",
                "from repro.core.messages import GuidanceMessage\n"
                "class Node:\n"
                "    def publish(self, snapshot):\n"
                "        return GuidanceMessage(prediction=snapshot)\n",
            ),
        )
        assert [v.rule for v in violations] == ["F402"]

    def test_reduced_variable_is_tracked(self):
        violations = flow_violations(
            (
                "repro.core.node",
                "from repro.core.messages import PositionUpdate\n"
                "class Node:\n"
                "    def publish(self, snapshot):\n"
                "        reduced = snapshot.position_only()\n"
                "        return PositionUpdate(snapshot=reduced)\n",
            ),
        )
        assert violations == []

    def test_wire_codec_is_out_of_scope(self):
        violations = flow_violations(
            (
                "repro.core.wire",
                "from repro.core.messages import PositionUpdate\n"
                "def decode(payload):\n"
                "    return PositionUpdate(snapshot=payload)\n",
            ),
        )
        assert violations == []


class TestRealTreeIsClean:
    def test_no_flow_violations_in_repo(self):
        import pathlib

        from repro.lint.callgraph import module_name_for

        root = pathlib.Path(__file__).resolve().parent.parent
        parsed = []
        sources = {}
        for file in sorted((root / "src" / "repro").rglob("*.py")):
            rel = file.relative_to(root).as_posix()
            name = module_name_for(rel)
            if name is None:
                continue
            text = file.read_text()
            parsed.append(
                ParsedModule(module=name, path=rel, tree=ast.parse(text))
            )
            sources[rel] = text.splitlines()
        assert run_flow_rules(build_call_graph(parsed), sources) == []
