"""Tests for session-driven experiment harnesses (Figs. 6, 7; Table I;
scalability; report rendering)."""

import pytest

from repro.analysis import (
    cheat_matrix_experiment,
    client_server_kbps,
    figure7_experiment,
    naive_p2p_node_kbps,
    scalability_experiment,
    update_age_experiment,
)
from repro.analysis.cheat_matrix import TABLE1_ROWS
from repro.analysis.report import (
    render_cheat_matrix,
    render_churn,
    render_detection,
    render_exposure,
    render_scalability,
    render_table,
    render_update_age,
    render_witnesses,
)
from repro.net.latency import king_like, peerwise_like


#: Full-session integration tests: deselect with `-m "not slow"`.
pytestmark = pytest.mark.slow


class TestUpdateAge:
    @pytest.fixture(scope="class")
    def results(self, small_trace, longest_yard):
        # With only 8 players the default IS (5) swallows almost everyone
        # visible; shrink it so the VS/guidance path carries traffic too.
        from repro.core import WatchmenConfig
        from repro.game.interest import InterestConfig

        config = WatchmenConfig(interest=InterestConfig(interest_size=2))
        return figure7_experiment(small_trace, longest_yard, config=config)

    def test_both_latency_sets(self, results):
        names = [r.latency_name for r in results]
        assert any("king" in n for n in names)
        assert any("peerwise" in n for n in names)

    def test_pdf_normalised(self, results):
        for result in results:
            assert sum(result.pdf.values()) == pytest.approx(1.0)

    def test_figure7_shape(self, results):
        """Most updates arrive within 2 frames; ≥95 % under the 150 ms cap."""
        for result in results:
            assert result.cdf_at(2) > 0.90
            assert result.stale_fraction < 0.05

    def test_by_kind_covers_three_types(self, results):
        for result in results:
            assert {"state", "guidance", "position"} <= set(result.by_kind)

    def test_bandwidth_reported(self, results):
        for result in results:
            assert result.mean_upload_kbps > 0


class TestScalability:
    @pytest.fixture(scope="class")
    def points(self, longest_yard):
        return scalability_experiment(
            [4, 8, 12], num_frames=60, game_map=longest_yard
        )

    def test_point_per_count(self, points):
        assert [p.num_players for p in points] == [4, 8, 12]

    def test_client_server_formula(self):
        assert client_server_kbps(48) == pytest.approx(5760.0)

    def test_naive_p2p_linear_per_node(self):
        assert naive_p2p_node_kbps(20) > naive_p2p_node_kbps(10)

    def test_watchmen_grows_slower_than_naive(self, points):
        """The multi-resolution scheme beats full-mesh streaming."""
        small, large = points[0], points[-1]
        watchmen_growth = large.watchmen_mean_kbps / max(
            1e-9, small.watchmen_mean_kbps
        )
        naive_growth = large.naive_p2p_node_kbps / small.naive_p2p_node_kbps
        assert watchmen_growth < naive_growth

    def test_watchmen_node_cheaper_than_hosting_server(self, points):
        for point in points:
            assert point.watchmen_max_kbps < point.client_server_kbps

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            scalability_experiment([])


class TestCheatMatrix:
    @pytest.fixture(scope="class")
    def outcomes(self, small_trace, longest_yard):
        return cheat_matrix_experiment(small_trace, longest_yard)

    def test_all_table1_rows_present(self, outcomes):
        assert [o.cheat_name for o in outcomes] == [r[0] for r in TABLE1_ROWS]

    def test_every_cheat_countered(self, outcomes):
        """Table I's promise: every row is detected/prevented/minimised."""
        for outcome in outcomes:
            assert outcome.status in (
                "detected",
                "prevented",
                "exposure-minimised",
                "contained",
            ), f"{outcome.cheat_name}: {outcome.status} ({outcome.evidence})"

    def test_flow_cheats_detected(self, outcomes):
        by_name = {o.cheat_name: o for o in outcomes}
        for name in ("escaping", "time-cheat", "fast-rate", "blind-opponent"):
            assert by_name[name].status == "detected", by_name[name].evidence

    def test_crypto_cheats_prevented(self, outcomes):
        by_name = {o.cheat_name: o for o in outcomes}
        assert by_name["spoof"].status == "prevented"
        assert by_name["replay"].status == "prevented"
        assert by_name["consistency"].status == "prevented"

    def test_access_cheats_minimised(self, outcomes):
        by_name = {o.cheat_name: o for o in outcomes}
        for name in ("sniffing", "maphack", "rate-analysis"):
            assert by_name[name].status in ("exposure-minimised", "prevented")


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_render_table_validates_width(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_render_update_age(self, small_trace, longest_yard):
        result = update_age_experiment(
            small_trace, longest_yard, king_like(8, seed=1)
        )
        text = render_update_age([result])
        assert "king" in text
        assert "stale" in text

    def test_render_all_experiments_smoke(
        self, small_trace, medium_trace, longest_yard
    ):
        from repro.analysis import (
            churn_statistics,
            exposure_experiment,
            witness_experiment,
        )
        from repro.analysis.detection import DetectionOutcome

        exposure = exposure_experiment(
            small_trace, longest_yard, [1, 2], coalitions_per_size=2,
            frame_stride=80,
        )
        assert "watchmen" in render_exposure(exposure)

        witnesses = witness_experiment(
            small_trace, longest_yard, [1], coalitions_per_size=2,
            frame_stride=80,
        )
        assert "honest proxy" in render_witnesses(witnesses)

        outcome = DetectionOutcome("position", "speed-hack", 3.0, 10, 9, 0.01)
        assert "90%" in render_detection([outcome])

        stats = churn_statistics(medium_trace, longest_yard)
        assert "IS turnover" in render_churn(stats)

        points = scalability_experiment([4], num_frames=40)
        assert "players" in render_scalability(points)

    def test_render_cheat_matrix_smoke(self):
        from repro.analysis.cheat_matrix import CheatOutcome

        outcome = CheatOutcome(
            "spoof", "invalid", "Detected by players", "prevented",
            "12 signature failures", 12, 10,
        )
        text = render_cheat_matrix([outcome])
        assert "spoof" in text and "prevented" in text
