"""Tests for the hybrid server architecture and the admission system."""

import pytest

from repro.core import (
    WatchmenConfig,
    WatchmenSession,
    estimate_proxy_kbps,
    estimate_publisher_kbps,
    feasibility_test,
)
from repro.core.proxy import ProxySchedule
from repro.net.latency import uniform_lan


class TestHybridSession:
    @pytest.fixture(scope="class")
    def hybrid(self, small_trace, longest_yard):
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(9),  # 8 players + 1 server
            servers=1,
        )
        report = session.run()
        return session, report

    def test_server_id_beyond_players(self, hybrid):
        session, _ = hybrid
        assert session.server_ids == [8]

    def test_server_proxies_everyone(self, hybrid):
        session, _ = hybrid
        for player in session.trace.player_ids():
            for epoch in range(4):
                assert session.schedule.proxy_of(player, epoch) == 8

    def test_server_never_publishes_avatar(self, hybrid):
        session, _ = hybrid
        server_node = session.nodes[8]
        assert server_node.is_server
        # No node ever received a state update authored by the server.
        for player_id, node in session.nodes.items():
            for kind, _ in node.metrics.update_ages:
                pass  # ages don't identify senders; check known instead
            if player_id != 8:
                assert node.known.get(8) is None or player_id == 8

    def test_updates_still_flow(self, hybrid):
        _, report = hybrid
        assert sum(report.age_histogram.values()) > 0
        assert report.stale_fraction(3) < 0.05

    def test_server_carries_the_forwarding_load(self, hybrid):
        session, report = hybrid
        server_upload = report.server_upload_kbps[8]
        assert server_upload > report.max_upload_kbps

    def test_players_upload_less_than_pure_p2p(
        self, hybrid, honest_session_report
    ):
        _, hybrid_report = hybrid
        _, p2p_report = honest_session_report
        assert hybrid_report.mean_upload_kbps < p2p_report.mean_upload_kbps

    def test_no_proxy_exposure_to_players(self, hybrid):
        """With a trusted server as sole proxy, no *player* ever holds
        proxy-grade (complete) information about another player."""
        session, _ = hybrid
        for player in session.trace.player_ids():
            for epoch in range(4):
                assert (
                    session.schedule.proxy_of(player, epoch)
                    not in session.trace.player_ids()
                )

    def test_server_is_not_banned_or_removed(self, hybrid):
        session, report = hybrid
        assert 8 not in report.banned
        for player_id, node in session.nodes.items():
            assert 8 not in node.membership.removed

    def test_weighted_mode_mixes_servers_and_players(
        self, small_trace, longest_yard
    ):
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(9),
            servers=1,
            server_only_proxies=False,
            server_weight=8,
        )
        proxies = {
            session.schedule.proxy_of(p, e)
            for p in small_trace.player_ids()
            for e in range(10)
        }
        assert 8 in proxies  # the server serves often (weight 8)
        assert proxies - {8}  # but players still serve too

    def test_latency_matrix_must_cover_servers(self, small_trace, longest_yard):
        with pytest.raises(ValueError):
            WatchmenSession(
                small_trace,
                game_map=longest_yard,
                latency=uniform_lan(8),  # no room for the server endpoint
                servers=1,
            )

    def test_negative_servers_rejected(self, small_trace, longest_yard):
        with pytest.raises(ValueError):
            WatchmenSession(small_trace, game_map=longest_yard, servers=-1)


class TestScheduleInfrastructure:
    def test_infrastructure_in_pool(self):
        schedule = ProxySchedule(
            list(range(6)), proxy_pool=[100], infrastructure=[100]
        )
        for player in range(6):
            assert schedule.proxy_of(player, 0) == 100

    def test_infrastructure_id_collision_rejected(self):
        with pytest.raises(ValueError):
            ProxySchedule(list(range(6)), infrastructure=[3])

    def test_unknown_pool_id_still_rejected(self):
        with pytest.raises(ValueError):
            ProxySchedule(list(range(6)), proxy_pool=[100])

    def test_without_players_keeps_infrastructure(self):
        schedule = ProxySchedule(
            list(range(6)), proxy_pool=[100], infrastructure=[100]
        )
        slim = schedule.without_players({3})
        assert slim.proxy_of(0, 0) == 100


class TestAdmission:
    def test_load_estimates_positive(self):
        config = WatchmenConfig()
        assert estimate_publisher_kbps(config) > 0
        assert estimate_proxy_kbps(config, 16) > estimate_publisher_kbps(config)

    def test_proxy_load_grows_with_players(self):
        config = WatchmenConfig()
        assert estimate_proxy_kbps(config, 48) > estimate_proxy_kbps(config, 8)

    def test_empty_capacities_rejected(self):
        with pytest.raises(ValueError):
            feasibility_test({})

    def test_bad_headroom_rejected(self):
        with pytest.raises(ValueError):
            feasibility_test({0: 100.0}, headroom=0.5)

    def test_starved_player_rejected(self):
        decision = feasibility_test({0: 1.0, 1: 5000.0, 2: 5000.0})
        assert 0 in decision.rejected
        assert 0 not in decision.admitted

    def test_low_capacity_player_admitted_but_not_pooled(self):
        config = WatchmenConfig()
        publisher = estimate_publisher_kbps(config)
        capacity = publisher * 1.5  # can publish, cannot forward
        decision = feasibility_test(
            {0: capacity, 1: 5000.0, 2: 5000.0}, config=config
        )
        assert 0 in decision.admitted
        assert 0 not in decision.proxy_pool

    def test_powerful_players_weighted_higher(self):
        decision = feasibility_test({0: 10_000.0, 1: 600.0, 2: 600.0})
        assert decision.pool_weights[0] >= decision.pool_weights[1]

    def test_weight_capped(self):
        decision = feasibility_test({0: 10**9, 1: 10**9}, max_weight=4)
        assert max(decision.pool_weights.values()) <= 4

    def test_decision_feeds_session(self, small_trace, longest_yard):
        capacities = {p: 5000.0 for p in small_trace.player_ids()}
        capacities[0] = 50.0  # can publish, never forwards
        decision = feasibility_test(capacities)
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(8),
            proxy_pool=decision.proxy_pool,
            pool_weights=decision.pool_weights,
        )
        for epoch in range(6):
            for player in small_trace.player_ids():
                assert session.schedule.proxy_of(player, epoch) != 0
        report = session.run(max_frames=60)
        assert report.stale_fraction(3) < 0.05
