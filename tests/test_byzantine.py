"""Byzantine hardening: adversarial envelope edges, detection, accounting.

Covers the PR 9 robustness tier (see ``docs/ROBUSTNESS.md``):

- sequence-watermark eviction keeps late retransmits *silent* — a
  garbage-collected tombstone must never turn into cheat evidence or a
  reprocessed message, with the robustness gates on or off;
- ``_verify_envelope`` under attack: forged signatures, spoofed senders,
  tamper-hop attribution, duplicate-vs-replay-vs-equivocation
  classification, plus a property check that honest retransmits never
  accuse anyone no matter the interleaving;
- the equivocation pipeline end to end: archive cross-check, signed
  self-certifying evidence, quorum-free conviction, and every forgery
  path ``_evidence_is_valid`` must reject;
- the token-bucket flood defense with its *bounded* quarantine;
- conviction semantics on the membership view (idempotence, no rescind
  by liveness, interaction with the silence quorum);
- unified drop accounting: protocol-layer rejections surface as
  ``net.dropped.tamper`` / ``net.dropped.quarantine`` and feed
  ``messages_lost``;
- bit-identity: an empty Byzantine schedule (and hardening with no
  attacker) changes nothing;
- fault-schedule JSON round-trips for every adversarial fault kind.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import WatchmenSession
from repro.core.config import WatchmenConfig
from repro.core.membership import MembershipView
from repro.core.messages import (
    MisbehaviorEvidence,
    PositionUpdate,
    StateUpdate,
    signable_bytes,
)
from repro.core.node import WatchmenNode
from repro.core.proxy import ProxySchedule
from repro.crypto.signatures import HmacSigner
from repro.faults import FaultSchedule
from repro.faults.byzantine import (
    AckWithholdFault,
    EquivocationFault,
    FloodFault,
    SelectiveForwardFault,
    TamperFault,
)
from repro.game import generate_trace
from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import make_arena
from repro.game.vector import Vec3
from repro.obs import MetricsRegistry


def snap(player_id, frame=0, x=0.0, y=-800.0):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=Vec3(x, y, 0),
        velocity=Vec3(),
        yaw=0.0,
        health=100,
        armor=0,
        weapon="machinegun",
        ammo=100,
        alive=True,
    )


class Harness:
    """N nodes over an instant, lossless, synchronous loopback."""

    def __init__(self, num_players=4, config=None):
        self.config = config or WatchmenConfig()
        roster = list(range(num_players))
        self.schedule = ProxySchedule(
            roster,
            common_seed=self.config.common_seed,
            proxy_period_frames=self.config.proxy_period_frames,
        )
        self.signer = HmacSigner()
        self.sent = []
        self.nodes = {}
        for player_id in roster:
            self.nodes[player_id] = WatchmenNode(
                player_id=player_id,
                roster=roster,
                game_map=make_arena(),
                config=self.config,
                schedule=self.schedule,
                signer=self.signer,
                send=self._send,
            )

    def _send(self, src, dst, message, size):
        self.sent.append((src, dst, message))
        node = self.nodes.get(dst)
        if node is not None:
            node.on_message(src, message)
        return True

    def tick(self, frame):
        for player_id, node in self.nodes.items():
            node.on_frame(frame, snap(player_id, frame=frame, x=100.0 * player_id))

    def signed_state(self, sender, sequence, frame=0, x=0.0):
        message = StateUpdate(sender, frame, sequence, snap(sender, frame, x=x))
        return replace(
            message, signature=self.signer.sign(sender, signable_bytes(message))
        )

    def signed_position(self, sender, sequence, frame=0):
        message = PositionUpdate(sender, frame, sequence, snap(sender, frame))
        return replace(
            message, signature=self.signer.sign(sender, signable_bytes(message))
        )

    def signed_evidence(self, witness, accused, first, second, *, frame=0,
                        sequence=900_000):
        evidence = MisbehaviorEvidence(
            sender_id=witness,
            accused_id=accused,
            frame=frame,
            sequence=sequence,
            first=first,
            second=second,
        )
        return replace(
            evidence, signature=self.signer.sign(witness, signable_bytes(evidence))
        )


def hardened():
    return WatchmenConfig(byzantine_hardening=True)


def ratings_with(node, fragment):
    return [r for r in node.metrics.ratings if fragment in r.detail]


def _report_fingerprint(report) -> tuple:
    return (
        report.messages_sent,
        report.messages_lost,
        report.dropped_by_cause,
        report.mean_upload_kbps,
        report.max_upload_kbps,
        sorted(report.banned),
        report.view_error_stats(),
        dict(report.crashed),
    )


# ---- satellite 1: watermark eviction -------------------------------------


class TestWatermarkEviction:
    def _flood_sequences(self, harness, receiver, sender, count):
        node = harness.nodes[receiver]
        for sequence in range(count):
            node.on_message(sender, harness.signed_position(sender, sequence))
        return node

    def test_eviction_installs_watermark_and_bounds_memory(self):
        harness = Harness()
        harness.tick(0)
        node = self._flood_sequences(harness, 1, 0, 4200)
        assert node._seen_watermark[0] == 2048
        seen = node._seen_sequences[0]
        assert min(seen) == 2049 and max(seen) == 4199
        assert len(seen) <= 4096

    def test_retransmit_straddling_eviction_is_silent_gates_off(self):
        """A retransmit below the watermark is screened, never judged.

        The pre-watermark code *re-accepted* evicted sequences (the
        tombstone was gone, so the message looked fresh); the fix must
        screen them silently even with every robustness gate off, where
        a tracked replay would normally earn a cheat rating.
        """
        harness = Harness()  # failover/reliable/hardening all default off
        harness.tick(0)
        node = self._flood_sequences(harness, 1, 0, 4200)
        before_replays = node.metrics.replayed_messages
        evicted = harness.signed_position(0, 100)  # below watermark 2048
        node.on_message(0, evicted)
        assert node.metrics.replayed_messages == before_replays + 1
        assert ratings_with(node, "replayed sequence 100") == []
        # Not reprocessed either: the sequence stays evicted, not re-seen.
        assert 100 not in node._seen_sequences[0]

    def test_tracked_replay_still_rates_with_gates_off(self):
        """Contrast: a *tracked* duplicate with all gates off still rates."""
        harness = Harness()
        harness.tick(0)
        node = self._flood_sequences(harness, 1, 0, 4200)
        node.on_message(0, harness.signed_position(0, 3000))  # still tracked
        assert len(ratings_with(node, "replayed sequence 3000")) == 1

    def test_eviction_purges_equivocation_archive_in_lockstep(self):
        # Rate limits lifted: this test floods sequences on purpose and
        # is about archive GC, not the flood defense.
        harness = Harness(
            config=WatchmenConfig(
                byzantine_hardening=True,
                rate_limit_msgs_per_frame=100_000,
                rate_limit_burst=100_000,
            )
        )
        harness.tick(0)
        proxy = harness.schedule.proxy_of(0, 0)
        node = harness.nodes[proxy]
        for sequence in range(4200):
            node.on_message(0, harness.signed_state(0, sequence))
        archive = node._update_archive[0]
        assert archive, "hardening must archive first-seen updates"
        assert min(archive) > node._seen_watermark[0]


# ---- satellite 3: envelope adversarial edges ------------------------------


class TestEnvelopeAdversarial:
    def test_forged_signature_relayed_blames_the_hop(self):
        harness = Harness(config=hardened())
        harness.tick(0)
        node = harness.nodes[1]
        drops = []
        node.protocol_drop = drops.append
        message = harness.signed_state(0, 500)
        tampered = replace(message, snapshot=snap(0, x=9999.0))
        node.on_message(3, tampered)  # relayed by 3, signed by 0
        assert (0, 3, "tamper_hop") in node.suspicion_events
        assert drops == ["tamper"]
        assert [r.subject_id for r in ratings_with(node, "tampering hop")] == [3]
        # The named sender is *not* blamed: its signing path never
        # produces these bytes, so the mutation happened in flight.
        assert all(
            r.subject_id != 0 for r in ratings_with(node, "tampering hop")
        )

    def test_forged_signature_first_hop_blames_the_sender(self):
        harness = Harness(config=hardened())
        harness.tick(0)
        node = harness.nodes[1]
        message = StateUpdate(0, 0, 501, snap(0))  # unsigned
        node.on_message(0, message)  # src == sender: nothing was relayed
        assert node.suspicion_events == []
        assert [
            r.subject_id for r in ratings_with(node, "invalid or missing")
        ] == [0]

    def test_spoofed_sender_vs_route_attributed_to_route(self):
        """Player 2 signs with *its own* key while claiming to be 0."""
        harness = Harness(config=hardened())
        harness.tick(0)
        node = harness.nodes[1]
        message = StateUpdate(0, 0, 502, snap(0))
        spoofed = replace(
            message, signature=harness.signer.sign(2, signable_bytes(message))
        )
        node.on_message(2, spoofed)
        # The verify keys off the claimed sender (0), so the signature
        # fails; hardening pins the blame on the delivering hop (2).
        assert (0, 2, "tamper_hop") in node.suspicion_events
        assert [r.subject_id for r in ratings_with(node, "tampering hop")] == [2]

    def test_hardening_off_keeps_legacy_attribution(self):
        harness = Harness()
        harness.tick(0)
        node = harness.nodes[1]
        message = harness.signed_state(0, 503)
        node.on_message(3, replace(message, snapshot=snap(0, x=123.0)))
        assert node.suspicion_events == []
        assert [
            r.subject_id for r in ratings_with(node, "invalid or missing")
        ] == [0]

    def test_identical_retransmit_is_replay_not_equivocation(self):
        harness = Harness(config=hardened())
        harness.tick(0)
        proxy = harness.schedule.proxy_of(0, 0)
        node = harness.nodes[proxy]
        message = harness.signed_state(0, 504)
        node.on_message(0, message)
        before = node.metrics.replayed_messages
        node.on_message(0, message)
        assert node.metrics.replayed_messages == before + 1
        assert node.equivocation_events == []
        assert ratings_with(node, "equivocation") == []

    def test_reliable_mode_screens_duplicates_silently(self):
        config = WatchmenConfig(reliable_delivery=True, proxy_failover=True)
        harness = Harness(config=config)
        harness.tick(0)
        node = harness.nodes[1]
        message = harness.signed_position(0, 505)
        node.on_message(0, message)
        node.on_message(0, message)
        assert ratings_with(node, "replayed sequence") == []

    def test_honest_retransmit_interleavings_never_accuse(self):
        """Property: shuffled + duplicated honest traffic stays innocent.

        Whatever order (and multiplicity) the network delivers a batch of
        correctly signed, sequence-distinct updates in, the hardened
        envelope must treat every repeat as a retransmission artefact —
        zero equivocation events, zero quarantines, zero max-confidence
        ratings against the honest sender.
        """
        hypothesis = pytest.importorskip("hypothesis")
        given = hypothesis.given
        settings = hypothesis.settings
        st = hypothesis.strategies

        # The full robustness stack: retransmits are only an *expected*
        # artefact when the layers that generate them (retry ladder,
        # dual-send failover) are on — which is how hardening deploys.
        config = WatchmenConfig(
            byzantine_hardening=True,
            reliable_delivery=True,
            proxy_failover=True,
        )

        @given(data=st.data())
        @settings(max_examples=20, deadline=None)
        def run(data):
            harness = Harness(config=config)
            harness.tick(0)
            proxy = harness.schedule.proxy_of(0, 0)
            node = harness.nodes[proxy]
            originals = [harness.signed_state(0, 600 + i) for i in range(6)]
            extras = data.draw(
                st.lists(st.sampled_from(originals), max_size=8)
            )
            batch = data.draw(st.permutations(originals + extras))
            for message in batch:
                node.on_message(0, message)
            assert node.equivocation_events == []
            assert node.quarantine_events == []
            assert not any(
                r.rating >= 10.0 and r.subject_id == 0
                for r in node.metrics.ratings
            )

        run()


# ---- tentpole: equivocation detection + evidence --------------------------


class TestEquivocation:
    def _conflict(self, harness, sender=0, sequence=700):
        first = harness.signed_state(sender, sequence, x=10.0)
        second = harness.signed_state(sender, sequence, x=5000.0)
        return first, second

    def test_conflicting_payloads_detected_and_broadcast(self):
        harness = Harness(config=hardened())
        harness.tick(0)
        proxy = harness.schedule.proxy_of(0, 0)
        witness = harness.nodes[proxy]
        first, second = self._conflict(harness)
        witness.on_message(0, first)
        witness.on_message(0, second)
        assert [(f, who) for f, who in witness.equivocation_events] == [(0, 0)]
        assert len(ratings_with(witness, "equivocation: conflicting")) == 1
        evidence = [
            m for _, _, m in harness.sent if isinstance(m, MisbehaviorEvidence)
        ]
        assert evidence and all(e.accused_id == 0 for e in evidence)
        # Loopback delivered the evidence: every honest node convicted.
        for player_id, node in harness.nodes.items():
            if player_id == 0:
                continue
            assert 0 in node.membership.convicted, player_id

    def test_evidence_emitted_once_per_accused(self):
        harness = Harness(config=hardened())
        harness.tick(0)
        proxy = harness.schedule.proxy_of(0, 0)
        witness = harness.nodes[proxy]
        first, second = self._conflict(harness, sequence=701)
        third = harness.signed_state(0, 701, x=-4000.0)
        witness.on_message(0, first)
        witness.on_message(0, second)
        before = len(
            [m for _, _, m in harness.sent if isinstance(m, MisbehaviorEvidence)]
        )
        witness.on_message(0, third)
        after = len(
            [m for _, _, m in harness.sent if isinstance(m, MisbehaviorEvidence)]
        )
        assert after == before  # second conflict: rated, not re-broadcast

    def test_valid_evidence_convicts_a_third_party(self):
        harness = Harness(config=hardened())
        harness.tick(0)
        node = harness.nodes[2]
        first, second = self._conflict(harness, sequence=702)
        evidence = harness.signed_evidence(1, 0, first, second)
        node.on_message(1, evidence)
        assert 0 in node.membership.convicted
        assert len(ratings_with(node, "verified misbehavior evidence")) == 1

    @pytest.mark.parametrize(
        "mutate",
        [
            "wrong_accused",
            "different_sequences",
            "identical_payloads",
            "broken_inner_signature",
        ],
    )
    def test_forged_evidence_rejected_and_reporter_rated(self, mutate):
        harness = Harness(config=hardened())
        harness.tick(0)
        node = harness.nodes[2]
        first, second = self._conflict(harness, sequence=703)
        if mutate == "wrong_accused":
            evidence = harness.signed_evidence(1, 3, first, second)
        elif mutate == "different_sequences":
            other = harness.signed_state(0, 704, x=5000.0)
            evidence = harness.signed_evidence(1, 0, first, other)
        elif mutate == "identical_payloads":
            evidence = harness.signed_evidence(1, 0, first, first)
        else:
            broken = replace(second, signature=first.signature)
            evidence = harness.signed_evidence(1, 0, first, broken)
        node.on_message(1, evidence)
        assert node.membership.convicted == set()
        rated = ratings_with(node, "evidence fails verification")
        assert [r.subject_id for r in rated] == [1]  # the reporter, not 0

    def test_no_self_conviction_on_hearsay(self):
        harness = Harness(config=hardened())
        harness.tick(0)
        accused = harness.nodes[0]
        first, second = self._conflict(harness, sequence=705)
        evidence = harness.signed_evidence(1, 0, first, second)
        accused.on_message(1, evidence)
        assert 0 not in accused.membership.convicted

    def test_hardening_off_ignores_evidence(self):
        harness = Harness()
        harness.tick(0)
        node = harness.nodes[2]
        first, second = self._conflict(harness, sequence=706)
        evidence = harness.signed_evidence(1, 0, first, second)
        node.on_message(1, evidence)
        assert node.membership.convicted == set()
        assert node.metrics.ratings == []


# ---- tentpole: flood defense ---------------------------------------------


class TestRateLimitQuarantine:
    def test_flood_trips_bounded_quarantine(self):
        harness = Harness(config=hardened())
        harness.tick(0)
        node = harness.nodes[1]
        drops = []
        node.protocol_drop = drops.append
        burst = harness.config.rate_limit_burst
        strikes = harness.config.quarantine_strikes
        for i in range(burst + strikes + 5):
            node.on_message(2, harness.signed_position(2, 800 + i))
        assert [src for _, src in node.quarantine_events] == [2]
        assert drops.count("quarantine") >= 5
        assert len(ratings_with(node, "message flood")) == 1
        # Bounded: quarantine expires, the link speaks again, strikes
        # are forgiven — a false positive self-heals instead of
        # escalating toward an eviction.
        resume = harness.config.quarantine_frames + 1
        node.on_frame(resume, snap(1, frame=resume, x=100.0))
        before = len(drops)
        node.on_message(2, harness.signed_position(2, 900))
        assert len(drops) == before
        assert node._quarantined_until == {}
        assert len(node.quarantine_events) == 1

    def test_honest_pacing_never_strikes(self):
        harness = Harness(config=hardened())
        harness.tick(0)
        node = harness.nodes[1]
        rate = harness.config.rate_limit_msgs_per_frame
        sequence = 1000
        for frame in range(1, 31):
            node.on_frame(frame, snap(1, frame=frame, x=100.0))
            for _ in range(rate - 1):
                node.on_message(2, harness.signed_position(2, sequence, frame))
                sequence += 1
        assert node.quarantine_events == []
        assert node._rate_strikes.get(2, 0) == 0

    def test_own_loopback_traffic_exempt(self):
        harness = Harness(config=hardened())
        harness.tick(0)
        node = harness.nodes[1]
        for i in range(200):
            node.on_message(1, harness.signed_position(1, 1200 + i))
        assert node.quarantine_events == []


# ---- tentpole: conviction semantics --------------------------------------


class TestConvictionSemantics:
    def test_convict_is_idempotent_and_pins_the_epoch(self):
        view = MembershipView(roster=[0, 1, 2, 3])
        assert view.convict(3, epoch_due=5) is True
        assert view.convict(3, epoch_due=99) is False  # repeat ignored
        assert view._scheduled_removals[3] == 5  # first conviction pins
        assert view.apply_removals(4) == set()
        assert view.apply_removals(5) == {3}
        assert 3 not in view.current_roster()

    def test_liveness_does_not_rescind_a_conviction(self):
        view = MembershipView(roster=[0, 1, 2, 3])
        view.convict(3, epoch_due=5)
        view.heard_from(3, frame=90)  # the equivocator keeps publishing
        assert 3 in view._scheduled_removals
        assert view.apply_removals(5) == {3}

    def test_convict_rejects_strangers_and_the_removed(self):
        view = MembershipView(roster=[0, 1, 2, 3])
        assert view.convict(9, epoch_due=5) is False
        view.convict(3, epoch_due=1)
        view.apply_removals(1)
        assert view.convict(3, epoch_due=2) is False


# ---- satellite 2: unified drop accounting ---------------------------------


class TestDropAccounting:
    def test_protocol_drops_feed_the_registry_and_the_report(self):
        registry = MetricsRegistry()
        trace = generate_trace(num_players=6, num_frames=120, seed=3)
        schedule = FaultSchedule(
            byzantine=(TamperFault(node_id=1, start_frame=20, end_frame=80),),
            seed=3,
        )
        session = WatchmenSession(
            trace,
            config=hardened(),
            faults=schedule,
            registry=registry,
        )
        report = session.run()
        tampered = report.dropped_by_cause.get("tamper", 0)
        assert tampered > 0
        counters = registry.snapshot()["counters"]
        assert counters["net.dropped.tamper"] == tampered
        assert session.network.rejected_by_protocol >= tampered
        # PR 4 convention: every dead datagram has exactly one cause
        # counter, and messages_lost is their sum — protocol-layer
        # rejections included.
        assert report.messages_lost == sum(report.dropped_by_cause.values())

    def test_quarantine_drops_counted_by_cause(self):
        registry = MetricsRegistry()
        trace = generate_trace(num_players=6, num_frames=120, seed=4)
        schedule = FaultSchedule(
            byzantine=(
                FloodFault(
                    node_id=1,
                    victims=frozenset({2, 3}),
                    start_frame=20,
                    end_frame=80,
                ),
            ),
            seed=4,
        )
        report = WatchmenSession(
            trace, config=hardened(), faults=schedule, registry=registry
        ).run()
        quarantined = report.dropped_by_cause.get("quarantine", 0)
        assert quarantined > 0
        assert registry.snapshot()["counters"]["net.dropped.quarantine"] == (
            quarantined
        )
        assert report.messages_lost == sum(report.dropped_by_cause.values())


# ---- bit-identity + serialization ----------------------------------------


class TestByzantineBitIdentity:
    def test_empty_byzantine_schedule_equals_no_injector(self):
        trace = generate_trace(num_players=8, num_frames=120, seed=11)
        plain = WatchmenSession(trace).run()
        empty = WatchmenSession(trace, faults=FaultSchedule(byzantine=())).run()
        assert _report_fingerprint(plain) == _report_fingerprint(empty)

    def test_hardening_without_attackers_is_inert_under_empty_schedule(self):
        """Hardening + an empty schedule == hardening + no injector.

        (Hardening itself may observably differ from no-hardening; the
        identity that must hold is that *wiring the Byzantine machinery
        with nothing to inject* changes no byte of the outcome.)
        """
        trace = generate_trace(num_players=8, num_frames=120, seed=11)
        config = hardened()
        plain = WatchmenSession(trace, config=config).run()
        empty = WatchmenSession(
            trace, config=config, faults=FaultSchedule(byzantine=())
        ).run()
        assert _report_fingerprint(plain) == _report_fingerprint(empty)
        assert plain.equivocations_detected == 0
        assert plain.quarantines == 0


class TestScheduleRoundTrip:
    def test_every_byzantine_kind_round_trips(self):
        schedule = FaultSchedule(
            byzantine=(
                EquivocationFault(node_id=1, start_frame=10, end_frame=50),
                TamperFault(node_id=2, start_frame=5, end_frame=25),
                SelectiveForwardFault(
                    node_id=3,
                    victims=frozenset({0, 4}),
                    start_frame=8,
                    end_frame=40,
                ),
                FloodFault(
                    node_id=4,
                    victims=frozenset({1}),
                    start_frame=12,
                    end_frame=30,
                    msgs_per_frame=96,
                ),
                AckWithholdFault(node_id=5, start_frame=0, end_frame=60),
            ),
            seed=17,
        )
        assert FaultSchedule.from_json(schedule.to_json()) == schedule
        assert schedule.byzantine_node_ids() == frozenset({1, 2, 3, 4, 5})
        assert [f.node_id for f in schedule.byzantine_for(3)] == [3]

    def test_empty_byzantine_tuple_keeps_schedule_empty(self):
        assert FaultSchedule(byzantine=()).is_empty()
        assert not FaultSchedule(
            byzantine=(AckWithholdFault(node_id=0, start_frame=0, end_frame=1),)
        ).is_empty()
