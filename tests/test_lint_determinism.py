"""D-family lint rules: snippets that must flag and snippets that must pass."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.lint.determinism import (
    FILE_IO_ALLOWLIST,
    check_file_io,
    check_float_equality,
    check_module_random,
    check_wall_clock,
    run_determinism_rules,
)

pytestmark = pytest.mark.lint

PATH = "src/repro/core/example.py"


def _run(check, snippet: str):
    tree = ast.parse(snippet)
    return check(PATH, tree, snippet.splitlines())


class TestWallClock:
    def test_flags_time_time(self):
        violations = _run(check_wall_clock, "import time\nstamp = time.time()\n")
        assert [v.rule for v in violations] == ["D101"]
        assert violations[0].line == 2
        assert "time.time" in violations[0].message

    def test_flags_perf_counter_and_monotonic(self):
        snippet = (
            "import time\n"
            "a = time.perf_counter()\n"
            "b = time.monotonic()\n"
            "c = time.process_time()\n"
        )
        assert len(_run(check_wall_clock, snippet)) == 3

    def test_flags_datetime_now_variants(self):
        snippet = (
            "from datetime import datetime\n"
            "a = datetime.now()\n"
            "b = datetime.utcnow()\n"
            "c = datetime.today()\n"
        )
        assert len(_run(check_wall_clock, snippet)) == 3

    def test_flags_fully_qualified_datetime(self):
        violations = _run(
            check_wall_clock, "import datetime\nx = datetime.datetime.now()\n"
        )
        assert len(violations) == 1

    def test_passes_frame_derived_time(self):
        snippet = (
            "def at(frame: int, dt: float) -> float:\n"
            "    return frame * dt\n"
        )
        assert _run(check_wall_clock, snippet) == []

    def test_passes_unrelated_attribute_calls(self):
        assert _run(check_wall_clock, "x = queue.now()\ny = obj.time\n") == []


class TestModuleRandom:
    def test_flags_import_random(self):
        violations = _run(check_module_random, "import random\n")
        assert [v.rule for v in violations] == ["D102"]

    def test_flags_from_import_of_module_state_functions(self):
        snippet = "from random import choice, shuffle\n"
        assert len(_run(check_module_random, snippet)) == 2

    def test_passes_random_class_import(self):
        snippet = "from random import Random\nrng = Random(7)\n"
        assert _run(check_module_random, snippet) == []

    def test_passes_system_random(self):
        assert _run(check_module_random, "from random import SystemRandom\n") == []

    def test_flags_import_random_submodule_style(self):
        assert len(_run(check_module_random, "import random as rnd\n")) == 1


class TestFloatEquality:
    def test_flags_nonzero_literal_equality(self):
        violations = _run(check_float_equality, "ok = x == 1.5\n")
        assert [v.rule for v in violations] == ["D103"]

    def test_flags_not_equal_and_reversed_operands(self):
        snippet = "a = 2.5 != y\nb = y == 0.25\n"
        assert len(_run(check_float_equality, snippet)) == 2

    def test_flags_negative_literal(self):
        assert len(_run(check_float_equality, "a = x == -1.5\n")) == 1

    def test_zero_guard_is_exempt(self):
        snippet = "a = denom == 0.0\nb = length != 0.0\nc = x == -0.0\n"
        assert _run(check_float_equality, snippet) == []

    def test_int_equality_is_fine(self):
        assert _run(check_float_equality, "a = frame == 3\n") == []

    def test_ordering_comparisons_are_fine(self):
        assert _run(check_float_equality, "a = x <= 1.5\nb = x > 0.1\n") == []


class TestRunAll:
    def test_families_compose(self):
        snippet = (
            "import random\n"
            "import time\n"
            "t = time.time()\n"
            "eq = x == 3.25\n"
        )
        rules = sorted(v.rule for v in _run(run_determinism_rules, snippet))
        assert rules == ["D101", "D102", "D103"]

    def test_clean_snippet_is_clean(self):
        snippet = (
            "from random import Random\n"
            "def roll(seed: int) -> float:\n"
            "    return Random(seed).random()\n"
        )
        assert _run(run_determinism_rules, snippet) == []


class TestFileIO:
    def test_flags_builtin_open(self):
        violations = _run(check_file_io, "with open('x.json') as handle:\n    pass\n")
        assert [v.rule for v in violations] == ["D104"]
        assert "open" in violations[0].message

    def test_flags_path_read_write_methods(self):
        snippet = (
            "data = Path('x').read_bytes()\n"
            "text = Path('x').read_text()\n"
            "Path('y').write_text(text)\n"
            "Path('y').write_bytes(data)\n"
            "Path('z').mkdir()\n"
            "Path('z').unlink()\n"
        )
        assert len(_run(check_file_io, snippet)) == 6

    def test_allowlisted_files_are_exempt(self):
        tree = ast.parse("with open('x.tape') as handle:\n    pass\n")
        for allowed in sorted(FILE_IO_ALLOWLIST):
            assert check_file_io(allowed, tree, []) == []

    def test_allowlist_names_real_files(self):
        for allowed in FILE_IO_ALLOWLIST:
            assert Path(allowed).is_file(), allowed

    def test_pure_code_is_clean(self):
        snippet = "rows = [encode(r) for r in data]\nresult = json.dumps(rows)\n"
        assert _run(check_file_io, snippet) == []

    def test_run_all_includes_file_io(self):
        rules = sorted(
            v.rule for v in _run(run_determinism_rules, "open('x')\n")
        )
        assert rules == ["D104"]
