"""Unit tests for maps, occlusion and items placement."""

import pytest

from repro.game.gamemap import (
    Box,
    GameMap,
    ItemKind,
    ItemSpec,
    eye_position,
    make_arena,
    make_longest_yard,
)
from repro.game.vector import Vec3


class TestBox:
    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            Box(Vec3(1, 0, 0), Vec3(0, 1, 1))

    def test_top_and_center(self):
        box = Box(Vec3(0, 0, 0), Vec3(2, 2, 4))
        assert box.top == 4
        assert box.center == Vec3(1, 1, 2)

    def test_contains_xy_with_margin(self):
        box = Box(Vec3(0, 0, 0), Vec3(10, 10, 1))
        assert box.contains_xy(Vec3(5, 5, 99))
        assert not box.contains_xy(Vec3(11, 5, 0))
        assert box.contains_xy(Vec3(11, 5, 0), margin=2.0)

    def test_contains_3d(self):
        box = Box(Vec3(0, 0, 0), Vec3(10, 10, 10))
        assert box.contains(Vec3(5, 5, 5))
        assert not box.contains(Vec3(5, 5, 11))

    def test_segment_through_box_intersects(self):
        box = Box(Vec3(-1, -1, -1), Vec3(1, 1, 1))
        assert box.intersects_segment(Vec3(-5, 0, 0), Vec3(5, 0, 0))

    def test_segment_missing_box(self):
        box = Box(Vec3(-1, -1, -1), Vec3(1, 1, 1))
        assert not box.intersects_segment(Vec3(-5, 5, 0), Vec3(5, 5, 0))

    def test_segment_stopping_short(self):
        box = Box(Vec3(10, -1, -1), Vec3(12, 1, 1))
        assert not box.intersects_segment(Vec3(0, 0, 0), Vec3(9, 0, 0))

    def test_segment_grazing_surface_does_not_block(self):
        # Sight lines along a platform's top surface must not be occluded.
        box = Box(Vec3(-10, -10, -5), Vec3(10, 10, 0))
        assert not box.intersects_segment(Vec3(-20, 0, 0), Vec3(20, 0, 0))

    def test_diagonal_segment(self):
        box = Box(Vec3(4, 4, 4), Vec3(6, 6, 6))
        assert box.intersects_segment(Vec3(0, 0, 0), Vec3(10, 10, 10))


class TestItemSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ItemSpec("potion", Vec3())

    def test_non_positive_respawn_rejected(self):
        with pytest.raises(ValueError):
            ItemSpec(ItemKind.HEALTH, Vec3(), respawn_frames=0)

    def test_all_kinds_enumerated(self):
        assert set(ItemKind.ALL) == {
            "health",
            "ammo",
            "weapon",
            "armor",
            "powerup",
        }


class TestGameMap:
    def test_requires_respawn_points(self):
        with pytest.raises(ValueError):
            GameMap(
                name="empty",
                bounds_min=Vec3(-10, -10, -10),
                bounds_max=Vec3(10, 10, 10),
            )

    def test_respawn_points_must_be_in_bounds(self):
        with pytest.raises(ValueError):
            GameMap(
                name="bad",
                bounds_min=Vec3(-10, -10, -10),
                bounds_max=Vec3(10, 10, 10),
                respawn_points=[Vec3(100, 0, 0)],
            )

    def test_clamp_to_bounds(self, arena):
        clamped = arena.clamp_to_bounds(Vec3(1e6, -1e6, 0))
        assert arena.in_bounds(clamped)

    def test_floor_height_over_platform(self):
        yard = make_longest_yard()
        assert yard.floor_height(Vec3(0, 0, 100)) == pytest.approx(0.0)

    def test_floor_height_over_void(self):
        yard = make_longest_yard()
        assert yard.floor_height(Vec3(2100, 2100, 0)) is None

    def test_nearest_respawn(self, arena):
        point = arena.respawn_points[0]
        assert arena.nearest_respawn(point + Vec3(1, 1, 0)) == point

    def test_item_positions_filter_by_kind(self):
        yard = make_longest_yard()
        weapons = yard.item_positions(ItemKind.WEAPON)
        assert weapons
        assert len(weapons) < len(yard.item_positions())


class TestLineOfSight:
    def test_clear_line(self, arena):
        assert arena.line_of_sight(Vec3(-500, -500, 50), Vec3(-400, -500, 50))

    def test_pillar_blocks(self):
        yard = make_longest_yard()
        # The east pillar spans x∈[220,300], y∈[-40,40], z∈[0,160].
        eye_a = Vec3(100, 0, 50)
        eye_b = Vec3(400, 0, 50)
        assert not yard.line_of_sight(eye_a, eye_b)

    def test_looking_over_pillar(self):
        yard = make_longest_yard()
        assert yard.line_of_sight(Vec3(100, 0, 400), Vec3(400, 0, 400))

    def test_symmetry(self):
        yard = make_longest_yard()
        a, b = Vec3(100, 0, 50), Vec3(400, 0, 50)
        assert yard.line_of_sight(a, b) == yard.line_of_sight(b, a)

    def test_endpoint_inside_solid_is_ignored(self):
        yard = make_longest_yard()
        inside = Vec3(260, 0, 80)  # inside the east pillar
        outside = Vec3(260, 500, 80)
        # The pillar containing the endpoint does not occlude itself.
        assert yard.line_of_sight(inside, outside)


class TestBuiltinMaps:
    def test_longest_yard_has_hotspot_items(self):
        yard = make_longest_yard()
        names = {item.name for item in yard.items}
        assert "railgun" in names
        assert "mega" in names

    def test_longest_yard_item_kinds_cover_figure1_legend(self):
        yard = make_longest_yard()
        kinds = {item.kind for item in yard.items}
        assert kinds == set(ItemKind.ALL)

    def test_arena_rejects_tiny_side(self):
        with pytest.raises(ValueError):
            make_arena(side=100.0)

    def test_arena_pillar_count(self):
        arena = make_arena(pillars=3)
        pillars = [b for b in arena.solids if b.name.startswith("pillar")]
        assert len(pillars) == 3

    def test_eye_position_above_feet(self):
        feet = Vec3(1, 2, 3)
        eye = eye_position(feet)
        assert eye.x == feet.x and eye.y == feet.y
        assert eye.z > feet.z
