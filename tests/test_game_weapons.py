"""Unit tests for weapons and shot resolution."""

import math

import pytest

from repro.game.gamemap import make_arena, make_longest_yard
from repro.game.weapons import (
    AVATAR_HIT_RADIUS,
    WEAPONS,
    WeaponSpec,
    hit_probability,
    resolve_shot,
)
from repro.game.vector import Vec3


class TestWeaponTable:
    def test_machinegun_is_spawn_weapon(self):
        assert "machinegun" in WEAPONS

    def test_expected_weapons_present(self):
        assert {"railgun", "rocket-launcher", "shotgun", "lightning-gun"} <= set(
            WEAPONS
        )

    def test_railgun_longest_range(self):
        assert WEAPONS["railgun"].effective_range == max(
            spec.effective_range for spec in WEAPONS.values()
        )

    def test_rocket_is_projectile(self):
        assert WEAPONS["rocket-launcher"].projectile_speed is not None
        assert WEAPONS["railgun"].projectile_speed is None

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            WeaponSpec("junk", damage=0, effective_range=1.0, refire_frames=1,
                       projectile_speed=None, spread=0.1)


class TestHitProbability:
    def test_perfect_aim_close_range_high(self):
        spec = WEAPONS["railgun"]
        assert hit_probability(spec, 0.0, 100.0) > 0.9

    def test_beyond_range_zero(self):
        spec = WEAPONS["shotgun"]
        assert hit_probability(spec, 0.0, spec.effective_range + 1) == 0.0

    def test_wild_aim_zero(self):
        spec = WEAPONS["railgun"]
        assert hit_probability(spec, 1.0, 100.0) == 0.0

    def test_probability_decreases_with_aim_error(self):
        spec = WEAPONS["machinegun"]
        p0 = hit_probability(spec, 0.0, 200.0)
        p1 = hit_probability(spec, spec.spread, 200.0)
        p2 = hit_probability(spec, 2 * spec.spread, 200.0)
        assert p0 > p1 > p2

    def test_probability_decreases_with_distance(self):
        spec = WEAPONS["machinegun"]
        assert hit_probability(spec, 0.0, 100.0) > hit_probability(spec, 0.0, 1000.0)

    def test_bounded_unit_interval(self):
        for spec in WEAPONS.values():
            for aim in (0.0, 0.01, 0.1):
                for dist in (10.0, 500.0, 5000.0):
                    p = hit_probability(spec, aim, dist)
                    assert 0.0 <= p <= 1.0


class TestResolveShot:
    def setup_method(self):
        self.arena = make_arena()
        self.spec = WEAPONS["railgun"]

    def test_point_blank_perfect_aim_hits(self):
        outcome = resolve_shot(
            self.arena, self.spec, Vec3(0, -500, 0), 0.0, Vec3(200, -500, 0),
            roll=0.0,
        )
        assert outcome.hit
        assert outcome.damage == self.spec.damage
        assert outcome.visible

    def test_bad_roll_misses(self):
        outcome = resolve_shot(
            self.arena, self.spec, Vec3(0, -500, 0), 0.0, Vec3(200, -500, 0),
            roll=0.999999,
        )
        assert not outcome.hit
        assert outcome.damage == 0

    def test_occluded_target_never_hit(self):
        yard = make_longest_yard()
        # Shooter and target on either side of the east pillar at eye level.
        outcome = resolve_shot(
            yard, self.spec, Vec3(100, 0, 0), 0.0, Vec3(400, 0, 0), roll=0.0
        )
        assert not outcome.visible
        assert not outcome.hit

    def test_aim_error_measured(self):
        outcome = resolve_shot(
            self.arena,
            self.spec,
            Vec3(0, -500, 0),
            math.pi / 2,  # aiming 90° off
            Vec3(500, -500, 0),
            roll=0.0,
        )
        assert outcome.aim_error > 1.0
        assert not outcome.hit

    def test_cylinder_radius_forgives_tiny_error(self):
        # At very close range the angular size of the avatar is large.
        distance = AVATAR_HIT_RADIUS * 2
        outcome = resolve_shot(
            self.arena,
            self.spec,
            Vec3(0, -500, 0),
            0.2,
            Vec3(distance, -500, 0),
            roll=0.0,
        )
        assert outcome.hit

    def test_projectile_travel_frames(self):
        rocket = WEAPONS["rocket-launcher"]
        outcome = resolve_shot(
            self.arena, rocket, Vec3(0, -500, 0), 0.0, Vec3(900, -500, 0),
            roll=0.0,
        )
        assert outcome.travel_frames >= 1

    def test_hitscan_zero_travel(self):
        outcome = resolve_shot(
            self.arena, self.spec, Vec3(0, -500, 0), 0.0, Vec3(900, -500, 0),
            roll=0.0,
        )
        assert outcome.travel_frames == 0

    def test_distance_reported(self):
        outcome = resolve_shot(
            self.arena, self.spec, Vec3(0, -500, 0), 0.0, Vec3(300, -500, 0),
            roll=0.5,
        )
        assert outcome.distance == pytest.approx(300.0)
