"""Tests for the deathmatch simulator and bot controllers."""

import pytest

from repro.game.bots import BotDecision, HumanlikeBot, WaypointBot
from repro.game.gamemap import make_longest_yard
from repro.game.items import ItemManager
from repro.game.simulator import (
    DeathmatchSimulator,
    SimulationConfig,
    generate_trace,
)
import random


class TestConfig:
    def test_too_few_players_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_players=1)

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_frames=0)

    def test_bad_npc_fraction_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(npc_fraction=1.5)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(num_players=6, num_frames=60, seed=9)
        b = generate_trace(num_players=6, num_frames=60, seed=9)
        assert a.num_frames == b.num_frames
        for frame in (0, 30, 59):
            for pid in a.player_ids():
                assert a.snapshot(frame, pid) == b.snapshot(frame, pid)
        assert a.shots == b.shots
        assert a.kills == b.kills

    def test_different_seed_different_trace(self):
        a = generate_trace(num_players=6, num_frames=60, seed=1)
        b = generate_trace(num_players=6, num_frames=60, seed=2)
        differs = any(
            a.snapshot(59, pid).position != b.snapshot(59, pid).position
            for pid in a.player_ids()
        )
        assert differs


class TestTraceContents:
    def test_frame_count(self, small_trace):
        assert small_trace.num_frames == 160

    def test_all_players_every_frame(self, small_trace):
        for frame_snapshots in small_trace.frames:
            assert sorted(frame_snapshots) == small_trace.player_ids()

    def test_game_has_combat(self, small_trace):
        assert len(small_trace.shots) > 0

    def test_positions_inside_map(self, small_trace, longest_yard):
        for frame_snapshots in small_trace.frames[::20]:
            for snap in frame_snapshots.values():
                assert longest_yard.in_bounds(snap.position)

    def test_kills_match_deaths(self, medium_trace):
        deaths = [e for e in medium_trace.events if e.kind == "death"]
        killer_deaths = [
            e for e in deaths if e.payload.get("killer_id") is not None
        ]
        assert len(medium_trace.kills) == len(killer_deaths)

    def test_snapshot_frames_stamped_correctly(self, small_trace):
        for frame in (0, 50, 100):
            for snap in small_trace.frames[frame].values():
                assert snap.frame == frame

    def test_respawn_after_death(self, medium_trace):
        if not medium_trace.kills:
            pytest.skip("no kills in this trace")
        kill = medium_trace.kills[0]
        victim = kill.victim_id
        respawn_frame = None
        for frame in range(kill.frame + 1, medium_trace.num_frames):
            if medium_trace.snapshot(frame, victim).alive:
                respawn_frame = frame
                break
        if respawn_frame is None:
            pytest.skip("victim never respawned before trace end")
        assert respawn_frame - kill.frame >= 30  # respawn delay ≈ 40 frames

    def test_pickup_events_recorded(self, medium_trace):
        pickups = [e for e in medium_trace.events if e.kind == "pickup"]
        assert pickups, "bots should collect items on the longest-yard map"

    def test_physics_respected_frame_to_frame(self, small_trace, longest_yard):
        from repro.game.physics import Physics

        physics = Physics(longest_yard)
        for pid in small_trace.player_ids()[:4]:
            for frame in range(1, small_trace.num_frames, 7):
                prev = small_trace.snapshot(frame - 1, pid)
                cur = small_trace.snapshot(frame, pid)
                if not prev.alive or not cur.alive:
                    continue
                assert physics.displacement_is_legal(
                    prev.position, cur.position, 1, tolerance=1.10
                ), f"player {pid} frame {frame}"


class TestNpcFraction:
    def test_npc_bots_instantiated(self):
        sim = DeathmatchSimulator(
            SimulationConfig(num_players=6, num_frames=10, npc_fraction=0.5)
        )
        npcs = [c for c in sim.controllers.values() if isinstance(c, WaypointBot)]
        humans = [c for c in sim.controllers.values() if isinstance(c, HumanlikeBot)]
        assert len(npcs) == 3
        assert len(humans) == 3


class TestBots:
    def setup_method(self):
        self.yard = make_longest_yard()
        self.items = ItemManager(self.yard)

    def snapshots(self, trace, frame=0):
        return trace.frames[frame]

    def test_humanlike_decision_shape(self, small_trace):
        bot = HumanlikeBot(0, self.yard, random.Random(1))
        snaps = self.snapshots(small_trace)
        decision = bot.decide(0, snaps[0], snaps, self.items)
        assert isinstance(decision, BotDecision)

    def test_low_health_bot_seeks_health(self, small_trace):
        from dataclasses import replace

        bot = HumanlikeBot(0, self.yard, random.Random(1))
        snaps = dict(self.snapshots(small_trace))
        wounded = replace(snaps[0], health=10)
        snaps[0] = wounded
        decision = bot.decide(0, wounded, snaps, self.items)
        health_item = self.items.nearest_available(wounded.position, "health")
        assert health_item is not None
        direction = decision.intent.wish_direction
        to_item = (health_item.spec.position - wounded.position).with_z(0).normalized()
        assert direction.dot(to_item) > 0.7  # roughly heading for health

    def test_waypoint_bot_has_loop(self):
        bot = WaypointBot(2, self.yard, random.Random(1))
        assert len(bot.waypoints) == 6

    def test_waypoint_bot_rejects_empty_map(self):
        from repro.game.gamemap import GameMap
        from repro.game.vector import Vec3

        bare = GameMap(
            name="bare",
            bounds_min=Vec3(-10, -10, -10),
            bounds_max=Vec3(10, 10, 10),
            respawn_points=[Vec3(0, 0, 0)],
        )
        # Anchors exist (respawn point), so construction succeeds.
        bot = WaypointBot(0, bare, random.Random(1))
        assert bot.waypoints
