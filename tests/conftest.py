"""Shared fixtures: small deterministic traces, maps and session runs.

Expensive artifacts (traces, full protocol runs) are session-scoped so the
suite stays fast while many test modules share them.
"""

from __future__ import annotations

import pytest

from repro.core import ReputationBoard, WatchmenConfig, WatchmenSession
from repro.game import GameTrace, generate_trace, make_arena, make_longest_yard


@pytest.fixture(scope="session")
def longest_yard():
    return make_longest_yard()


@pytest.fixture(scope="session")
def arena():
    return make_arena()


@pytest.fixture(scope="session")
def small_trace(longest_yard) -> GameTrace:
    """8 players, 160 frames — enough for several proxy epochs."""
    return generate_trace(
        num_players=8, num_frames=160, seed=42, game_map=longest_yard
    )


@pytest.fixture(scope="session")
def medium_trace(longest_yard) -> GameTrace:
    """12 players, 240 frames — used by the heavier integration tests."""
    return generate_trace(
        num_players=12, num_frames=240, seed=7, game_map=longest_yard
    )


@pytest.fixture(scope="session")
def honest_session_report(small_trace, longest_yard):
    """One full honest Watchmen run shared across tests."""
    session = WatchmenSession(small_trace, game_map=longest_yard)
    report = session.run()
    return session, report


@pytest.fixture()
def watchmen_config() -> WatchmenConfig:
    return WatchmenConfig()


@pytest.fixture()
def reputation_board() -> ReputationBoard:
    return ReputationBoard()
