"""Unit tests for the unreliable datagram transport."""

import pytest

from repro.net.bandwidth import UploadBudget
from repro.net.events import EventQueue
from repro.net.latency import uniform_lan
from repro.net.nat import NatProfile, NatType, Reachability
from repro.net.transport import DatagramNetwork, NetworkConfig


def make_network(size=4, loss=0.0, jitter=0.0, budget=None, reachability=None):
    queue = EventQueue()
    network = DatagramNetwork(
        queue,
        uniform_lan(size, one_way_ms=10.0),
        NetworkConfig(loss_rate=loss, jitter_ms=jitter, seed=1),
        budget=budget,
        reachability=reachability,
    )
    return queue, network


class TestDelivery:
    def test_message_delivered_with_latency(self):
        queue, network = make_network()
        inbox = []
        network.register(1, inbox.append)
        network.send(0, 1, "hello", 100)
        queue.run()
        assert len(inbox) == 1
        datagram = inbox[0]
        assert datagram.payload == "hello"
        assert datagram.delivered_at == pytest.approx(0.010)

    def test_unregistered_destination_dropped_silently(self):
        queue, network = make_network()
        assert network.send(0, 3, "x", 10)
        queue.run()
        assert network.delivered == 0

    def test_self_send_is_instant_and_lossless(self):
        queue, network = make_network(loss=0.99)
        inbox = []
        network.register(0, inbox.append)
        for _ in range(50):
            network.send(0, 0, "self", 10)
        queue.run()
        assert len(inbox) == 50

    def test_invalid_node_registration_rejected(self):
        _, network = make_network(size=3)
        with pytest.raises(ValueError):
            network.register(99, lambda d: None)

    def test_invalid_size_rejected(self):
        _, network = make_network()
        with pytest.raises(ValueError):
            network.send(0, 1, "x", 0)

    def test_unregister_stops_delivery(self):
        queue, network = make_network()
        inbox = []
        network.register(1, inbox.append)
        network.unregister(1)
        network.send(0, 1, "x", 10)
        queue.run()
        assert inbox == []


class TestLoss:
    def test_configured_loss_rate_observed(self):
        queue, network = make_network(loss=0.2)
        network.register(1, lambda d: None)
        for _ in range(3000):
            network.send(0, 1, "x", 10)
        queue.run()
        assert network.loss_observed == pytest.approx(0.2, abs=0.03)
        assert network.delivered == network.sent - network.lost

    def test_zero_loss(self):
        queue, network = make_network(loss=0.0)
        network.register(1, lambda d: None)
        for _ in range(100):
            network.send(0, 1, "x", 10)
        queue.run()
        assert network.lost == 0

    def test_bad_loss_rate_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(loss_rate=1.5)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(jitter_ms=-1.0)


class TestJitter:
    def test_jitter_spreads_delivery_times(self):
        queue, network = make_network(jitter=5.0)
        times = []
        network.register(1, lambda d: times.append(d.delivered_at))
        for _ in range(100):
            network.send(0, 1, "x", 10)
        queue.run()
        assert max(times) - min(times) > 0.001
        assert all(t >= 0.010 for t in times)


class TestBudget:
    def test_over_budget_messages_dropped(self):
        budget = UploadBudget(bytes_per_second=100)
        queue, network = make_network(budget=budget)
        network.register(1, lambda d: None)
        results = [network.send(0, 1, "x", 60) for _ in range(3)]
        assert results == [True, False, False]
        assert network.dropped_over_budget == 2

    def test_budget_tracks_per_node(self):
        budget = UploadBudget(bytes_per_second=100)
        queue, network = make_network(budget=budget)
        network.register(2, lambda d: None)
        assert network.send(0, 2, "x", 80)
        assert network.send(1, 2, "x", 80)  # different sender, own budget


class TestNatIntegration:
    def test_unreachable_pair_blocked(self):
        profiles = [
            NatProfile(0, NatType.SYMMETRIC),
            NatProfile(1, NatType.SYMMETRIC),
        ]
        reach = Reachability(profiles, seed=1)
        queue, network = make_network(size=2, reachability=reach)
        network.register(1, lambda d: None)
        assert not network.send(0, 1, "x", 10)
        assert network.blocked_by_nat == 1

    def test_open_pair_allowed(self):
        profiles = [NatProfile(0, NatType.PUBLIC), NatProfile(1, NatType.SYMMETRIC)]
        reach = Reachability(profiles, seed=1)
        queue, network = make_network(size=2, reachability=reach)
        network.register(1, lambda d: None)
        assert network.send(0, 1, "x", 10)


class TestMetering:
    def test_bandwidth_recorded(self):
        queue, network = make_network()
        network.register(1, lambda d: None)
        network.send(0, 1, "x", 500)
        queue.run()
        assert network.meter.usage(0).sent_bytes == 500
        assert network.meter.usage(1).received_bytes == 500
