"""Chaos harness invariants: determinism and fault-free bit-identity."""

from __future__ import annotations

import pytest

from repro.core import WatchmenSession
from repro.core.config import PROXY_PERIOD_FRAMES, WatchmenConfig
from repro.faults import FaultSchedule
from repro.faults.chaos import (
    build_schedule,
    default_scenarios,
    fault_frame_for,
    run_chaos,
)
from repro.game import generate_trace


def _report_fingerprint(report) -> tuple:
    """The observable outcome of a run, condensed for equality checks."""
    return (
        report.messages_sent,
        report.messages_lost,
        report.dropped_by_cause,
        report.mean_upload_kbps,
        report.max_upload_kbps,
        sorted(report.banned),
        report.view_error_stats(),
        dict(report.crashed),
    )


class TestFaultFreeBitIdentity:
    def test_empty_schedule_equals_no_injector(self):
        """Attaching an injector with nothing to inject changes nothing.

        The injector draws from its own RNG lane and the network only
        consults it when present — so the whole fault machinery must be
        invisible until a fault actually fires.
        """
        trace = generate_trace(num_players=8, num_frames=120, seed=11)
        plain = WatchmenSession(trace).run()
        empty = WatchmenSession(trace, faults=FaultSchedule()).run()
        assert _report_fingerprint(plain) == _report_fingerprint(empty)

    def test_gates_default_off(self):
        config = WatchmenConfig()
        assert config.proxy_failover is False
        assert config.reliable_delivery is False


class TestScheduleBuilding:
    def test_fault_frame_is_mid_epoch(self):
        frame = fault_frame_for(400)
        assert frame % PROXY_PERIOD_FRAMES == PROXY_PERIOD_FRAMES // 2
        assert PROXY_PERIOD_FRAMES <= frame < 400

    def test_short_runs_rejected(self):
        with pytest.raises(ValueError):
            fault_frame_for(2 * PROXY_PERIOD_FRAMES)

    def test_build_is_deterministic(self):
        roster = list(range(12))
        for scenario in default_scenarios():
            a, frame_a = build_schedule(scenario, roster, 240, 7)
            b, frame_b = build_schedule(scenario, roster, 240, 7)
            assert a == b
            assert frame_a == frame_b

    def test_crash_fraction_picks_distinct_victims(self):
        scenario = next(
            s for s in default_scenarios() if s.name == "crash_10pct"
        )
        schedule, _ = build_schedule(scenario, list(range(20)), 240, 7)
        victims = [c.node_id for c in schedule.crashes]
        assert len(victims) == 2  # 10% of 20
        assert len(set(victims)) == len(victims)

    def test_matrix_covers_the_issue_scenarios(self):
        names = {s.name for s in default_scenarios()}
        assert {
            "crash_10pct",
            "proxy_kill_midepoch",
            "partition_2s_heal",
            "burst_loss_5pct",
            "proxy_kill_no_failover",
        } <= names


@pytest.mark.chaos
class TestChaosMatrix:
    @pytest.fixture(scope="class")
    def results(self):
        return run_chaos(players=8, frames=160, seed=7)

    def test_two_runs_are_identical(self, results):
        again = run_chaos(players=8, frames=160, seed=7)
        assert results == again

    def test_no_false_evictions_anywhere(self, results):
        for result in results:
            assert result["metrics"]["false_evictions"] == 0, result["scenario"]

    def test_failover_reproxies_within_one_period(self, results):
        by_name = {r["scenario"]: r["metrics"] for r in results}
        for name in ("crash_10pct", "proxy_kill_midepoch"):
            reproxy = by_name[name]["frames_to_reproxy"]
            assert 0 < reproxy <= PROXY_PERIOD_FRAMES, name

    def test_no_failover_contrast_black_holes(self, results):
        """Without failover the killed proxy is never re-routed around."""
        by_name = {r["scenario"]: r["metrics"] for r in results}
        assert (
            by_name["proxy_kill_no_failover"]["frames_to_reproxy"]
            > PROXY_PERIOD_FRAMES
        )

    def test_cli_gate_passes_on_a_clean_matrix(self, results):
        from repro.cli import chaos_gate_failures

        assert chaos_gate_failures(results) == []

    def test_cli_gate_flags_violations(self):
        from repro.cli import chaos_gate_failures

        bad = [
            {
                "scenario": "synthetic",
                "params": {"failover": True},
                "metrics": {
                    "false_evictions": 1.0,
                    "frames_to_reproxy": PROXY_PERIOD_FRAMES + 1.0,
                },
            }
        ]
        failures = chaos_gate_failures(bad)
        assert len(failures) == 2
        assert any("falsely evicted" in f for f in failures)
        assert any("proxy period" in f for f in failures)
