"""The committed golden corpus must stay readable, intact, and replayable.

The fast checks (integrity + header/preset agreement) run in tier-1; the
full re-simulation of every tape is the CI replay gate's job (see
ci.yml's ``replay-gate``) and runs here under the ``slow`` marker so
``make fast`` stays quick while nightly still exercises it via pytest.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.replay import (
    GOLDEN_PRESETS,
    config_hash,
    read_header,
    read_tape,
    verify_tape,
)

TAPES_DIR = Path(__file__).parent / "tapes"
PRESETS = sorted(GOLDEN_PRESETS)


def test_corpus_is_complete():
    committed = {path.stem for path in TAPES_DIR.glob("*.tape")}
    assert committed == set(GOLDEN_PRESETS), (
        "tests/tapes/ and GOLDEN_PRESETS must stay in sync (make tapes)"
    )


@pytest.mark.parametrize("preset", PRESETS)
def test_tape_integrity(preset):
    tape = read_tape(TAPES_DIR / f"{preset}.tape")
    assert tape.num_frames == GOLDEN_PRESETS[preset].frames
    assert tape.num_messages > 0
    assert tape.scenario == GOLDEN_PRESETS[preset]


@pytest.mark.parametrize("preset", PRESETS)
def test_header_matches_preset(preset):
    header = read_header(TAPES_DIR / f"{preset}.tape")
    tape = read_tape(TAPES_DIR / f"{preset}.tape")
    assert header["config_hash"] == config_hash(
        GOLDEN_PRESETS[preset], tape.faults
    ), "committed tape was recorded under a different configuration"


def test_chaos_tape_embeds_fault_schedule():
    tape = read_tape(TAPES_DIR / "chaos.tape")
    assert tape.faults is not None and not tape.faults.is_empty()
    assert read_tape(TAPES_DIR / "normal.tape").faults is None


def test_cheater_tape_declares_cheats():
    tape = read_tape(TAPES_DIR / "cheater.tape")
    assert {spec.kind for spec in tape.scenario.cheats} == {
        "speed-hack", "fake-kill", "guidance-lie", "teleport",
    }


@pytest.mark.slow
@pytest.mark.parametrize("preset", PRESETS)
def test_corpus_replays_byte_identically(preset):
    result = verify_tape(read_tape(TAPES_DIR / f"{preset}.tape"))
    assert result.clean, (
        None if result.divergence is None else result.divergence.describe()
    )
