"""Unit tests for the NAT traversal model."""

import pytest

from repro.net.nat import NatProfile, NatType, Reachability, sample_profiles


def profiles(*types):
    return [NatProfile(i, t) for i, t in enumerate(types)]


class TestProfiles:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            NatProfile(0, "carrier-grade")

    def test_openly_reachable(self):
        assert NatProfile(0, NatType.PUBLIC).openly_reachable
        assert NatProfile(0, NatType.UPNP).openly_reachable
        assert not NatProfile(0, NatType.CONE).openly_reachable
        assert not NatProfile(0, NatType.SYMMETRIC).openly_reachable

    def test_sample_profiles_deterministic(self):
        a = sample_profiles(20, seed=3)
        b = sample_profiles(20, seed=3)
        assert [p.nat_type for p in a] == [p.nat_type for p in b]

    def test_sample_profiles_custom_weights(self):
        only_public = sample_profiles(10, weights={NatType.PUBLIC: 1.0})
        assert all(p.nat_type == NatType.PUBLIC for p in only_public)


class TestReachability:
    def test_self_reachable(self):
        reach = Reachability(profiles(NatType.SYMMETRIC))
        assert reach.can_reach(0, 0)

    def test_public_reaches_everyone(self):
        reach = Reachability(profiles(NatType.PUBLIC, NatType.SYMMETRIC))
        assert reach.can_reach(0, 1)
        assert reach.can_reach(1, 0)

    def test_upnp_counts_as_open(self):
        reach = Reachability(profiles(NatType.UPNP, NatType.SYMMETRIC))
        assert reach.can_reach(0, 1)

    def test_double_symmetric_never_punches(self):
        reach = Reachability(
            profiles(NatType.SYMMETRIC, NatType.SYMMETRIC), seed=1
        )
        assert not reach.can_reach(0, 1)
        assert reach.punch_failures == 1

    def test_cone_pair_usually_punches(self):
        success = 0
        for seed in range(50):
            reach = Reachability(
                profiles(NatType.CONE, NatType.CONE), seed=seed
            )
            if reach.can_reach(0, 1):
                success += 1
        assert success >= 40  # 95 % nominal

    def test_punch_outcome_cached(self):
        reach = Reachability(profiles(NatType.CONE, NatType.CONE), seed=2)
        first = reach.can_reach(0, 1)
        assert reach.can_reach(0, 1) == first
        assert reach.punch_attempts == 1

    def test_unknown_node_unreachable(self):
        reach = Reachability(profiles(NatType.PUBLIC))
        assert not reach.can_reach(0, 42)

    def test_connectivity_ratio_all_public(self):
        reach = Reachability(profiles(*[NatType.PUBLIC] * 5))
        assert reach.connectivity_ratio() == 1.0

    def test_connectivity_ratio_mixed(self):
        reach = Reachability(
            profiles(*([NatType.SYMMETRIC] * 4)), seed=3
        )
        assert reach.connectivity_ratio() == 0.0

    def test_connectivity_ratio_single_node(self):
        reach = Reachability(profiles(NatType.CONE))
        assert reach.connectivity_ratio() == 1.0

    def test_realistic_population_mostly_connected(self):
        reach = Reachability(sample_profiles(30, seed=9), seed=9)
        assert reach.connectivity_ratio() > 0.9
