"""Unit tests for the vector algebra."""

import math

import pytest

from repro.game.vector import Vec3, clamp


class TestClamp:
    def test_inside_range(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-3.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(7.0, 0.0, 1.0) == 1.0

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            clamp(0.0, 1.0, -1.0)


class TestArithmetic:
    def test_addition(self):
        assert Vec3(1, 2, 3) + Vec3(4, 5, 6) == Vec3(5, 7, 9)

    def test_subtraction(self):
        assert Vec3(4, 5, 6) - Vec3(1, 2, 3) == Vec3(3, 3, 3)

    def test_scalar_multiplication_both_sides(self):
        assert Vec3(1, 2, 3) * 2 == Vec3(2, 4, 6)
        assert 2 * Vec3(1, 2, 3) == Vec3(2, 4, 6)

    def test_division(self):
        assert Vec3(2, 4, 6) / 2 == Vec3(1, 2, 3)

    def test_negation(self):
        assert -Vec3(1, -2, 3) == Vec3(-1, 2, -3)

    def test_iteration_unpacks_components(self):
        x, y, z = Vec3(1, 2, 3)
        assert (x, y, z) == (1, 2, 3)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Vec3(1, 2, 3).x = 5  # type: ignore[misc]


class TestGeometry:
    def test_dot(self):
        assert Vec3(1, 2, 3).dot(Vec3(4, -5, 6)) == 4 - 10 + 18

    def test_cross_is_orthogonal(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 5, 6)
        c = a.cross(b)
        assert abs(c.dot(a)) < 1e-12
        assert abs(c.dot(b)) < 1e-12

    def test_cross_right_handed(self):
        assert Vec3(1, 0, 0).cross(Vec3(0, 1, 0)) == Vec3(0, 0, 1)

    def test_length(self):
        assert Vec3(3, 4, 0).length() == pytest.approx(5.0)

    def test_length_squared(self):
        assert Vec3(3, 4, 0).length_squared() == pytest.approx(25.0)

    def test_horizontal_length_ignores_z(self):
        assert Vec3(3, 4, 100).horizontal_length() == pytest.approx(5.0)

    def test_distance(self):
        assert Vec3(0, 0, 0).distance_to(Vec3(0, 0, 7)) == pytest.approx(7.0)

    def test_normalized_unit_length(self):
        n = Vec3(10, 0, 0).normalized()
        assert n == Vec3(1, 0, 0)

    def test_normalized_zero_vector(self):
        assert Vec3().normalized() == Vec3.zero()

    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec3(0, 0, 0), Vec3(2, 4, 6)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec3(1, 2, 3)

    def test_with_z(self):
        assert Vec3(1, 2, 3).with_z(9) == Vec3(1, 2, 9)

    def test_yaw_of_axes(self):
        assert Vec3(1, 0, 0).yaw() == pytest.approx(0.0)
        assert Vec3(0, 1, 0).yaw() == pytest.approx(math.pi / 2)

    def test_from_yaw_roundtrip(self):
        v = Vec3.from_yaw(1.1, 5.0)
        assert v.yaw() == pytest.approx(1.1)
        assert v.length() == pytest.approx(5.0)

    def test_angle_to_orthogonal(self):
        assert Vec3(1, 0, 0).angle_to(Vec3(0, 1, 0)) == pytest.approx(math.pi / 2)

    def test_angle_to_self_is_zero(self):
        assert Vec3(1, 2, 3).angle_to(Vec3(2, 4, 6)) == pytest.approx(0.0)

    def test_angle_to_degenerate_is_zero(self):
        assert Vec3(1, 0, 0).angle_to(Vec3.zero()) == 0.0


class TestSerialisation:
    def test_tuple_roundtrip(self):
        v = Vec3(1.5, -2.25, 3.0)
        assert Vec3.from_tuple(v.to_tuple()) == v

    def test_quantized_snaps_to_grid(self):
        v = Vec3(1.07, 2.11, -3.06).quantized(0.125)
        for component in v:
            assert abs(component / 0.125 - round(component / 0.125)) < 1e-9

    def test_quantized_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            Vec3(1, 2, 3).quantized(0.0)
