"""M801/M802/M803: handler message footprints, fixtures plus the real tree."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.lint.callgraph import ParsedModule, build_call_graph
from repro.lint.engine import LintConfig, run_lint
from repro.lint.footprint import run_footprint_rules

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]


def footprint_run(*modules: tuple[str, str]):
    parsed = [
        ParsedModule(
            module=name,
            path=f"src/{name.replace('.', '/')}.py",
            tree=ast.parse(source),
        )
        for name, source in modules
    ]
    sources = {
        p.path: source.splitlines()
        for p, (_, source) in zip(parsed, modules)
    }
    trees = {p.path: p.tree for p in parsed}
    return run_footprint_rules(build_call_graph(parsed), sources, trees)


CLEAN = (
    "class Ping: pass\n"
    "class Pong: pass\n"
    "\n"
    'MESSAGE_TYPES = {"Ping": Ping, "Pong": Pong}\n'
    "ACKABLE_TYPES = (Pong,)\n"
    "\n"
    "class Node:\n"
    "    def on_message(self, src, message):\n"
    "        self._on_ping(src, message)\n"
    "        self._on_pong(src, message)\n"
    "\n"
    "    def _on_ping(self, src, message: Ping) -> None:\n"
    "        reply = Pong()\n"
    "        self._transmit(reply)\n"
    "\n"
    "    def _on_pong(self, src, message: Pong) -> None:\n"
    "        self.recency.record(message)\n"
)


class TestExtraction:
    def test_clean_fixture_has_no_findings(self):
        violations, table = footprint_run(("repro.core.node", CLEAN))
        assert violations == []
        assert table.message_types == ("Ping", "Pong")
        assert table.ackable_types == ("Pong",)

    def test_footprint_fields(self):
        _, table = footprint_run(("repro.core.node", CLEAN))
        ping = table.handlers["repro.core.node.Node._on_ping"]
        assert ping.consumes == ("Ping",)
        assert ping.emits == ("Pong",)  # constructed reply
        assert ping.writes == {}
        pong = table.handlers["repro.core.node.Node._on_pong"]
        assert pong.consumes == ("Pong",)
        assert pong.emits == ()
        assert list(pong.writes) == ["recency"]

    def test_forwarding_a_typed_parameter_counts_as_emit(self):
        source = CLEAN.replace(
            "        reply = Pong()\n        self._transmit(reply)\n",
            "        self._transmit(message)\n",
        )
        _, table = footprint_run(("repro.core.node", source))
        ping = table.handlers["repro.core.node.Node._on_ping"]
        assert ping.emits == ("Ping",)

    def test_transmit_of_a_local_rebinding_is_not_an_emit(self):
        # Documented precision limit: only direct parameter forwards and
        # constructor calls count, so a rebound alias stays invisible.
        source = CLEAN.replace(
            "        reply = Pong()\n        self._transmit(reply)\n",
            "        alias = message\n        self._transmit(alias)\n",
        )
        _, table = footprint_run(("repro.core.node", source))
        ping = table.handlers["repro.core.node.Node._on_ping"]
        assert ping.emits == ()

    def test_writes_follow_exact_call_closure(self):
        source = CLEAN.replace(
            "        reply = Pong()\n        self._transmit(reply)\n",
            "        self._note(src)\n",
        ) + (
            "\n"
            "    def _note(self, src):\n"
            "        self.table.add_interest(src, 0)\n"
        )
        violations, table = footprint_run(("repro.core.node", source))
        ping = table.handlers["repro.core.node.Node._on_ping"]
        assert list(ping.writes) == ["table"]
        # the helper's write is attributed to the handler's def line
        assert ping.writes["table"] == ping.line
        assert violations == []

    def test_closure_stops_at_other_handlers(self):
        # _on_ping dispatches into _on_pong directly; the callee handler's
        # recency write must not leak into _on_ping's footprint.
        source = CLEAN.replace(
            "        reply = Pong()\n        self._transmit(reply)\n",
            "        self._on_pong(src, message)\n",
        )
        _, table = footprint_run(("repro.core.node", source))
        ping = table.handlers["repro.core.node.Node._on_ping"]
        assert "recency" not in ping.writes

    def test_by_type_collapses_writes_and_commutes(self):
        source = (
            "class Ping: pass\n"
            'MESSAGE_TYPES = {"Ping": Ping}\n'
            "ACKABLE_TYPES = ()\n"
            "class Node:\n"
            "    # repro-mc: commutes[recency]\n"
            "    def _on_a(self, src, message: Ping) -> None:\n"
            "        self.recency.record(message)\n"
            "    def _on_b(self, src, message: Ping) -> None:\n"
            "        self.recency.record(message)\n"
        )
        _, table = footprint_run(("repro.core.node", source))
        view = table.by_type()["Ping"]
        assert view["writes"] == ["recency"]
        # only one of the two writers is annotated: not commutative
        assert view["commutes"] == []

    def test_to_json_shape(self):
        _, table = footprint_run(("repro.core.node", CLEAN))
        data = table.to_json()
        assert data["version"] == 1
        assert data["message_types"] == ["Ping", "Pong"]
        assert set(data["by_type"]) == {"Ping", "Pong"}
        ping = data["handlers"]["repro.core.node.Node._on_ping"]
        assert ping["consumes"] == ["Ping"]
        assert ping["emits"] == ["Pong"]


class TestCommutesMarker:
    def test_marker_on_def_line_comment_above(self):
        source = (
            "class Ping: pass\n"
            'MESSAGE_TYPES = {"Ping": Ping}\n'
            "ACKABLE_TYPES = ()\n"
            "class Node:\n"
            "    # repro-mc: commutes[recency]\n"
            "    def _on_ping(self, src, message: Ping) -> None:\n"
            "        self.recency.record(message)\n"
        )
        _, table = footprint_run(("repro.core.node", source))
        ping = table.handlers["repro.core.node.Node._on_ping"]
        assert ping.commutes == ("recency",)

    def test_marker_in_multi_line_comment_block(self):
        source = (
            "class Ping: pass\n"
            'MESSAGE_TYPES = {"Ping": Ping}\n'
            "ACKABLE_TYPES = ()\n"
            "class Node:\n"
            "    # repro-mc: commutes[recency, known]\n"
            "    # reviewed: record() is last-writer-wins on the frame stamp\n"
            "    # so delivery order inside one flush is unobservable\n"
            "    def _on_ping(self, src, message: Ping) -> None:\n"
            "        self.recency.record(message)\n"
        )
        _, table = footprint_run(("repro.core.node", source))
        ping = table.handlers["repro.core.node.Node._on_ping"]
        assert ping.commutes == ("recency", "known")

    def test_marker_does_not_jump_over_code(self):
        source = (
            "class Ping: pass\n"
            'MESSAGE_TYPES = {"Ping": Ping}\n'
            "ACKABLE_TYPES = ()\n"
            "class Node:\n"
            "    # repro-mc: commutes[recency]\n"
            "    def _other(self):\n"
            "        pass\n"
            "    def _on_ping(self, src, message: Ping) -> None:\n"
            "        self.recency.record(message)\n"
        )
        _, table = footprint_run(("repro.core.node", source))
        ping = table.handlers["repro.core.node.Node._on_ping"]
        assert ping.commutes == ()


class TestM801:
    def test_registered_type_without_handler(self):
        source = CLEAN.replace(
            'MESSAGE_TYPES = {"Ping": Ping, "Pong": Pong}',
            'MESSAGE_TYPES = {"Ping": Ping, "Pong": Pong, "Ghost": Ping}',
        )
        violations, _ = footprint_run(("repro.core.node", source))
        assert [v.rule for v in violations] == ["M801"]
        assert violations[0].context == "Ghost"
        assert "Ghost" in violations[0].message

    def test_unreachable_handler_does_not_count(self):
        # _on_pong exists but on_message never dispatches to it: the
        # registered Pong type is effectively dropped.
        source = CLEAN.replace("        self._on_pong(src, message)\n", "")
        violations, _ = footprint_run(("repro.core.node", source))
        assert [v.rule for v in violations] == ["M801"]
        assert violations[0].context == "Pong"

    def test_without_receive_entry_every_handler_is_reachable(self):
        source = (
            "class Ping: pass\n"
            'MESSAGE_TYPES = {"Ping": Ping}\n'
            "ACKABLE_TYPES = ()\n"
            "class Node:\n"
            "    def _on_ping(self, src, message: Ping) -> None:\n"
            "        pass\n"
        )
        violations, _ = footprint_run(("repro.core.node", source))
        assert violations == []


M802_BASE = (
    "class Ping: pass\n"
    "class Evict: pass\n"
    "\n"
    'MESSAGE_TYPES = {"Ping": Ping, "Evict": Evict}\n'
    "ACKABLE_TYPES = ()\n"
    "\n"
    "class Node:\n"
    "    def on_message(self, src, message):\n"
    "        self._on_ping(src, message)\n"
    "        self._on_evict(src, message)\n"
    "\n"
    "    def _on_ping(self, src, message: Ping) -> None:\n"
    "        self._transmit(Evict())\n"
    "\n"
    "    def _on_evict(self, src, message: Evict) -> None:\n"
    "        self.membership.record_proposal(src, 1, 2, 3)\n"
)


class TestM802:
    def test_progress_bearing_emit_outside_ackable(self):
        violations, _ = footprint_run(("repro.core.node", M802_BASE))
        assert [v.rule for v in violations] == ["M802"]
        assert "`Evict`" in violations[0].message
        assert "ACKABLE_TYPES" in violations[0].message

    def test_ackable_emit_is_clean(self):
        source = M802_BASE.replace(
            "ACKABLE_TYPES = ()", "ACKABLE_TYPES = (Evict,)"
        )
        violations, _ = footprint_run(("repro.core.node", source))
        assert violations == []

    def test_non_progress_emit_is_clean(self):
        # the consumer writes recency, a self-healing store: no finding
        source = M802_BASE.replace(
            "        self.membership.record_proposal(src, 1, 2, 3)\n",
            "        self.recency.record(message)\n",
        )
        violations, _ = footprint_run(("repro.core.node", source))
        assert violations == []


M803_BASE = (
    "class Ping: pass\n"
    "class Pong: pass\n"
    "\n"
    'MESSAGE_TYPES = {"Ping": Ping, "Pong": Pong}\n'
    "ACKABLE_TYPES = ()\n"
    "\n"
    "class Node:\n"
    "    def on_message(self, src, message):\n"
    "        self._on_ping(src, message)\n"
    "        self._on_pong(src, message)\n"
    "\n"
    "    def _on_ping(self, src, message: Ping) -> None:\n"
    "        self.membership.record_proposal(src, 1, 2, 3)\n"
    "\n"
    "    def _on_pong(self, src, message: Pong) -> None:\n"
    "        self.membership.apply_removals(1)\n"
)


class TestM803:
    def test_unannotated_writer_pair(self):
        violations, _ = footprint_run(("repro.core.node", M803_BASE))
        assert [v.rule for v in violations] == ["M803"]
        message = violations[0].message
        assert "`_on_ping`" in message and "`_on_pong`" in message
        assert "membership" in message

    def test_both_annotated_is_clean(self):
        source = M803_BASE.replace(
            "    def _on_ping",
            "    # repro-mc: commutes[membership]\n    def _on_ping",
        ).replace(
            "    def _on_pong",
            "    # repro-mc: commutes[membership]\n    def _on_pong",
        )
        violations, _ = footprint_run(("repro.core.node", source))
        assert violations == []

    def test_one_annotation_is_not_enough(self):
        source = M803_BASE.replace(
            "    def _on_ping",
            "    # repro-mc: commutes[membership]\n    def _on_ping",
        )
        violations, _ = footprint_run(("repro.core.node", source))
        assert [v.rule for v in violations] == ["M803"]
        # only the unannotated handler is named as needing review
        assert "annotation on _on_pong " in violations[0].message


class TestRealTree:
    def test_repo_is_clean_and_exports_a_footprint_table(self):
        report = run_lint(LintConfig(root=REPO_ROOT))
        m_rules = [v for v in report.violations if v.rule.startswith("M8")]
        assert m_rules == []
        table = report.footprints
        assert table is not None
        proposal = next(
            fp
            for qname, fp in table.handlers.items()
            if qname.endswith("._on_removal_proposal")
        )
        assert proposal.consumes == ("RemovalProposal",)
        assert "membership" in proposal.writes
        assert "membership" in proposal.commutes
        # the defense burst responds with PositionUpdates, and the
        # forwards analysis must not claim it re-emits RemovalProposal
        assert "RemovalProposal" not in proposal.emits
