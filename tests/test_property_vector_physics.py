"""Property-based tests (hypothesis) for vector algebra and physics."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.game.gamemap import make_arena
from repro.game.physics import MoveIntent, Physics
from repro.game.vector import Vec3, clamp

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
small = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)
vectors = st.builds(Vec3, finite, finite, finite)
small_vectors = st.builds(Vec3, small, small, small)


class TestVectorProperties:
    @given(vectors, vectors)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(vectors, vectors, vectors)
    def test_addition_associative_approx(self, a, b, c):
        left = (a + b) + c
        right = a + (b + c)
        assert left.distance_to(right) <= 1e-6 * max(1.0, left.length())

    @given(vectors)
    def test_additive_identity(self, v):
        assert v + Vec3.zero() == v

    @given(vectors)
    def test_negation_inverse(self, v):
        assert v + (-v) == Vec3.zero()

    @given(vectors, st.floats(min_value=-100, max_value=100,
                              allow_nan=False, allow_infinity=False))
    def test_scalar_distributes(self, v, k):
        scaled = v * k
        assert scaled.x == v.x * k
        assert scaled.y == v.y * k

    @given(small_vectors, small_vectors)
    def test_triangle_inequality(self, a, b):
        assert (a + b).length() <= a.length() + b.length() + 1e-6

    @given(small_vectors, small_vectors)
    def test_cauchy_schwarz(self, a, b):
        assert abs(a.dot(b)) <= a.length() * b.length() + 1e-6

    @given(small_vectors)
    def test_normalized_is_unit_or_zero(self, v):
        n = v.normalized()
        assert n == Vec3.zero() or abs(n.length() - 1.0) < 1e-9

    @given(small_vectors, small_vectors, st.floats(min_value=0, max_value=1))
    def test_lerp_stays_between(self, a, b, t):
        point = a.lerp(b, t)
        assert point.distance_to(a) + point.distance_to(b) <= (
            a.distance_to(b) + 1e-6
        )

    @given(small_vectors, small_vectors)
    def test_distance_symmetric(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)

    @given(st.floats(min_value=-math.pi, max_value=math.pi),
           st.floats(min_value=0.1, max_value=100))
    def test_from_yaw_roundtrip(self, yaw, length):
        v = Vec3.from_yaw(yaw, length)
        assert abs(v.length() - length) < 1e-9
        assert abs(((v.yaw() - yaw + math.pi) % (2 * math.pi)) - math.pi) < 1e-9

    @given(finite, finite, finite)
    def test_clamp_in_range(self, value, a, b):
        low, high = min(a, b), max(a, b)
        assert low <= clamp(value, low, high) <= high


class TestPhysicsProperties:
    def setup_method(self):
        self.physics = Physics(make_arena())

    @given(
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=0, max_value=1000),
        st.booleans(),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    @settings(max_examples=50, deadline=None)
    def test_step_never_violates_envelope(self, dx, dy, speed, jump, yaw):
        """Whatever the input, one honest step obeys the legality check."""
        intent = MoveIntent(Vec3(dx, dy, 0), speed, jump, yaw)
        start = Vec3(100.0, -300.0, 0.0)
        result = self.physics.step(start, Vec3(), 0.0, intent)
        assert self.physics.displacement_is_legal(
            start, result.position, 1, tolerance=1.10
        )

    @given(st.integers(min_value=0, max_value=100))
    def test_max_travel_monotone(self, frames):
        assert self.physics.max_travel(frames) <= self.physics.max_travel(
            frames + 1
        )

    @given(small_vectors, small_vectors, st.integers(min_value=1, max_value=50))
    @settings(max_examples=50)
    def test_excess_zero_iff_within_envelope(self, a, b, frames):
        excess = self.physics.displacement_excess(a, b, frames)
        assert excess >= 0.0
        offset = b - a
        horizontal_ok = (
            offset.horizontal_length()
            <= self.physics.max_horizontal_travel(frames) + 1e-9
        )
        vertical_ok = (
            -self.physics.max_descent(frames) - 1e-9
            <= offset.z
            <= self.physics.max_ascent(frames) + 1e-9
        )
        if horizontal_ok and vertical_ok:
            assert excess == 0.0
        else:
            assert excess > 0.0
