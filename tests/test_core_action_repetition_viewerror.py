"""Tests for action-repetition replay verification and the view-error metric."""

import pytest

from repro.core import WatchmenConfig, WatchmenSession
from repro.core.action_repetition import ActionRepetitionVerifier
from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import make_arena
from repro.game.physics import MoveIntent, Physics
from repro.game.vector import Vec3
from repro.net.latency import uniform_lan


#: Full-session integration tests: deselect with `-m "not slow"`.
pytestmark = pytest.mark.slow


def snap(player_id=1, frame=0, position=Vec3(0, -500, 0), velocity=Vec3(),
         yaw=0.0, alive=True):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=position,
        velocity=velocity,
        yaw=yaw,
        health=100,
        armor=0,
        weapon="machinegun",
        ammo=9,
        alive=alive,
    )


class TestActionRepetitionVerifier:
    @pytest.fixture()
    def physics(self, arena):
        return Physics(arena)

    @pytest.fixture()
    def verifier(self, physics):
        return ActionRepetitionVerifier(physics)

    def test_needs_enough_directions(self, physics):
        with pytest.raises(ValueError):
            ActionRepetitionVerifier(physics, directions=2)

    def test_real_move_is_reachable(self, physics, verifier):
        start = snap(frame=0)
        result = physics.step(
            start.position, start.velocity, start.yaw,
            MoveIntent(Vec3(1, 0, 0), 320.0, False, 0.0),
        )
        end = snap(frame=1, position=result.position, velocity=result.velocity)
        gap = verifier.reachability_gap(start, end)
        assert gap < 1.0

    def test_honest_stream_rates_normal(self, physics, verifier):
        position, velocity, yaw = Vec3(0, -500, 0), Vec3(), 0.0
        intent = MoveIntent(Vec3(1, 1, 0).normalized(), 280.0, False, 0.5)
        verifier.observe(0, snap(frame=0, position=position), 1.0)
        for frame in range(1, 15):
            result = physics.step(position, velocity, yaw, intent)
            position, velocity, yaw = result.position, result.velocity, result.yaw
            rating = verifier.observe(
                0,
                snap(frame=frame, position=position, velocity=velocity, yaw=yaw),
                1.0,
            )
            assert rating is not None
            assert rating.rating == 1.0, f"frame {frame}: {rating.detail}"

    def test_subtle_speed_excess_detected(self, verifier):
        """A 1.25× multiplier slips past the envelope but not the replay."""
        verifier.observe(0, snap(frame=0, velocity=Vec3(320, 0, 0)), 1.0)
        cheated = snap(
            frame=1,
            position=Vec3(320 * 0.05 * 1.25, -500, 0),
            velocity=Vec3(320, 0, 0),
        )
        rating = verifier.observe(0, cheated, 1.0)
        assert rating is not None
        assert rating.rating > 1.0

    def test_blatant_teleport_maximal(self, verifier):
        verifier.observe(0, snap(frame=0), 1.0)
        rating = verifier.observe(
            0, snap(frame=1, position=Vec3(500, -500, 0)), 1.0
        )
        assert rating.rating == 10.0

    def test_non_consecutive_frames_abstain(self, verifier):
        verifier.observe(0, snap(frame=0), 1.0)
        assert verifier.observe(0, snap(frame=5), 1.0) is None

    def test_death_transition_abstains(self, verifier):
        verifier.observe(0, snap(frame=0, alive=False), 1.0)
        assert verifier.observe(0, snap(frame=1), 1.0) is None

    def test_replay_cost_counted(self, verifier):
        verifier.observe(0, snap(frame=0), 1.0)
        verifier.observe(0, snap(frame=1, position=Vec3(10, -500, 0)), 1.0)
        assert verifier.replays_run > 10  # visibly costlier than sanity checks

    def test_forget(self, verifier):
        verifier.observe(0, snap(frame=0), 1.0)
        verifier.forget(1)
        assert verifier.observe(0, snap(frame=1), 1.0) is None


class TestActionRepetitionIntegration:
    def test_catches_sub_envelope_cheat_in_session(
        self, small_trace, longest_yard
    ):
        from repro.analysis.detection import wire_cheat
        from repro.cheats import SpeedHack

        def run(action_repetition):
            config = WatchmenConfig(action_repetition=action_repetition)
            cheat = SpeedHack(factor=1.2, cheat_rate=0.3, seed=5)
            wire_cheat(cheat, 0, small_trace, longest_yard, config)
            report = WatchmenSession(
                small_trace,
                game_map=longest_yard,
                config=config,
                behaviours={0: cheat},
                latency=uniform_lan(8),
            ).run()
            hits = [
                r
                for r in report.ratings
                if r.subject_id == 0 and r.check == "position" and r.rating >= 5
            ]
            honest_hits = [
                r
                for r in report.ratings
                if r.subject_id != 0 and r.check == "position" and r.rating >= 5
            ]
            return len(hits), len(honest_hits)

        sanity_hits, sanity_fp = run(action_repetition=False)
        replay_hits, replay_fp = run(action_repetition=True)
        assert replay_hits > sanity_hits  # strictly more accurate
        assert replay_fp == 0  # and still clean on honest players


class TestViewError:
    @pytest.fixture(scope="class")
    def report(self, small_trace, longest_yard):
        return WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(8),
            view_error_stride=10,
        ).run()

    def test_samples_collected(self, report):
        assert len(report.view_errors) > 100

    def test_stats_shape(self, report):
        stats = report.view_error_stats()
        assert set(stats) == {"mean", "median", "p95"}
        assert 0 <= stats["median"] <= stats["p95"]

    def test_median_view_error_small(self, report):
        """IS neighbours dominate the samples: rendering is near-exact."""
        assert report.view_error_stats()["median"] < 64.0

    def test_disabled_by_default(self, honest_session_report):
        _, report = honest_session_report
        assert report.view_errors == []
        assert report.view_error_stats() == {}

    def test_slow_network_inflates_view_error(self, small_trace, longest_yard):
        fast = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(8, one_way_ms=0.5),
            view_error_stride=20,
        ).run()
        slow = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(8, one_way_ms=120.0),
            view_error_stride=20,
        ).run()
        assert (
            slow.view_error_stats()["median"]
            >= fast.view_error_stats()["median"]
        )
