"""The declarative fault vocabulary and its frame-driven injector."""

from __future__ import annotations

import pytest

from repro.faults import (
    CrashFault,
    CrashProxyFault,
    DuplicateFault,
    FaultInjector,
    FaultSchedule,
    LatencySpikeFault,
    PartitionFault,
)


class TestScheduleValidation:
    def test_empty_schedule(self):
        schedule = FaultSchedule()
        assert schedule.is_empty()

    def test_any_fault_makes_it_non_empty(self):
        schedule = FaultSchedule(crashes=(CrashFault(node_id=1, frame=10),))
        assert not schedule.is_empty()

    def test_double_crash_of_one_node_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule(
                crashes=(
                    CrashFault(node_id=1, frame=10),
                    CrashFault(node_id=1, frame=20),
                )
            )

    def test_negative_crash_frame_rejected(self):
        with pytest.raises(ValueError):
            CrashFault(node_id=1, frame=-1)

    def test_partition_groups_must_be_disjoint(self):
        with pytest.raises(ValueError):
            PartitionFault(
                group_a=frozenset({1, 2}),
                group_b=frozenset({2, 3}),
                start_frame=0,
                end_frame=10,
            )

    def test_partition_window_must_be_non_empty(self):
        with pytest.raises(ValueError):
            PartitionFault(
                group_a=frozenset({1}),
                group_b=frozenset({2}),
                start_frame=10,
                end_frame=10,
            )

    def test_duplicate_rate_bounds(self):
        with pytest.raises(ValueError):
            DuplicateFault(rate=1.5, start_frame=0, end_frame=10)

    def test_schedule_is_pure_data(self):
        a = FaultSchedule(crashes=(CrashFault(node_id=1, frame=10),), seed=3)
        b = FaultSchedule(crashes=(CrashFault(node_id=1, frame=10),), seed=3)
        assert a == b


class TestPartitionSemantics:
    def test_severs_both_directions(self):
        fault = PartitionFault(
            group_a=frozenset({1}),
            group_b=frozenset({2}),
            start_frame=0,
            end_frame=10,
        )
        assert fault.severs(1, 2)
        assert fault.severs(2, 1)

    def test_intra_group_traffic_unaffected(self):
        fault = PartitionFault(
            group_a=frozenset({1, 3}),
            group_b=frozenset({2}),
            start_frame=0,
            end_frame=10,
        )
        assert not fault.severs(1, 3)
        assert not fault.severs(2, 2)


class TestLatencySpike:
    def test_symmetric_affects_both_directions(self):
        spike = LatencySpikeFault(
            src=1, dst=2, start_frame=0, end_frame=10, extra_ms=50.0
        )
        assert spike.affects(1, 2)
        assert spike.affects(2, 1)

    def test_asymmetric_affects_one_direction(self):
        spike = LatencySpikeFault(
            src=1, dst=2, start_frame=0, end_frame=10, extra_ms=50.0,
            symmetric=False,
        )
        assert spike.affects(1, 2)
        assert not spike.affects(2, 1)


class TestInjector:
    def test_crashes_fire_once_at_their_frame(self):
        schedule = FaultSchedule(
            crashes=(
                CrashFault(node_id=3, frame=10),
                CrashFault(node_id=5, frame=10),
            )
        )
        injector = FaultInjector(schedule)
        assert injector.begin_frame(9) == []
        assert injector.begin_frame(10) == [3, 5]
        assert injector.begin_frame(10) == []  # already down
        assert injector.crashed == {3: 10, 5: 10}

    def test_partition_drop_cause_respects_window(self):
        schedule = FaultSchedule(
            partitions=(
                PartitionFault(
                    group_a=frozenset({1}),
                    group_b=frozenset({2}),
                    start_frame=10,
                    end_frame=20,
                ),
            )
        )
        injector = FaultInjector(schedule)
        injector.begin_frame(9)
        assert injector.drop_cause(1, 2) is None
        injector.begin_frame(10)
        assert injector.drop_cause(1, 2) == "partition"
        assert injector.drop_cause(1, 1) is None
        injector.begin_frame(20)  # healed: window is half-open
        assert injector.drop_cause(1, 2) is None

    def test_latency_spikes_sum_per_link(self):
        schedule = FaultSchedule(
            latency_spikes=(
                LatencySpikeFault(
                    src=1, dst=2, start_frame=0, end_frame=10, extra_ms=50.0
                ),
                LatencySpikeFault(
                    src=1, dst=2, start_frame=0, end_frame=10, extra_ms=25.0
                ),
            )
        )
        injector = FaultInjector(schedule)
        injector.begin_frame(5)
        assert injector.extra_delay_seconds(1, 2) == pytest.approx(0.075)
        assert injector.extra_delay_seconds(1, 3) == 0.0

    def test_duplication_draws_rng_only_inside_window(self):
        schedule = FaultSchedule(
            duplications=(
                DuplicateFault(rate=1.0, start_frame=10, end_frame=20),
            ),
            seed=99,
        )
        injector = FaultInjector(schedule)
        injector.begin_frame(5)
        state_before = injector.rng.getstate()
        assert injector.duplicate_offset_seconds() is None
        assert injector.rng.getstate() == state_before  # zero draws outside
        injector.begin_frame(10)
        assert injector.duplicate_offset_seconds() == pytest.approx(0.010)

    def test_proxy_crash_resolution_uses_the_verifiable_schedule(self):
        from repro.core.config import WatchmenConfig
        from repro.core.proxy import ProxySchedule

        config = WatchmenConfig()
        roster = list(range(6))
        proxy_schedule = ProxySchedule(roster=roster)
        fault = CrashProxyFault(player_id=2, frame=50)
        injector = FaultInjector(FaultSchedule(proxy_crashes=(fault,)))
        injector.resolve(proxy_schedule, config)
        epoch = config.epoch_of_frame(50)
        victim = proxy_schedule.proxy_of(2, epoch)
        assert injector.begin_frame(50) == [victim]
