"""Unit tests for dead reckoning and the trajectory-deviation metric."""

import pytest

from repro.game.avatar import AvatarSnapshot
from repro.game.deadreckoning import (
    GuidancePrediction,
    predict_linear,
    simulate_guidance,
    trajectory_deviation_area,
)
from repro.game.vector import Vec3


def snap(x=0.0, vx=0.0, frame=0):
    return AvatarSnapshot(
        player_id=1,
        frame=frame,
        position=Vec3(x, 0, 0),
        velocity=Vec3(vx, 0, 0),
        yaw=0.0,
        health=100,
        armor=0,
        weapon="machinegun",
        ammo=10,
        alive=True,
    )


class TestPrediction:
    def test_predict_linear_uses_current_velocity(self):
        prediction = predict_linear(snap(x=10.0, vx=100.0, frame=5))
        assert prediction.origin == Vec3(10, 0, 0)
        assert prediction.velocity == Vec3(100, 0, 0)
        assert prediction.frame == 5

    def test_predict_linear_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            predict_linear(snap(), horizon_frames=0)

    def test_position_at_start_frame(self):
        prediction = predict_linear(snap(x=10.0, vx=100.0, frame=5))
        assert prediction.position_at(5) == Vec3(10, 0, 0)

    def test_position_extrapolates(self):
        prediction = predict_linear(snap(x=0.0, vx=100.0, frame=0))
        # 10 frames at 50 ms = 0.5 s at 100 u/s = 50 u.
        assert prediction.position_at(10).x == pytest.approx(50.0)

    def test_position_clamped_at_horizon(self):
        prediction = predict_linear(snap(vx=100.0), horizon_frames=10)
        at_horizon = prediction.position_at(10)
        past_horizon = prediction.position_at(50)
        assert at_horizon == past_horizon

    def test_position_before_prediction_is_origin(self):
        prediction = predict_linear(snap(x=7.0, vx=100.0, frame=10))
        assert prediction.position_at(3) == Vec3(7, 0, 0)


class TestSimulateGuidance:
    def test_per_frame_samples(self):
        prediction = predict_linear(snap(vx=100.0))
        track = simulate_guidance(prediction, 0, 10)
        assert len(track) == 11
        assert track[0] == Vec3(0, 0, 0)

    def test_bad_range_rejected(self):
        prediction = predict_linear(snap())
        with pytest.raises(ValueError):
            simulate_guidance(prediction, 10, 5)


class TestDeviationArea:
    def test_identical_trajectories_zero(self):
        track = [Vec3(i, 0, 0) for i in range(10)]
        assert trajectory_deviation_area(track, list(track)) == 0.0

    def test_constant_offset(self):
        a = [Vec3(i, 0, 0) for i in range(11)]
        b = [Vec3(i, 10, 0) for i in range(11)]
        # 10 u of gap over 10 frames of 50 ms = 10 * 0.5 = 5 u·s.
        assert trajectory_deviation_area(a, b) == pytest.approx(5.0)

    def test_growing_gap_trapezoid(self):
        a = [Vec3(0, 0, 0), Vec3(0, 0, 0)]
        b = [Vec3(0, 0, 0), Vec3(0, 10, 0)]
        assert trajectory_deviation_area(a, b) == pytest.approx(0.25)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            trajectory_deviation_area([Vec3()], [Vec3(), Vec3()])

    def test_single_point_zero(self):
        assert trajectory_deviation_area([Vec3()], [Vec3(5, 0, 0)]) == 0.0

    def test_symmetry(self):
        a = [Vec3(i, 0, 0) for i in range(8)]
        b = [Vec3(i, i * 2.0, 0) for i in range(8)]
        assert trajectory_deviation_area(a, b) == pytest.approx(
            trajectory_deviation_area(b, a)
        )
