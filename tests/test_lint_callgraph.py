"""callgraph.py: qualified names, resolution tiers, and traversals."""

from __future__ import annotations

import ast

import pytest

from repro.lint.callgraph import (
    ParsedModule,
    bind_arguments,
    build_call_graph,
    module_name_for,
)

pytestmark = pytest.mark.lint


def graph_of(*modules: tuple[str, str]):
    return build_call_graph(
        [
            ParsedModule(
                module=name,
                path=f"src/{name.replace('.', '/')}.py",
                tree=ast.parse(source),
            )
            for name, source in modules
        ]
    )


class TestModuleNames:
    def test_plain_module(self):
        assert module_name_for("src/repro/core/node.py") == "repro.core.node"

    def test_package_init_maps_to_package(self):
        assert module_name_for("src/repro/game/__init__.py") == "repro.game"

    def test_outside_src_is_none(self):
        assert module_name_for("tests/test_foo.py") is None


class TestCollection:
    def test_functions_and_methods_get_qualified_names(self):
        graph = graph_of(
            (
                "repro.demo",
                "def helper():\n    pass\n"
                "class Node:\n"
                "    def run(self):\n        pass\n",
            )
        )
        assert "repro.demo.helper" in graph.functions
        assert "repro.demo.Node.run" in graph.functions
        info = graph.functions["repro.demo.Node.run"]
        assert info.class_name == "Node"
        assert info.name == "run"


class TestResolution:
    def test_local_call_is_exact(self):
        graph = graph_of(
            ("repro.demo", "def a():\n    b()\ndef b():\n    pass\n")
        )
        assert graph.callees("repro.demo.a") == {"repro.demo.b"}
        assert graph.exact_callees("repro.demo.a") == {"repro.demo.b"}

    def test_imported_function_resolves_across_modules(self):
        graph = graph_of(
            ("repro.util", "def shared():\n    pass\n"),
            (
                "repro.demo",
                "from repro.util import shared\ndef a():\n    shared()\n",
            ),
        )
        assert "repro.util.shared" in graph.exact_callees("repro.demo.a")

    def test_self_method_resolves_to_enclosing_class(self):
        graph = graph_of(
            (
                "repro.demo",
                "class Node:\n"
                "    def outer(self):\n        self.inner()\n"
                "    def inner(self):\n        pass\n",
            )
        )
        assert graph.exact_callees("repro.demo.Node.outer") == {
            "repro.demo.Node.inner"
        }

    def test_unknown_receiver_falls_back_by_name(self):
        graph = graph_of(
            (
                "repro.table",
                "class Table:\n"
                "    def lookup(self):\n        pass\n",
            ),
            ("repro.demo", "def a(t):\n    t.lookup()\n"),
        )
        # by-name guess appears in callees() but never in exact_callees()
        assert "repro.table.Table.lookup" in graph.callees("repro.demo.a")
        assert "repro.table.Table.lookup" not in graph.exact_callees(
            "repro.demo.a"
        )

    def test_callers_is_the_reverse_of_callees(self):
        graph = graph_of(
            ("repro.demo", "def a():\n    b()\ndef b():\n    pass\n")
        )
        assert graph.callers("repro.demo.b") == {"repro.demo.a"}


class TestTraversals:
    SOURCE = (
        "def root():\n    mid()\n"
        "def mid():\n    leaf()\n"
        "def leaf():\n    pass\n"
        "def lonely():\n    pass\n"
    )

    def test_roots_are_uncalled_functions(self):
        graph = graph_of(("repro.demo", self.SOURCE))
        assert graph.roots() == {"repro.demo.root", "repro.demo.lonely"}

    def test_transitive_reachability(self):
        graph = graph_of(("repro.demo", self.SOURCE))
        assert graph.transitively_reaches(
            "repro.demo.root", frozenset({"repro.demo.leaf"})
        )
        assert not graph.transitively_reaches(
            "repro.demo.lonely", frozenset({"repro.demo.leaf"})
        )

    def test_reachable_avoiding_blocks_paths(self):
        graph = graph_of(("repro.demo", self.SOURCE))
        reachable = graph.reachable_avoiding(
            graph.roots(), blocked=frozenset({"repro.demo.mid"})
        )
        # leaf is only reachable through mid -> dominated by the block
        assert "repro.demo.leaf" not in reachable
        assert "repro.demo.root" in reachable


class TestRealTree:
    def test_real_node_transmit_chain(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        modules = []
        for file in sorted((root / "src" / "repro").rglob("*.py")):
            rel = file.relative_to(root).as_posix()
            name = module_name_for(rel)
            if name is None:
                continue
            modules.append(
                ParsedModule(
                    module=name, path=rel, tree=ast.parse(file.read_text())
                )
            )
        graph = build_call_graph(modules)
        transmit = "repro.core.node.WatchmenNode._transmit"
        unfiltered = "repro.core.node.WatchmenNode._transmit_unfiltered"
        assert transmit in graph.functions
        assert unfiltered in graph.exact_callees(transmit)


class TestCallSites:
    def test_sites_keep_the_ast_node_and_resolution_split(self):
        graph = graph_of(
            (
                "repro.demo",
                "def helper(x):\n    return x\n"
                "def run():\n    helper(1)\n",
            )
        )
        sites = graph.call_sites("repro.demo.run")
        assert len(sites) == 1
        site = sites[0]
        assert site.caller == "repro.demo.run"
        assert site.line == 4
        assert isinstance(site.call, ast.Call)
        assert site.exact == frozenset({"repro.demo.helper"})
        assert site.by_name == frozenset()

    def test_unknown_receiver_lands_on_the_by_name_tier(self):
        graph = graph_of(
            (
                "repro.demo",
                "class Signer:\n"
                "    def verify(self, data):\n        return True\n"
                "class Node:\n"
                "    def check(self, data):\n"
                "        return self.signer.verify(data)\n",
            )
        )
        (site,) = graph.call_sites("repro.demo.Node.check")
        assert site.exact == frozenset()
        assert site.by_name == frozenset({"repro.demo.Signer.verify"})


class TestReceiverTypes:
    SOURCE = (
        "class Signer:\n"
        "    def verify(self, data):\n        return True\n"
        "class Node:\n"
        "    def __init__(self, signer: Signer):\n"
        "        self.signer = signer\n"
        "    def check(self, data):\n"
        "        return self.signer.verify(data)\n"
    )

    def test_annotated_init_attribute_resolves_exact(self):
        graph = graph_of(("repro.demo", self.SOURCE))
        (site,) = graph.call_sites("repro.demo.Node.check")
        assert site.exact == frozenset({"repro.demo.Signer.verify"})
        assert site.by_name == frozenset()

    def test_direct_construction_types_the_attribute(self):
        graph = graph_of(
            (
                "repro.demo",
                "class Signer:\n"
                "    def verify(self, data):\n        return True\n"
                "class Node:\n"
                "    def __init__(self):\n"
                "        self.signer = Signer()\n"
                "    def check(self, data):\n"
                "        return self.signer.verify(data)\n",
            )
        )
        (site,) = graph.call_sites("repro.demo.Node.check")
        assert site.exact == frozenset({"repro.demo.Signer.verify"})


class TestClassesIn:
    def test_lists_top_level_classes(self):
        graph = graph_of(
            (
                "repro.core.messages",
                "class StateUpdate:\n    pass\n"
                "class PositionUpdate:\n    pass\n"
                "def helper():\n    pass\n",
            )
        )
        assert graph.classes_in("repro.core.messages") == frozenset(
            {"StateUpdate", "PositionUpdate"}
        )
        assert graph.classes_in("repro.unknown") == frozenset()


class TestBindArguments:
    def test_positional_and_keyword_binding(self):
        graph = graph_of(
            (
                "repro.demo",
                "def callee(a, b, c=None):\n    pass\n"
                "def caller():\n    callee(1, c=2, b=3)\n",
            )
        )
        callee = graph.functions["repro.demo.callee"]
        (site,) = graph.call_sites("repro.demo.caller")
        bound = bind_arguments(callee, site.call)
        assert set(bound) == {"a", "b", "c"}
        assert ast.literal_eval(bound["a"]) == 1
        assert ast.literal_eval(bound["b"]) == 3
        assert ast.literal_eval(bound["c"]) == 2

    def test_self_is_skipped_for_methods(self):
        graph = graph_of(
            (
                "repro.demo",
                "class Node:\n"
                "    def callee(self, payload):\n        pass\n"
                "    def caller(self):\n        self.callee(41)\n",
            )
        )
        callee = graph.functions["repro.demo.Node.callee"]
        (site,) = graph.call_sites("repro.demo.Node.caller")
        bound = bind_arguments(callee, site.call)
        assert set(bound) == {"payload"}
        assert ast.literal_eval(bound["payload"]) == 41

    def test_binding_stops_at_starred_arguments(self):
        graph = graph_of(
            (
                "repro.demo",
                "def callee(a, b):\n    pass\n"
                "def caller(rest):\n    callee(1, *rest)\n",
            )
        )
        callee = graph.functions["repro.demo.callee"]
        (site,) = graph.call_sites("repro.demo.caller")
        bound = bind_arguments(callee, site.call)
        assert set(bound) == {"a"}

    def test_double_star_kwargs_is_ignored_not_bound(self):
        # `**extra` at the call site has keyword.arg None: nothing can be
        # said statically about which parameters it fills, so binding
        # neither crashes nor invents entries — explicit arguments around
        # it still bind.
        graph = graph_of(
            (
                "repro.demo",
                "def callee(a, b, c):\n    pass\n"
                "def caller(extra):\n    callee(1, **extra)\n",
            )
        )
        callee = graph.functions["repro.demo.callee"]
        (site,) = graph.call_sites("repro.demo.caller")
        bound = bind_arguments(callee, site.call)
        assert set(bound) == {"a"}
        assert ast.literal_eval(bound["a"]) == 1

    def test_keyword_only_parameters_bind_by_name(self):
        graph = graph_of(
            (
                "repro.demo",
                "def callee(a, *, flag, depth=0):\n    pass\n"
                "def caller():\n    callee(1, flag=True)\n",
            )
        )
        callee = graph.functions["repro.demo.callee"]
        (site,) = graph.call_sites("repro.demo.caller")
        bound = bind_arguments(callee, site.call)
        assert set(bound) == {"a", "flag"}
        assert ast.literal_eval(bound["flag"]) is True

    def test_keyword_only_parameters_never_bind_positionally(self):
        # The extra positional argument has no positional slot to land
        # in; silently assigning it to the keyword-only parameter would
        # model a call Python itself rejects.
        graph = graph_of(
            (
                "repro.demo",
                "def callee(a, *, flag):\n    pass\n"
                "def caller():\n    callee(1, 2)\n",
            )
        )
        callee = graph.functions["repro.demo.callee"]
        (site,) = graph.call_sites("repro.demo.caller")
        bound = bind_arguments(callee, site.call)
        assert set(bound) == {"a"}

    def test_defaulted_parameter_left_unbound_when_omitted(self):
        # A parameter the call site does not mention stays out of the
        # binding entirely — the callee's default expression is evaluated
        # in the callee, and the taint pass must not attribute it to the
        # caller.
        graph = graph_of(
            (
                "repro.demo",
                "def callee(a, depth=0, *, flag=False):\n    pass\n"
                "def caller():\n    callee(1)\n",
            )
        )
        callee = graph.functions["repro.demo.callee"]
        (site,) = graph.call_sites("repro.demo.caller")
        bound = bind_arguments(callee, site.call)
        assert set(bound) == {"a"}

    def test_positional_args_after_starred_are_not_bound(self):
        # Past a `*rest` the positional slot indices are unknowable, so
        # binding stops even for the concrete arguments that follow;
        # keywords after the star still bind by name.
        graph = graph_of(
            (
                "repro.demo",
                "def callee(a, b, c, d=None):\n    pass\n"
                "def caller(rest):\n    callee(1, *rest, 9, d=4)\n",
            )
        )
        callee = graph.functions["repro.demo.callee"]
        (site,) = graph.call_sites("repro.demo.caller")
        bound = bind_arguments(callee, site.call)
        assert set(bound) == {"a", "d"}
        assert ast.literal_eval(bound["a"]) == 1
        assert ast.literal_eval(bound["d"]) == 4

    def test_positional_overflow_is_dropped(self):
        graph = graph_of(
            (
                "repro.demo",
                "def callee(a):\n    pass\n"
                "def caller():\n    callee(1, 2, 3)\n",
            )
        )
        callee = graph.functions["repro.demo.callee"]
        (site,) = graph.call_sites("repro.demo.caller")
        bound = bind_arguments(callee, site.call)
        assert set(bound) == {"a"}
        assert ast.literal_eval(bound["a"]) == 1
