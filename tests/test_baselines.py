"""Tests for the comparison architectures (client/server, Donnybrook, Watchmen model)."""

import pytest

from repro.baselines import ClientServerModel, DonnybrookModel, WatchmenModel
from repro.core.disclosure import InfoLevel
from repro.core.proxy import ProxySchedule
from repro.game.interest import InterestConfig


@pytest.fixture()
def frame_snapshots(small_trace):
    return 60, small_trace.frames[60]


class TestClientServer:
    def test_only_freq_or_nothing(self, longest_yard, frame_snapshots):
        frame, snapshots = frame_snapshots
        model = ClientServerModel(longest_yard)
        model.prepare_frame(frame, snapshots)
        levels = {
            model.info_level(a, b)
            for a in snapshots
            for b in snapshots
            if a != b
        }
        assert levels <= {InfoLevel.FREQUENT, InfoLevel.NOTHING}

    def test_symmetric_visibility(self, longest_yard, frame_snapshots):
        frame, snapshots = frame_snapshots
        model = ClientServerModel(longest_yard)
        model.prepare_frame(frame, snapshots)
        ids = sorted(snapshots)
        for a in ids:
            for b in ids:
                if a != b:
                    assert model.info_level(a, b) == model.info_level(b, a)

    def test_self_query_rejected(self, longest_yard, frame_snapshots):
        frame, snapshots = frame_snapshots
        model = ClientServerModel(longest_yard)
        model.prepare_frame(frame, snapshots)
        with pytest.raises(ValueError):
            model.info_level(0, 0)

    def test_radius_limits_pvs(self, longest_yard, frame_snapshots):
        frame, snapshots = frame_snapshots
        tight = ClientServerModel(longest_yard, pvs_radius=10.0)
        tight.prepare_frame(frame, snapshots)
        levels = [
            tight.info_level(a, b)
            for a in snapshots
            for b in snapshots
            if a != b
        ]
        assert all(level == InfoLevel.NOTHING for level in levels)


class TestDonnybrook:
    def test_freq_for_is_dr_for_rest(self, frame_snapshots):
        frame, snapshots = frame_snapshots
        model = DonnybrookModel(InterestConfig())
        model.prepare_frame(frame, snapshots)
        for observer in snapshots:
            interest = model.interest_set(observer)
            assert len(interest) <= 5
            for subject in snapshots:
                if subject == observer:
                    continue
                expected = (
                    InfoLevel.FREQUENT
                    if subject in interest
                    else InfoLevel.DEAD_RECKONING
                )
                assert model.info_level(observer, subject) == expected

    def test_never_nothing(self, frame_snapshots):
        """Donnybrook sends DR about everyone — no player is invisible."""
        frame, snapshots = frame_snapshots
        model = DonnybrookModel()
        model.prepare_frame(frame, snapshots)
        for a in snapshots:
            for b in snapshots:
                if a != b:
                    assert model.info_level(a, b) != InfoLevel.NOTHING

    def test_no_visibility_gate(self, frame_snapshots):
        """Donnybrook's IS ignores walls — a Watchmen addition only."""
        frame, snapshots = frame_snapshots
        model = DonnybrookModel(InterestConfig(interest_size=47))
        model.prepare_frame(frame, snapshots)
        observer = sorted(snapshots)[0]
        alive = [
            p for p, s in snapshots.items() if p != observer and s.alive
        ]
        assert model.interest_set(observer) == frozenset(alive)

    def test_self_query_rejected(self, frame_snapshots):
        frame, snapshots = frame_snapshots
        model = DonnybrookModel()
        model.prepare_frame(frame, snapshots)
        with pytest.raises(ValueError):
            model.info_level(1, 1)


class TestWatchmenModel:
    @pytest.fixture()
    def model(self, longest_yard, small_trace):
        schedule = ProxySchedule(small_trace.player_ids())
        return WatchmenModel(longest_yard, schedule)

    def test_proxy_gets_complete(self, model, frame_snapshots):
        frame, snapshots = frame_snapshots
        model.prepare_frame(frame, snapshots)
        for subject in snapshots:
            proxy = model.proxy_of(subject)
            assert model.info_level(proxy, subject) == InfoLevel.COMPLETE

    def test_all_levels_reachable(self, model, small_trace):
        seen = set()
        for frame in range(0, small_trace.num_frames, 20):
            snapshots = small_trace.frames[frame]
            model.prepare_frame(frame, snapshots)
            for a in snapshots:
                for b in snapshots:
                    if a != b:
                        seen.add(model.info_level(a, b))
        assert InfoLevel.COMPLETE in seen
        assert InfoLevel.INFREQUENT in seen
        # FPS traces virtually always produce some IS/VS relations too.
        assert InfoLevel.FREQUENT in seen

    def test_never_nothing(self, model, frame_snapshots):
        """Watchmen's floor is the 1 Hz position update, never nothing."""
        frame, snapshots = frame_snapshots
        model.prepare_frame(frame, snapshots)
        for a in snapshots:
            for b in snapshots:
                if a != b:
                    assert model.info_level(a, b) != InfoLevel.NOTHING

    def test_sets_accessible(self, model, frame_snapshots):
        frame, snapshots = frame_snapshots
        model.prepare_frame(frame, snapshots)
        sets = model.sets_of(sorted(snapshots)[0])
        assert sets.all_ids() == frozenset(p for p in snapshots if p != sorted(snapshots)[0])
