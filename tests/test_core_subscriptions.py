"""Unit tests for subscription planning and proxy-side subscriber tables."""

import pytest

from repro.core.config import WatchmenConfig
from repro.core.subscriptions import SubscriberTable, SubscriptionPlanner
from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import make_arena
from repro.game.vector import Vec3


def snap(player_id, x=0.0, y=0.0, yaw=0.0, vx=0.0, frame=0):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=Vec3(x, y, 0),
        velocity=Vec3(vx, 0, 0),
        yaw=yaw,
        health=100,
        armor=0,
        weapon="machinegun",
        ammo=100,
        alive=True,
    )


@pytest.fixture()
def planner(arena):
    return SubscriptionPlanner(0, arena, WatchmenConfig())


class TestPlanner:
    def test_first_plan_sends_everything_new(self, planner):
        known = {0: snap(0, y=-800.0), 1: snap(1, x=300, y=-800.0)}
        plan = planner.plan(0, known[0], known)
        assert plan.new_interest == plan.interest
        assert plan.new_vision == plan.vision

    def test_retention_suppresses_repeats(self, planner):
        known = {0: snap(0, y=-800.0), 1: snap(1, x=300, y=-800.0)}
        first = planner.plan(0, known[0], known)
        assert 1 in first.new_interest
        second = planner.plan(1, known[0], known)
        assert 1 in second.interest
        assert 1 not in second.new_interest  # already active, retained

    def test_resend_after_expiry(self, planner):
        known = {0: snap(0, y=-800.0), 1: snap(1, x=300, y=-800.0)}
        planner.plan(0, known[0], known)
        retention = planner.config.subscription_retention_frames
        late = planner.plan(retention + 1, known[0], known)
        assert 1 in late.new_interest

    def test_prediction_ahead_uses_velocity(self, arena):
        """A fast-moving player subscribes based on his *next* position."""
        config = WatchmenConfig(predict_ahead=True)
        planner = SubscriptionPlanner(0, arena, config)
        # The target sits just outside the vision radius; own velocity
        # carries the observer into range next frame.
        radius = config.interest.vision_radius
        me = snap(0, x=0.0, y=-800.0, vx=320.0)
        target = snap(1, x=radius + 10.0, y=-800.0)
        known = {0: me, 1: target}
        plan = planner.plan(0, me, known)
        assert 1 in plan.interest | plan.vision

    def test_no_prediction_when_disabled(self, arena):
        config = WatchmenConfig(predict_ahead=False)
        planner = SubscriptionPlanner(0, arena, config)
        radius = config.interest.vision_radius
        me = snap(0, x=0.0, y=-800.0, vx=320.0)
        target = snap(1, x=radius + 10.0, y=-800.0)
        plan = planner.plan(0, me, {0: me, 1: target})
        assert 1 not in plan.interest | plan.vision

    def test_active_sets_exposed(self, planner):
        known = {0: snap(0, y=-800.0), 1: snap(1, x=300, y=-800.0)}
        planner.plan(0, known[0], known)
        assert 1 in planner.active_interest() | planner.active_vision()


class TestSubscriberTable:
    def make(self, retention=40):
        return SubscriberTable(client_id=1, retention_frames=retention)

    def test_add_and_query(self):
        table = self.make()
        table.add_interest(2, frame=0)
        table.add_vision(3, frame=0)
        assert table.interest_subscribers(10) == frozenset({2})
        assert table.vision_subscribers(10) == frozenset({3})

    def test_self_subscription_rejected(self):
        table = self.make()
        with pytest.raises(ValueError):
            table.add_interest(1, 0)
        with pytest.raises(ValueError):
            table.add_vision(1, 0)

    def test_expiry(self):
        table = self.make(retention=10)
        table.add_interest(2, frame=0)
        assert table.interest_subscribers(9) == frozenset({2})
        assert table.interest_subscribers(10) == frozenset()

    def test_expire_removes_entries(self):
        table = self.make(retention=10)
        table.add_interest(2, frame=0)
        table.expire(frame=20)
        assert table.interest_subscribers(5) == frozenset()

    def test_renewal_extends(self):
        table = self.make(retention=10)
        table.add_interest(2, frame=0)
        table.add_interest(2, frame=8)
        assert table.interest_subscribers(15) == frozenset({2})

    def test_is_supersedes_vs(self):
        """IS members are removed from the VS — the stronger class wins."""
        table = self.make()
        table.add_vision(2, frame=0)
        table.add_interest(2, frame=0)
        assert 2 in table.interest_subscribers(1)
        assert 2 not in table.vision_subscribers(1)

    def test_vs_does_not_downgrade_is(self):
        table = self.make()
        table.add_interest(2, frame=0)
        table.add_vision(2, frame=1)
        assert 2 in table.interest_subscribers(2)
        assert 2 not in table.vision_subscribers(2)

    def test_export_import_roundtrip(self):
        """Handoff: the new proxy reconstructs the subscriber lists."""
        old = self.make()
        old.add_interest(2, frame=0)
        old.add_vision(3, frame=0)
        interest, vision = old.export_sets(frame=5)
        new = self.make()
        new.import_sets(interest, vision, frame=5)
        assert new.interest_subscribers(6) == frozenset({2})
        assert new.vision_subscribers(6) == frozenset({3})

    def test_import_drops_self(self):
        table = self.make()
        table.import_sets(frozenset({1, 2}), frozenset({1, 3}), frame=0)
        assert 1 not in table.interest_subscribers(1)
        assert 1 not in table.vision_subscribers(1)
