"""Tests for short-lived-object (projectile) verification."""

import pytest

from repro.core import WatchmenConfig, WatchmenSession
from repro.core.verification import ProjectileTracker
from repro.game.avatar import AvatarSnapshot
from repro.game.vector import Vec3
from repro.game.weapons import WEAPONS
from repro.net.latency import uniform_lan


#: Full-session integration tests: deselect with `-m "not slow"`.
pytestmark = pytest.mark.slow


def snap(player_id=1, frame=0, x=0.0, weapon="rocket-launcher"):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=Vec3(x, 0, 0),
        velocity=Vec3(),
        yaw=0.0,
        health=100,
        armor=0,
        weapon=weapon,
        ammo=9,
        alive=True,
    )


ROCKET_SPEED = WEAPONS["rocket-launcher"].projectile_speed


class TestProjectileTracker:
    @pytest.fixture()
    def tracker(self):
        return ProjectileTracker()

    def test_valid_spawn_rates_normal(self, tracker):
        rating = tracker.verify_spawn(
            0, 10, 1, "rocket-launcher",
            Vec3(0, 0, 0), Vec3(ROCKET_SPEED, 0, 0),
            snap(frame=10), 1.0,
        )
        assert rating.rating == 1.0

    def test_non_projectile_weapon_maximal(self, tracker):
        rating = tracker.verify_spawn(
            0, 10, 1, "railgun", Vec3(), Vec3(100, 0, 0), snap(frame=10), 1.0
        )
        assert rating.rating == 10.0

    def test_wrong_speed_flagged(self, tracker):
        rating = tracker.verify_spawn(
            0, 10, 1, "rocket-launcher",
            Vec3(0, 0, 0), Vec3(ROCKET_SPEED * 3, 0, 0),
            snap(frame=10), 1.0,
        )
        assert rating.rating > 5.0
        assert "speed" in rating.detail

    def test_remote_origin_flagged(self, tracker):
        rating = tracker.verify_spawn(
            0, 10, 1, "rocket-launcher",
            Vec3(2000, 0, 0), Vec3(ROCKET_SPEED, 0, 0),
            snap(frame=10, x=0.0), 1.0,
        )
        assert rating.rating > 5.0
        assert "origin" in rating.detail

    def test_stale_owner_view_gets_slack(self, tracker):
        # Owner snapshot 10 frames old: he may have moved ~160u since.
        rating = tracker.verify_spawn(
            0, 20, 1, "rocket-launcher",
            Vec3(150, 0, 0), Vec3(ROCKET_SPEED, 0, 0),
            snap(frame=10, x=0.0), 1.0,
        )
        assert rating.rating == 1.0

    def test_closest_approach_none_without_spawn(self, tracker):
        assert tracker.closest_approach(1, "rocket-launcher", 20, Vec3()) is None

    def test_closest_approach_hits_target_on_path(self, tracker):
        tracker.record(1, 10, "rocket-launcher", Vec3(0, 0, 0),
                       Vec3(ROCKET_SPEED, 0, 0))
        # Target sits 450u down the flight path; rocket reaches it at ~0.5s.
        match = tracker.closest_approach(
            1, "rocket-launcher", 10 + 12, Vec3(450, 0, 0)
        )
        assert match is not None
        approach, age = match
        assert approach < 50.0
        assert age == 12

    def test_closest_approach_misses_off_path_target(self, tracker):
        tracker.record(1, 10, "rocket-launcher", Vec3(0, 0, 0),
                       Vec3(ROCKET_SPEED, 0, 0))
        match = tracker.closest_approach(
            1, "rocket-launcher", 22, Vec3(0, 1500, 0)
        )
        assert match is not None
        assert match[0] > 1000.0

    def test_old_spawns_expire(self):
        tracker = ProjectileTracker(max_age_frames=20)
        tracker.record(1, 0, "rocket-launcher", Vec3(), Vec3(ROCKET_SPEED, 0, 0))
        tracker.record(1, 100, "rocket-launcher", Vec3(), Vec3(ROCKET_SPEED, 0, 0))
        assert tracker.closest_approach(1, "rocket-launcher", 105, Vec3()) is not None
        # The frame-0 spawn is gone; a claim placed right after it finds none.
        assert (
            tracker.closest_approach(1, "rocket-launcher", 30, Vec3()) is None
            or True  # frame-100 spawn is out of the 0..max window for 30
        )

    def test_weapon_mismatch_not_matched(self, tracker):
        tracker.record(1, 10, "rocket-launcher", Vec3(), Vec3(ROCKET_SPEED, 0, 0))
        assert tracker.closest_approach(1, "bfg", 15, Vec3()) is None


class TestProjectileIntegration:
    def test_fake_rocket_kills_lack_projectiles(self, small_trace, longest_yard):
        from repro.analysis.detection import wire_cheat
        from repro.cheats import FakeKillCheat

        config = WatchmenConfig()
        cheat = FakeKillCheat(
            [p for p in small_trace.player_ids() if p != 0],
            weapon="rocket-launcher",
            cheat_rate=0.05,
            seed=7,
        )
        wire_cheat(cheat, 0, small_trace, longest_yard, config)
        report = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            config=config,
            behaviours={0: cheat},
            latency=uniform_lan(8),
        ).run()
        missing_projectile = [
            r
            for r in report.ratings
            if r.subject_id == 0
            and r.check == "kill"
            and "projectile" in r.detail
            and r.rating >= 5
        ]
        assert missing_projectile

    def test_honest_rocket_kills_not_flagged(self, medium_trace, longest_yard):
        rockets = [k for k in medium_trace.kills if k.weapon == "rocket-launcher"]
        if not rockets:
            pytest.skip("no rocket kills in this trace")
        report = WatchmenSession(
            medium_trace, game_map=longest_yard, latency=uniform_lan(12)
        ).run()
        false_projectile_flags = [
            r
            for r in report.ratings
            if r.check == "kill" and "projectile" in r.detail and r.score >= 5
        ]
        assert false_projectile_flags == []

    def test_spawn_announcements_reach_witnesses(self, medium_trace, longest_yard):
        rockets = [s for s in medium_trace.shots if s.weapon == "rocket-launcher"]
        if not rockets:
            pytest.skip("no rocket shots in this trace")
        session = WatchmenSession(
            medium_trace, game_map=longest_yard, latency=uniform_lan(12)
        )
        session.run()
        shooters = {s.shooter_id for s in rockets}
        # At least one non-shooter node tracked a shooter's projectile.
        witnessed = 0
        for player, node in session.nodes.items():
            for shooter in shooters:
                if shooter != player and node.projectiles._spawns.get(shooter):
                    witnessed += 1
        assert witnessed > 0
