"""McController unit tests: capture filter, decision loop, budgets."""

from __future__ import annotations

import pytest

from repro.mc.controller import McController


class Ping:
    pass


class Pong:
    pass


class FakeQueue:
    now = 0.0


class FakeNetwork:
    """The slice of DatagramNetwork the controller touches."""

    def __init__(self):
        self.queue = FakeQueue()
        self.delivered: list[tuple[int, int, object]] = []
        self.drops = 0

    def deliver_captured(self, src, dst, payload, size_bytes, sent_at):
        self.delivered.append((src, dst, payload))

    def drop_captured(self):
        self.drops += 1


def controller(**kwargs) -> tuple[McController, FakeNetwork]:
    defaults = dict(controlled=("Ping",), window=(0, 100))
    defaults.update(kwargs)
    ctl = McController(**defaults)
    net = FakeNetwork()
    ctl._network = net
    return ctl, net


class TestIntercept:
    def test_captures_controlled_type_inside_window(self):
        ctl, _ = controller(window=(5, 10))
        ctl.begin_frame(5)
        assert ctl.intercept(0, 1, Ping(), 64)
        assert ctl.captured == 1
        assert ctl.meta[0] == (0, 1, "Ping")

    def test_outside_window(self):
        ctl, _ = controller(window=(5, 10))
        ctl.begin_frame(4)
        assert not ctl.intercept(0, 1, Ping(), 64)
        ctl.begin_frame(10)  # window end is exclusive
        assert not ctl.intercept(0, 1, Ping(), 64)
        assert ctl.captured == 0

    def test_uncontrolled_type(self):
        ctl, _ = controller()
        ctl.begin_frame(0)
        assert not ctl.intercept(0, 1, Pong(), 64)

    def test_local_loopback_is_never_captured(self):
        ctl, _ = controller()
        ctl.begin_frame(0)
        assert not ctl.intercept(2, 2, Ping(), 64)

    def test_controlled_src_filter(self):
        ctl, _ = controller(controlled_src=(0, 1))
        ctl.begin_frame(0)
        assert not ctl.intercept(3, 1, Ping(), 64)
        assert ctl.intercept(0, 1, Ping(), 64)

    def test_without_network_nothing_is_captured(self):
        ctl = McController(controlled=("Ping",), window=(0, 100))
        assert not ctl.intercept(0, 1, Ping(), 64)

    def test_empty_window_is_rejected(self):
        with pytest.raises(ValueError):
            McController(controlled=("Ping",), window=(10, 10))


class TestDecisionLoop:
    def test_capture_is_released_on_the_next_frame(self):
        ctl, net = controller()
        ctl.begin_frame(3)
        ctl.intercept(0, 1, Ping(), 64)
        assert net.delivered == []  # not ready within the sending frame
        ctl.begin_frame(4)
        assert [d[:2] for d in net.delivered] == [(0, 1)]
        assert ctl.choices() == (("deliver", 0),)

    def test_default_policy_delivers_in_canonical_order(self):
        ctl, net = controller()
        ctl.begin_frame(0)
        ctl.intercept(2, 1, Ping(), 64)  # capture 0
        ctl.intercept(0, 1, Ping(), 64)  # capture 1, lower src
        ctl.begin_frame(1)
        # canonical key orders by (ready_at, src, dst, type, id)
        assert [d[0] for d in net.delivered] == [0, 2]
        assert ctl.choices() == (("deliver", 1), ("deliver", 0))

    def test_head_only_fault_actions(self):
        ctl, _ = controller(drop_budget=1, dup_budget=1, defer_limit=1)
        ctl.begin_frame(0)
        ctl.intercept(0, 9, Ping(), 64)
        ctl.intercept(1, 9, Ping(), 64)
        ctl.intercept(2, 9, Ping(), 64)
        ctl.begin_frame(1)
        first = ctl.decisions[0].enabled
        # delivery of every ready message, faults only for the head (id 0)
        assert first == (
            ("deliver", 0),
            ("deliver", 1),
            ("deliver", 2),
            ("defer", 0),
            ("drop", 0),
            ("dup", 0),
        )
        second = ctl.decisions[1].enabled
        assert second == (
            ("deliver", 1),
            ("deliver", 2),
            ("defer", 1),
            ("drop", 1),
            ("dup", 1),
        )

    def test_scripted_reorder(self):
        ctl, net = controller(schedule=(("deliver", 1),))
        ctl.begin_frame(0)
        ctl.intercept(0, 9, Ping(), 64)
        ctl.intercept(1, 9, Ping(), 64)
        ctl.begin_frame(1)
        assert [d[0] for d in net.delivered] == [1, 0]
        assert ctl.fallbacks == 0

    def test_unenabled_scripted_action_falls_back_and_counts(self):
        ctl, net = controller(schedule=(("deliver", 99),))
        ctl.begin_frame(0)
        ctl.intercept(0, 9, Ping(), 64)
        ctl.begin_frame(1)
        assert ctl.fallbacks == 1
        assert [d[0] for d in net.delivered] == [0]  # default policy applied


class TestFaultBudgets:
    def test_drop(self):
        ctl, net = controller(drop_budget=1, schedule=(("drop", 0),))
        ctl.begin_frame(0)
        ctl.intercept(0, 9, Ping(), 64)
        ctl.intercept(1, 9, Ping(), 64)
        ctl.begin_frame(1)
        assert net.drops == 1
        assert ctl.dropped == 1
        assert [d[0] for d in net.delivered] == [1]
        # budget exhausted: the second decision offered no drop
        assert ("drop", 1) not in ctl.decisions[1].enabled

    def test_dup_delivers_and_requeues_a_copy(self):
        ctl, net = controller(dup_budget=1, schedule=(("dup", 0),))
        ctl.begin_frame(0)
        ctl.intercept(0, 9, Ping(), 64)
        ctl.begin_frame(1)
        # original delivered by the dup, the copy by the next decision
        assert [d[0] for d in net.delivered] == [0, 0]
        assert ctl.duplicated == 1
        assert ctl.delivered == 2
        assert ctl.meta[1] == (0, 9, "Ping")

    def test_defer_pushes_to_the_next_frame(self):
        ctl, net = controller(defer_limit=1, schedule=(("defer", 0),))
        ctl.begin_frame(0)
        ctl.intercept(0, 9, Ping(), 64)
        ctl.begin_frame(1)
        assert net.delivered == []
        assert ctl.deferred == 1
        ctl.begin_frame(2)
        assert [d[0] for d in net.delivered] == [0]
        # per-message limit reached: no second defer was offered
        assert ctl.decisions[1].enabled == (("deliver", 0),)

    def test_defer_budget_caps_total_defers_across_messages(self):
        ctl, _ = controller(
            defer_limit=1, defer_budget=1, schedule=(("defer", 0),)
        )
        ctl.begin_frame(0)
        ctl.intercept(0, 9, Ping(), 64)
        ctl.intercept(1, 9, Ping(), 64)
        ctl.begin_frame(1)
        # capture 1 still had its per-message allowance, but the global
        # budget was spent on capture 0
        assert ctl.deferred == 1
        later = [a for d in ctl.decisions[1:] for a in d.enabled]
        assert ("defer", 1) not in later

    def test_stats_shape(self):
        ctl, _ = controller()
        ctl.begin_frame(0)
        ctl.intercept(0, 9, Ping(), 64)
        ctl.begin_frame(1)
        assert ctl.stats() == {
            "captured": 1,
            "delivered": 1,
            "dropped": 0,
            "duplicated": 0,
            "deferred": 0,
            "decisions": 1,
            "fallbacks": 0,
        }


class TestSerialisation:
    def test_params_round_trip(self):
        ctl = McController(
            controlled=("Ping", "Pong"),
            window=(1, 5),
            drop_budget=1,
            dup_budget=2,
            defer_limit=3,
            defer_budget=4,
            controlled_src=(2, 0),
            schedule=(("deliver", 1), ("defer", 0)),
        )
        rebuilt = McController.from_json(ctl.params_json())
        assert rebuilt.params_json() == ctl.params_json()
        assert rebuilt.controlled_src == frozenset({0, 2})
        assert rebuilt.defer_budget == 4
        assert rebuilt.schedule == (("deliver", 1), ("defer", 0))

    def test_defaults_round_trip(self):
        ctl = McController(controlled=("Ping",), window=(0, 10))
        rebuilt = McController.from_json(ctl.params_json())
        assert rebuilt.controlled_src is None
        assert rebuilt.defer_budget is None
        assert rebuilt.schedule == ()
