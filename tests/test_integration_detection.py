"""End-to-end cheat detection: inject cheats into full sessions and verify
that honest players catch them (the Figure 6 / Table I machinery)."""

import pytest

from repro.analysis.detection import (
    calibrate_thresholds,
    detection_experiment,
    honest_flag_rate,
    wire_cheat,
)
from repro.cheats import (
    EscapingCheat,
    FastRateCheat,
    SpeedHack,
    SpoofCheat,
    TimeCheat,
)
from repro.core import WatchmenConfig, WatchmenSession
from repro.core.verification import CheckKind


#: Full-session integration tests: deselect with `-m "not slow"`.
pytestmark = pytest.mark.slow


CHEATER = 0


@pytest.fixture(scope="module")
def thresholds(small_trace, longest_yard):
    report = WatchmenSession(small_trace, game_map=longest_yard).run()
    return calibrate_thresholds(report)


def run_with(cheat, trace, game_map, config=None):
    config = config or WatchmenConfig()
    wire_cheat(cheat, CHEATER, trace, game_map, config)
    session = WatchmenSession(
        trace, game_map=game_map, config=config, behaviours={CHEATER: cheat}
    )
    return session, session.run()


def high_ratings(report, check, threshold, subject=CHEATER):
    return [
        r
        for r in report.ratings
        if r.subject_id == subject and r.check == check and r.rating >= threshold
    ]


class TestThresholdCalibration:
    def test_thresholds_for_every_check(self, thresholds):
        assert set(thresholds) == set(CheckKind.ALL)

    def test_honest_flag_rate_within_budget(
        self, thresholds, honest_session_report
    ):
        _, report = honest_session_report
        for check, threshold in thresholds.items():
            assert honest_flag_rate(report, check, threshold, set()) <= 0.06


class TestSpeedHackDetection:
    def test_speed_hack_caught_by_position_check(
        self, small_trace, longest_yard, thresholds
    ):
        cheat = SpeedHack(factor=2.0, cheat_rate=0.10, seed=3)
        _, report = run_with(cheat, small_trace, longest_yard)
        hits = high_ratings(report, CheckKind.POSITION, thresholds["position"])
        assert hits, "a 2x speed hack must be flagged"
        verifiers = {r.verifier_id for r in hits}
        assert verifiers - {CHEATER}, "honest players must be among detectors"

    def test_detection_outcome_metrics(self, small_trace, longest_yard, thresholds):
        outcome = detection_experiment(
            small_trace,
            longest_yard,
            CheckKind.POSITION,
            CHEATER,
            thresholds,
        )
        assert outcome.cheat_actions > 0
        assert outcome.success_rate > 0.6
        assert outcome.honest_flag_rate <= 0.06


class TestFlowCheatDetection:
    def test_escaping_detected(self, small_trace, longest_yard, thresholds):
        cheat = EscapingCheat(escape_frame=80, seed=3)
        _, report = run_with(cheat, small_trace, longest_yard)
        hits = high_ratings(report, CheckKind.RATE, thresholds["rate"])
        assert hits
        assert all(r.frame >= 80 for r in hits)

    def test_time_cheat_detected(self, small_trace, longest_yard, thresholds):
        cheat = TimeCheat(delay_frames=12, seed=3)
        _, report = run_with(cheat, small_trace, longest_yard)
        assert high_ratings(report, CheckKind.RATE, thresholds["rate"])

    def test_fast_rate_detected(self, small_trace, longest_yard, thresholds):
        cheat = FastRateCheat(multiplier=4, cheat_rate=1.0, seed=3)
        _, report = run_with(cheat, small_trace, longest_yard)
        assert high_ratings(report, CheckKind.RATE, thresholds["rate"])


class TestPreventedCheats:
    def test_spoofing_prevented_by_signatures(self, small_trace, longest_yard):
        victim = 1
        cheat = SpoofCheat(victim_id=victim, cheat_rate=0.2, seed=3)
        cheat.snapshot_source = lambda frame: small_trace.frames[
            min(frame, small_trace.num_frames - 1)
        ][victim]
        session, report = run_with(cheat, small_trace, longest_yard)
        failures = sum(
            node.metrics.signature_failures for node in session.nodes.values()
        )
        assert failures >= len(cheat.log.cheat_frames) * 0.8
        # Crucially the forged state updates never get attributed to the
        # victim: no movement-family convictions (the checks a spoofed
        # StateUpdate would trip).  Subscription checks are excluded — they
        # have their own, unrelated honest tail.
        victim_blames = [
            r
            for r in report.ratings
            if r.subject_id == victim
            and r.verifier_id != CHEATER  # the cheater's own noise aside
            and r.rating >= 9.0
            and r.check in ("position", "aim", "guidance", "kill")
        ]
        assert not victim_blames


class TestReputationPipeline:
    def test_persistent_cheater_gets_banned(self, small_trace, longest_yard):
        """Detections flow into reputation; a heavy cheater ends banned."""
        from repro.core import ReputationBoard, ThresholdReputation

        cheat = SpeedHack(factor=3.0, cheat_rate=0.5, seed=3)
        config = WatchmenConfig()
        wire_cheat(cheat, CHEATER, small_trace, longest_yard, config)
        board = ReputationBoard(
            system=ThresholdReputation(ban_threshold=0.9, min_reports=30)
        )
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            config=config,
            behaviours={CHEATER: cheat},
            reputation=board,
        )
        report = session.run()
        assert CHEATER in report.banned
        assert report.banned == {CHEATER}
