"""Unit tests for the verification engine (ratings, confidence, checks)."""

import math

import pytest

from repro.core.verification import (
    AimVerifier,
    CheckKind,
    Confidence,
    DeviationCalibration,
    GuidanceVerifier,
    KillVerifier,
    PositionVerifier,
    RateVerifier,
    SubscriptionVerifier,
    rating_from_deviation,
)
from repro.game.avatar import AvatarSnapshot
from repro.game.deadreckoning import GuidancePrediction
from repro.game.gamemap import make_arena, make_longest_yard
from repro.game.interest import InterestConfig
from repro.game.physics import Physics
from repro.game.vector import Vec3


def snap(player_id=1, x=0.0, y=0.0, z=0.0, yaw=0.0, frame=0, alive=True,
         weapon="machinegun", vx=0.0):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=Vec3(x, y, z),
        velocity=Vec3(vx, 0, 0),
        yaw=yaw,
        health=100,
        armor=0,
        weapon=weapon,
        ammo=50,
        alive=alive,
    )


class TestRatingScale:
    def test_within_allowance_is_normal(self):
        assert rating_from_deviation(5.0, 10.0) == 1.0

    def test_rating_grows_with_deviation(self):
        r1 = rating_from_deviation(15.0, 10.0)
        r2 = rating_from_deviation(25.0, 10.0)
        assert 1.0 < r1 < r2

    def test_saturates_at_ten(self):
        assert rating_from_deviation(1e9, 10.0) == 10.0

    def test_zero_allowance_handled(self):
        assert rating_from_deviation(1.0, 0.0) == 10.0


class TestConfidence:
    def test_ordering_proxy_highest(self):
        assert (
            Confidence.PROXY
            > Confidence.INTEREST
            > Confidence.VISION
            > Confidence.OTHER
        )

    def test_staleness_discount_monotone(self):
        d0 = Confidence.staleness_discount(0)
        d10 = Confidence.staleness_discount(10)
        d100 = Confidence.staleness_discount(100)
        assert d0 == 1.0
        assert d0 > d10 > d100 > 0.0


class TestCalibration:
    def test_mean_and_std(self):
        cal = DeviationCalibration()
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            cal.observe(value)
        assert cal.mean == pytest.approx(3.0)
        assert cal.std == pytest.approx(1.5811, rel=1e-3)

    def test_fallback_before_enough_data(self):
        cal = DeviationCalibration(fallback=42.0)
        cal.observe(1.0)
        assert cal.allowance() == 42.0

    def test_allowance_mean_plus_sigma(self):
        cal = DeviationCalibration()
        for value in [2.0] * 10:
            cal.observe(value)
        assert cal.allowance(1.0) == pytest.approx(2.0)

    def test_std_of_single_sample(self):
        cal = DeviationCalibration()
        cal.observe(5.0)
        assert cal.std == 0.0


class TestPositionVerifier:
    @pytest.fixture()
    def verifier(self, arena):
        return PositionVerifier(Physics(arena))

    def test_first_observation_no_rating(self, verifier):
        assert verifier.observe(0, snap(frame=0), 1.0) is None

    def test_legal_move_rates_normal(self, verifier):
        verifier.observe(0, snap(frame=0, x=0), 1.0)
        rating = verifier.observe(0, snap(frame=1, x=15.0), 1.0)
        assert rating is not None
        assert rating.rating == 1.0
        assert rating.check == CheckKind.POSITION

    def test_speed_hack_rates_high(self, verifier):
        verifier.observe(0, snap(frame=0, x=0), 1.0)
        rating = verifier.observe(0, snap(frame=1, x=64.0), 1.0)  # 4× speed
        assert rating is not None
        assert rating.rating >= 8.0

    def test_out_of_order_updates_skipped(self, verifier):
        verifier.observe(0, snap(frame=5), 1.0)
        assert verifier.observe(0, snap(frame=3, x=500), 1.0) is None

    def test_death_transition_skipped(self, verifier):
        verifier.observe(0, snap(frame=0, alive=False), 1.0)
        assert verifier.observe(0, snap(frame=1, x=900), 1.0) is None

    def test_large_gap_abstains(self, verifier):
        verifier.observe(0, snap(frame=0), 1.0)
        assert verifier.observe(0, snap(frame=100, x=3000), 1.0) is None

    def test_forget_clears_history(self, verifier):
        verifier.observe(0, snap(frame=0), 1.0)
        verifier.forget(1)
        assert verifier.observe(0, snap(frame=1, x=500), 1.0) is None

    def test_multi_frame_gap_scales_allowance(self, verifier):
        verifier.observe(0, snap(frame=0), 1.0)
        # 10 frames at max speed is legal.
        rating = verifier.observe(0, snap(frame=10, x=160.0), 1.0)
        assert rating is not None and rating.rating == 1.0

    def test_confidence_passed_through(self, verifier):
        verifier.observe(0, snap(frame=0), 0.3)
        rating = verifier.observe(0, snap(frame=1, x=10), 0.3)
        assert rating.confidence == 0.3


class TestAimVerifier:
    @pytest.fixture()
    def verifier(self):
        return AimVerifier()

    def test_slow_turn_normal(self, verifier):
        verifier.observe(0, snap(frame=0, yaw=0.0), 1.0)
        rating = verifier.observe(0, snap(frame=1, yaw=0.3), 1.0)
        assert rating is not None and rating.rating == 1.0

    def test_instant_snap_flagged(self, verifier):
        verifier.observe(0, snap(frame=0, yaw=0.0), 1.0)
        rating = verifier.observe(0, snap(frame=1, yaw=math.pi * 0.95), 1.0)
        assert rating is not None
        assert rating.rating > 5.0
        assert rating.check == CheckKind.AIM

    def test_long_gap_ambiguous_abstains(self, verifier):
        verifier.observe(0, snap(frame=0, yaw=0.0), 1.0)
        assert verifier.observe(0, snap(frame=30, yaw=3.0), 1.0) is None

    def test_wrap_around_small_turn(self, verifier):
        verifier.observe(0, snap(frame=0, yaw=math.pi - 0.05), 1.0)
        rating = verifier.observe(0, snap(frame=1, yaw=-math.pi + 0.05), 1.0)
        assert rating is not None and rating.rating == 1.0


class TestGuidanceVerifier:
    def make_prediction(self, vx=100.0, frame=0):
        return GuidancePrediction(
            frame=frame,
            origin=Vec3(0, 0, 0),
            velocity=Vec3(vx, 0, 0),
            yaw=0.0,
            horizon_frames=20,
        )

    def feed_track(self, verifier, vx, frames=10, player=1, calibrate=False):
        rating = None
        for frame in range(frames):
            rating = verifier.observe_position(
                0,
                snap(player_id=player, frame=frame, x=vx * 0.05 * frame),
                1.0,
                calibrate=calibrate,
            ) or rating
        return rating

    def test_accurate_prediction_normal(self):
        verifier = GuidanceVerifier()
        verifier.observe_guidance(1, self.make_prediction(vx=100.0))
        rating = self.feed_track(verifier, vx=100.0)
        assert rating is not None
        assert rating.rating == 1.0

    def test_lying_prediction_flagged(self):
        verifier = GuidanceVerifier()
        verifier.observe_guidance(1, self.make_prediction(vx=-300.0))
        rating = self.feed_track(verifier, vx=300.0)
        assert rating is not None
        assert rating.rating > 5.0
        assert rating.check == CheckKind.GUIDANCE

    def test_no_prediction_no_rating(self):
        verifier = GuidanceVerifier()
        assert self.feed_track(verifier, vx=100.0) is None

    def test_death_voids_comparison(self):
        verifier = GuidanceVerifier()
        verifier.observe_guidance(1, self.make_prediction())
        verifier.observe_position(0, snap(frame=1, x=5), 1.0)
        assert (
            verifier.observe_position(0, snap(frame=2, alive=False), 1.0) is None
        )
        # Prediction dropped: subsequent positions yield nothing.
        assert self.feed_track(verifier, vx=100.0, frames=12) is None

    def test_sparse_track_abstains(self):
        verifier = GuidanceVerifier()
        verifier.observe_guidance(1, self.make_prediction(vx=100.0))
        # Single observation far past the window: no bracket, no rating.
        rating = verifier.observe_position(
            0, snap(frame=19, x=100.0 * 0.05 * 19), 1.0
        )
        assert rating is None

    def test_calibration_updates_with_honest_data(self):
        verifier = GuidanceVerifier()
        for _ in range(10):
            verifier.observe_guidance(1, self.make_prediction(vx=100.0))
            self.feed_track(verifier, vx=100.0, calibrate=True)
        assert verifier.calibration.count >= 8


class TestKillVerifier:
    @pytest.fixture()
    def verifier(self):
        return KillVerifier(make_arena())

    def test_plausible_kill_normal(self, verifier):
        rating = verifier.verify(
            0, 10, 1, "railgun",
            snap(1, x=0, y=-800, weapon="railgun", frame=10),
            snap(2, x=400, y=-800, frame=10),
            1.0,
        )
        assert rating.rating == 1.0
        assert rating.check == CheckKind.KILL

    def test_out_of_range_kill_flagged(self, verifier):
        rating = verifier.verify(
            0, 10, 1, "shotgun",
            snap(1, x=-900, y=-800, weapon="shotgun", frame=10),
            snap(2, x=900, y=-800, frame=10),
            1.0,
        )
        assert rating.rating > 5.0

    def test_occluded_kill_flagged(self):
        yard = make_longest_yard()
        verifier = KillVerifier(yard)
        rating = verifier.verify(
            0, 10, 1, "railgun",
            snap(1, x=100, y=0, weapon="railgun", frame=10),
            snap(2, x=400, y=0, frame=10),  # behind the east pillar
            1.0,
        )
        assert rating.rating > 5.0
        assert "line of sight" in rating.detail

    def test_wrong_weapon_flagged(self, verifier):
        rating = verifier.verify(
            0, 10, 1, "railgun",
            snap(1, x=0, y=-800, weapon="machinegun", frame=10),
            snap(2, x=300, y=-800, frame=10),
            1.0,
        )
        assert rating.rating > 1.0

    def test_unknown_weapon_maximal(self, verifier):
        rating = verifier.verify(0, 10, 1, "bfg9000", None, None, 1.0)
        assert rating.rating == 10.0

    def test_refire_rate_enforced(self, verifier):
        killer = snap(1, x=0, y=-800, weapon="railgun", frame=10)
        victim = snap(2, x=300, y=-800, frame=10)
        verifier.verify(0, 10, 1, "railgun", killer, victim, 1.0)
        rating = verifier.verify(0, 12, 1, "railgun", killer, victim, 1.0)
        assert rating.rating > 5.0  # railgun cannot refire in 2 frames

    def test_missing_snapshots_rate_only(self, verifier):
        rating = verifier.verify(0, 10, 1, "railgun", None, None, 1.0)
        assert rating.rating == 1.0  # nothing to contradict

    def test_stale_snapshots_reduce_confidence(self, verifier):
        rating = verifier.verify(
            0, 100, 1, "railgun",
            snap(1, x=0, y=-800, weapon="railgun", frame=10),
            snap(2, x=300, y=-800, frame=10),
            1.0,
        )
        assert rating.confidence < 0.5


class TestSubscriptionVerifier:
    @pytest.fixture()
    def verifier(self, arena):
        return SubscriptionVerifier(arena, InterestConfig())

    def test_valid_vs_subscription(self, verifier):
        subscriber = snap(1, x=0, y=-800, yaw=0.0)
        target = snap(2, x=500, y=-800)
        rating = verifier.verify_vision_subscription(0, 0, subscriber, target, 1.0)
        assert rating.rating == 1.0

    def test_behind_subscriber_flagged(self, verifier):
        subscriber = snap(1, x=0, y=-800, yaw=0.0)
        target = snap(2, x=-700, y=-800)
        rating = verifier.verify_vision_subscription(0, 0, subscriber, target, 1.0)
        assert rating.rating > 1.0
        assert rating.check == CheckKind.VS_SUBSCRIPTION

    def test_valid_is_subscription(self, verifier):
        subscriber = snap(1, x=0, y=-800, yaw=0.0)
        target = snap(2, x=200, y=-800)
        known = {1: subscriber, 2: target}
        rating = verifier.verify_interest_subscription(
            0, 0, subscriber, target, known, 1.0
        )
        assert rating.rating == 1.0
        assert rating.check == CheckKind.IS_SUBSCRIPTION

    def test_invisible_is_target_flagged(self, verifier):
        subscriber = snap(1, x=0, y=-800, yaw=0.0)
        target = snap(2, x=-1500, y=-800)  # far behind
        known = {1: subscriber, 2: target}
        rating = verifier.verify_interest_subscription(
            0, 0, subscriber, target, known, 1.0
        )
        assert rating.rating > 5.0

    def test_cone_deviation_grows_with_distance(self, verifier):
        subscriber = snap(1, x=0, y=-800, yaw=0.0)
        near_miss = verifier.verify_vision_subscription(
            0, 0, subscriber, snap(2, x=-200, y=-800), 1.0
        )
        far_miss = verifier.verify_vision_subscription(
            0, 0, subscriber, snap(3, x=-900, y=-800), 1.0
        )
        assert far_miss.deviation > near_miss.deviation


class TestRateVerifier:
    def test_normal_rate_no_ratings(self):
        verifier = RateVerifier()
        ratings = []
        for frame in range(30):
            ratings.extend(verifier.observe(0, 1, frame, frame + 1, 1.0))
        assert [r for r in ratings if r.rating > 3.0] == []

    def test_fast_rate_flagged(self):
        verifier = RateVerifier(window_frames=20)
        ratings = []
        for frame in range(20):
            for _ in range(3):  # 3× the legal rate
                ratings.extend(verifier.observe(0, 1, frame, frame, 1.0))
        assert any(r.rating > 3.0 for r in ratings)

    def test_time_skew_flagged(self):
        verifier = RateVerifier()
        ratings = verifier.observe(0, 1, stamped_frame=10, wallclock_frame=30,
                                   confidence=1.0)
        assert any(r.rating > 3.0 for r in ratings)

    def test_silence_burst_flagged(self):
        verifier = RateVerifier(silence_allowance_frames=8)
        verifier.observe(0, 1, 0, 0, 1.0)
        ratings = verifier.observe(0, 1, 30, 30, 1.0)
        assert any("silent" in r.detail for r in ratings)

    def test_check_silence_requires_history(self):
        verifier = RateVerifier()
        assert verifier.check_silence(0, 1, 100, 1.0) is None

    def test_check_silence_fires_on_gap(self):
        verifier = RateVerifier(silence_allowance_frames=8)
        verifier.observe(0, 1, 0, 0, 1.0)
        rating = verifier.check_silence(0, 1, 40, 1.0)
        assert rating is not None
        assert rating.rating > 3.0

    def test_check_silence_not_before_frame(self):
        verifier = RateVerifier(silence_allowance_frames=8)
        verifier.observe(0, 1, 0, 0, 1.0)
        assert verifier.check_silence(0, 1, 40, 1.0, not_before_frame=10) is None

    def test_forget(self):
        verifier = RateVerifier()
        verifier.observe(0, 1, 0, 0, 1.0)
        verifier.forget(1)
        assert verifier.check_silence(0, 1, 100, 1.0) is None
