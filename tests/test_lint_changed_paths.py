"""`repro lint --changed-only` diff base: fork point, not origin/main tip."""

from __future__ import annotations

import subprocess

import pytest

from repro.lint.cli import changed_paths

pytestmark = pytest.mark.lint


def git(cwd, *args: str) -> None:
    subprocess.run(
        ["git", *args], cwd=cwd, check=True, capture_output=True, text=True
    )


@pytest.fixture
def repo(tmp_path):
    """A clone where origin/main moved on after this branch forked.

    History: base commit C0 touches mod_a and mod_b; origin/main points
    at C1 (an upstream edit to mod_b); the local branch sits on C2 (an
    edit to mod_a) forked from C0.  The merge base is C0, so only mod_a
    is "changed" from this branch's point of view.
    """
    git(tmp_path, "init", "-q", "-b", "main")
    git(tmp_path, "config", "user.email", "dev@example.com")
    git(tmp_path, "config", "user.name", "dev")
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "mod_a.py").write_text("A = 1\n", encoding="utf-8")
    (pkg / "mod_b.py").write_text("B = 1\n", encoding="utf-8")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-q", "-m", "base")
    # upstream advances past the fork point...
    (pkg / "mod_b.py").write_text("B = 2\n", encoding="utf-8")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-q", "-m", "upstream edit")
    git(tmp_path, "update-ref", "refs/remotes/origin/main", "HEAD")
    # ...while the local branch forks from the base commit
    git(tmp_path, "reset", "-q", "--hard", "HEAD~1")
    (pkg / "mod_a.py").write_text("A = 2\n", encoding="utf-8")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-q", "-m", "local edit")
    return tmp_path


class TestChangedPaths:
    def test_diffs_against_the_fork_point(self, repo):
        changed = changed_paths(repo)
        assert changed is not None
        names = sorted(p.name for p in changed)
        # the regression: diffing against the origin/main *tip* would
        # have dragged in mod_b, which only upstream touched
        assert names == ["mod_a.py"]

    def test_includes_unstaged_and_untracked_files(self, repo):
        pkg = repo / "src" / "repro"
        (pkg / "mod_b.py").write_text("B = 3\n", encoding="utf-8")  # unstaged
        (pkg / "mod_c.py").write_text("C = 1\n", encoding="utf-8")  # untracked
        changed = changed_paths(repo)
        assert changed is not None
        assert sorted(p.name for p in changed) == [
            "mod_a.py",
            "mod_b.py",
            "mod_c.py",
        ]

    def test_ignores_files_outside_the_package(self, repo):
        (repo / "notes.py").write_text("N = 1\n", encoding="utf-8")
        (repo / "src" / "repro" / "data.txt").write_text("x\n", encoding="utf-8")
        changed = changed_paths(repo)
        assert changed is not None
        assert sorted(p.name for p in changed) == ["mod_a.py"]

    def test_returns_none_outside_a_work_tree(self, tmp_path):
        assert changed_paths(tmp_path) is None

    def test_returns_none_without_an_origin_main(self, tmp_path):
        git(tmp_path, "init", "-q", "-b", "main")
        git(tmp_path, "config", "user.email", "dev@example.com")
        git(tmp_path, "config", "user.name", "dev")
        (tmp_path / "probe.py").write_text("P = 1\n", encoding="utf-8")
        git(tmp_path, "add", "-A")
        git(tmp_path, "commit", "-q", "-m", "base")
        assert changed_paths(tmp_path) is None
