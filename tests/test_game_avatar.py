"""Unit tests for avatar state, snapshots and delta coding."""

import pytest

from repro.game.avatar import (
    MAX_HEALTH,
    AvatarSnapshot,
    AvatarState,
    snapshot_delta_fields,
)
from repro.game.vector import Vec3


@pytest.fixture()
def avatar():
    return AvatarState(player_id=3, position=Vec3(1, 2, 3))


class TestDamage:
    def test_plain_damage(self, avatar):
        dealt = avatar.take_damage(30)
        assert dealt == 30
        assert avatar.health == 70

    def test_armor_absorbs_two_thirds(self, avatar):
        avatar.armor = 100
        dealt = avatar.take_damage(30)
        assert dealt == 10
        assert avatar.health == 90
        assert avatar.armor == 80

    def test_partial_armor(self, avatar):
        avatar.armor = 5
        dealt = avatar.take_damage(30)
        assert avatar.armor == 0
        assert dealt == 25

    def test_lethal_damage_kills(self, avatar):
        avatar.take_damage(200)
        assert not avatar.alive
        assert avatar.health == 0

    def test_dead_avatar_takes_no_damage(self, avatar):
        avatar.take_damage(200)
        assert avatar.take_damage(50) == 0

    def test_negative_damage_rejected(self, avatar):
        with pytest.raises(ValueError):
            avatar.take_damage(-1)


class TestHealRespawn:
    def test_heal_caps_at_max(self, avatar):
        avatar.health = 90
        avatar.heal(50)
        assert avatar.health == MAX_HEALTH

    def test_mega_heal_custom_cap(self, avatar):
        avatar.heal(100, cap=200)
        assert avatar.health == 200

    def test_respawn_resets_state(self, avatar):
        avatar.take_damage(500)
        avatar.respawn(Vec3(9, 9, 9), frame=120)
        assert avatar.alive
        assert avatar.health == MAX_HEALTH
        assert avatar.position == Vec3(9, 9, 9)
        assert avatar.weapon == "machinegun"
        assert avatar.respawn_at_frame == 120


class TestSnapshot:
    def test_snapshot_copies_fields(self, avatar):
        avatar.yaw = 1.5
        snap = avatar.snapshot(frame=7)
        assert snap.player_id == 3
        assert snap.frame == 7
        assert snap.yaw == 1.5
        assert snap.position == avatar.position

    def test_snapshot_is_immutable(self, avatar):
        snap = avatar.snapshot(0)
        with pytest.raises(AttributeError):
            snap.health = 0  # type: ignore[misc]

    def test_at_frame(self, avatar):
        snap = avatar.snapshot(0).at_frame(9)
        assert snap.frame == 9

    def test_position_only_strips_sensitive_fields(self, avatar):
        avatar.armor = 55
        snap = avatar.snapshot(0).position_only()
        assert snap.position == avatar.position
        assert snap.health == 0
        assert snap.armor == 0
        assert snap.weapon == ""
        assert snap.alive


class TestDeltaCoding:
    def make(self, **overrides):
        base = dict(
            player_id=1,
            frame=0,
            position=Vec3(0, 0, 0),
            velocity=Vec3(0, 0, 0),
            yaw=0.0,
            health=100,
            armor=0,
            weapon="machinegun",
            ammo=100,
            alive=True,
        )
        base.update(overrides)
        return AvatarSnapshot(**base)

    def test_no_history_sends_everything(self):
        fields = snapshot_delta_fields(None, self.make())
        assert "position" in fields and "health" in fields
        assert len(fields) == 8

    def test_identical_snapshots_empty_delta(self):
        a, b = self.make(), self.make(frame=1)
        assert snapshot_delta_fields(a, b) == []

    def test_single_field_change(self):
        a = self.make()
        b = self.make(frame=1, health=80)
        assert snapshot_delta_fields(a, b) == ["health"]

    def test_multiple_changes(self):
        a = self.make()
        b = self.make(frame=1, position=Vec3(1, 0, 0), ammo=99)
        fields = snapshot_delta_fields(a, b)
        assert set(fields) == {"position", "ammo"}

    def test_different_players_full_delta(self):
        a = self.make()
        b = self.make(player_id=2)
        assert len(snapshot_delta_fields(a, b)) == 8
