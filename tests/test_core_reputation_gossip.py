"""Tests for the distributed (gossip) reputation system."""

import pytest

from repro.core.reputation import InteractionTag
from repro.core.reputation_gossip import GossipNode, GossipReputationNetwork


def tag(reporter, subject, frame=0, success=True, confidence=1.0):
    return InteractionTag(
        reporter_id=reporter,
        subject_id=subject,
        frame=frame,
        success=success,
        confidence=confidence,
    )


class TestGossipNode:
    def test_first_hand_only(self):
        node = GossipNode(1)
        with pytest.raises(ValueError):
            node.observe(tag(2, 3))

    def test_observation_updates_local_system(self):
        node = GossipNode(1)
        before = node.reputation_of(5)
        for frame in range(10):
            node.observe(tag(1, 5, frame=frame, success=False))
        assert node.reputation_of(5) < before

    def test_digest_roundtrip(self):
        a, b = GossipNode(1), GossipNode(2)
        for frame in range(5):
            a.observe(tag(1, 9, frame=frame, success=False))
        new = b.receive_digest(a.make_digest())
        assert new == 5
        assert b.reputation_of(9) < 1.0

    def test_duplicates_not_double_counted(self):
        a, b = GossipNode(1), GossipNode(2)
        a.observe(tag(1, 9, frame=0, success=False))
        digest = a.make_digest()
        assert b.receive_digest(digest) == 1
        assert b.receive_digest(digest) == 0
        assert b.tags_known == 1

    def test_digest_limit(self):
        node = GossipNode(1)
        for frame in range(100):
            node.observe(tag(1, 5, frame=frame))
        assert len(node.make_digest(limit=10)) == 10


class TestGossipNetwork:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            GossipReputationNetwork([1])

    def test_bad_fanout_rejected(self):
        network = GossipReputationNetwork([1, 2])
        with pytest.raises(ValueError):
            network.run_round(fanout=0)

    def test_tags_spread_to_everyone(self):
        network = GossipReputationNetwork(list(range(8)), seed=1)
        for frame in range(20):
            network.node(0).observe(tag(0, 7, frame=frame, success=False))
        rounds = network.run_until_quiet()
        assert rounds < 30
        for node in network.nodes.values():
            assert node.tags_known == 20

    def test_convergent_reputations(self):
        network = GossipReputationNetwork(list(range(8)), seed=2)
        for reporter in range(4):
            for frame in range(15):
                network.node(reporter).observe(
                    tag(reporter, 7, frame=frame, success=False)
                )
        network.run_until_quiet()
        assert network.reputation_spread(7) < 0.05

    def test_distributed_ban_agreement(self):
        """Every node independently reaches the same ban verdict."""
        network = GossipReputationNetwork(list(range(6)), seed=3)
        for reporter in range(5):
            for frame in range(20):
                network.node(reporter).observe(
                    tag(reporter, 5, frame=frame, success=False)
                )
            for frame in range(20):
                network.node(reporter).observe(
                    tag(reporter, 1 + (reporter % 3), frame=frame + 100,
                        success=True)
                )
        network.run_until_quiet()
        assert 5 in network.agreed_bans(threshold=0.99)
        assert network.agreed_bans() == {5}

    def test_badmouthing_minority_fails(self):
        """Two colluders spamming failure tags cannot get an honest player
        banned network-wide: honest observations outweigh them and the
        colluders' own credibility sinks as they get reported."""
        network = GossipReputationNetwork(list(range(8)), seed=4)
        colluders = (6, 7)
        victim = 0
        # Colluders spam bad tags about the victim.
        for colluder in colluders:
            for frame in range(30):
                network.node(colluder).observe(
                    tag(colluder, victim, frame=frame, success=False)
                )
        # Honest players report normal interactions with the victim and
        # flag the colluders' own (cheating) behaviour.
        for reporter in range(1, 6):
            for frame in range(30):
                network.node(reporter).observe(
                    tag(reporter, victim, frame=frame, success=True)
                )
                for colluder in colluders:
                    network.node(reporter).observe(
                        tag(reporter, colluder, frame=frame, success=False)
                    )
        network.run_until_quiet()
        assert victim not in network.agreed_bans(threshold=0.3)
        assert set(colluders) <= network.agreed_bans(threshold=0.5)

    def test_exchange_accounting(self):
        network = GossipReputationNetwork([1, 2, 3], seed=5)
        network.node(1).observe(tag(1, 2, success=False))
        network.run_round()
        assert network.rounds_run == 1
        assert network.tags_exchanged > 0
