"""Failure injection: loss spikes, saturated uplinks, NAT holes, churn.

The protocol must degrade gracefully — stale views and abstaining
verifiers, not crashes or honest bans.
"""

import pytest

from repro.core import ReputationBoard, WatchmenConfig, WatchmenSession
from repro.net.bandwidth import UploadBudget
from repro.net.latency import king_like, uniform_lan
from repro.net.nat import NatProfile, NatType, Reachability
from repro.net.transport import NetworkConfig


#: Full-session integration tests: deselect with `-m "not slow"`.
pytestmark = pytest.mark.slow


class TestHeavyLoss:
    @pytest.fixture(scope="class")
    def lossy_report(self, small_trace, longest_yard):
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=king_like(8, seed=2),
            network_config=NetworkConfig(loss_rate=0.15, seed=2),
        )
        return session.run()

    def test_session_completes(self, lossy_report):
        assert lossy_report.num_frames == 160

    def test_updates_still_flow(self, lossy_report):
        assert sum(lossy_report.age_histogram.values()) > 0

    def test_no_honest_bans_under_loss(self, lossy_report):
        """Message loss must not convict honest players."""
        assert lossy_report.banned == set()

    def test_loss_rate_observed(self, lossy_report):
        observed = lossy_report.messages_lost / lossy_report.messages_sent
        assert observed == pytest.approx(0.15, abs=0.02)


class TestSaturatedUplink:
    def test_budget_drops_do_not_crash(self, small_trace, longest_yard):
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(8),
        )
        # ~6 kB/s per node: well below what the protocol wants to send.
        session.network.budget = UploadBudget(bytes_per_second=6000)
        report = session.run(max_frames=80)
        assert session.network.dropped_over_budget > 0
        assert report.num_frames == 80

    def test_saturation_flags_are_rate_evidence_only(
        self, small_trace, longest_yard
    ):
        """A starved uplink looks like a flow cheat — and only like one.

        Watchmen handles this up front with a session-admission feasibility
        test (Section VI); once admitted, a node that cannot sustain the
        minimum rate is indistinguishable from a blind-opponent cheater,
        so rate flags are expected.  No *other* verification family may
        convict the starved-but-honest players.
        """
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(8),
            reputation=ReputationBoard(),
        )
        session.network.budget = UploadBudget(bytes_per_second=6000)
        report = session.run(max_frames=80)
        non_rate_high = [
            r for r in report.ratings if r.check != "rate" and r.rating >= 6.0
        ]
        assert len(non_rate_high) <= len(report.ratings) * 0.05


class TestNatHoles:
    def test_partially_reachable_population(self, small_trace, longest_yard):
        profiles = [
            NatProfile(i, NatType.SYMMETRIC if i < 2 else NatType.UPNP)
            for i in range(8)
        ]
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(8),
        )
        session.network.reachability = Reachability(profiles, seed=4)
        report = session.run(max_frames=80)
        assert report.num_frames == 80
        # With 6 of 8 nodes openly reachable, most traffic still flows.
        assert session.network.delivered > 0


class TestChurnDeparture:
    def test_departed_node_leaves_silence_evidence(
        self, small_trace, longest_yard
    ):
        """A node unplugging mid-game is seen by its proxy (heartbeats)."""
        session = WatchmenSession(
            small_trace, game_map=longest_yard, latency=uniform_lan(8)
        )
        # Unregister player 5 from the network halfway through.
        depart_frame = 80
        session.queue.schedule_at(
            depart_frame * session.config.frame_seconds,
            lambda: session.network.unregister(5),
        )
        # Player 5's own sends keep happening (his machine is gone; model
        # by dropping his outbound too).
        original_send = session.network.send

        def send_unless_departed(src, dst, payload, size):
            now_frame = int(session.queue.now / session.config.frame_seconds)
            if src == 5 and now_frame >= depart_frame:
                return False
            return original_send(src, dst, payload, size)

        for node in session.nodes.values():
            node._send_raw = send_unless_departed
        report = session.run()
        silence_flags = [
            r
            for r in report.ratings
            if r.subject_id == 5
            and r.check == "rate"
            and r.frame > depart_frame
            and r.rating >= 5.0
        ]
        assert silence_flags, "the proxy must notice the departure"

    def test_schedule_without_departed(self, small_trace):
        from repro.core.proxy import ProxySchedule

        schedule = ProxySchedule(small_trace.player_ids())
        slim = schedule.without_players({5})
        assert 5 not in slim.roster
        for player in slim.roster:
            assert slim.proxy_of(player, 0) != 5


class TestExtremeLatency:
    def test_very_slow_network_updates_age(self, small_trace, longest_yard):
        """At 150 ms one-way, two hops blow the budget: ages shift right."""
        slow = uniform_lan(8, one_way_ms=150.0)
        report = WatchmenSession(
            small_trace, game_map=longest_yard, latency=slow
        ).run(max_frames=80)
        assert report.stale_fraction(3) > 0.5
