"""Unit tests for both signature schemes (Schnorr and truncated HMAC)."""

import pytest

from repro.crypto.signatures import (
    HmacKeyRegistry,
    HmacSigner,
    SchnorrKeyPair,
    SchnorrSigner,
    SigningError,
)


@pytest.fixture(params=["schnorr", "hmac"])
def signer(request):
    if request.param == "schnorr":
        signer = SchnorrSigner()
    else:
        signer = HmacSigner()
    signer.register(1)
    signer.register(2)
    return signer


class TestCommonProperties:
    """Both schemes must provide the same security semantics."""

    def test_sign_verify_roundtrip(self, signer):
        message = b"state update frame 42"
        signature = signer.sign(1, message)
        assert signer.verify(1, message, signature)

    def test_tampered_message_rejected(self, signer):
        signature = signer.sign(1, b"honest position")
        assert not signer.verify(1, b"teleported position", signature)

    def test_wrong_signer_rejected(self, signer):
        """Spoofing: player 2 claims player 1 signed this."""
        signature = signer.sign(2, b"spoofed")
        assert not signer.verify(1, b"spoofed", signature)

    def test_signature_binds_signer_id(self, signer):
        from dataclasses import replace

        signature = signer.sign(1, b"msg")
        forged = replace(signature, signer_id=2)
        assert not signer.verify(2, b"msg", forged)

    def test_truncated_signature_rejected(self, signer):
        from dataclasses import replace

        signature = signer.sign(1, b"msg")
        clipped = replace(signature, data=signature.data[:-1])
        assert not signer.verify(1, b"msg", clipped)

    def test_cross_scheme_rejected(self):
        schnorr, hmac_signer = SchnorrSigner(), HmacSigner()
        schnorr.register(1)
        hmac_signer.register(1)
        signature = hmac_signer.sign(1, b"msg")
        assert not schnorr.verify(1, b"msg", signature)

    def test_deterministic_signatures(self, signer):
        assert signer.sign(1, b"msg").data == signer.sign(1, b"msg").data


class TestSchnorr:
    def test_keypair_from_seed_deterministic(self):
        a = SchnorrKeyPair.generate(b"seed")
        b = SchnorrKeyPair.generate(b"seed")
        assert a.secret == b.secret
        assert a.public == b.public

    def test_empty_seed_rejected(self):
        with pytest.raises(SigningError):
            SchnorrKeyPair.generate(b"")

    def test_unregistered_player_cannot_sign(self):
        with pytest.raises(SigningError):
            SchnorrSigner().sign(9, b"msg")

    def test_unregistered_player_fails_verify(self):
        signer = SchnorrSigner()
        signer.register(1)
        signature = signer.sign(1, b"msg")
        assert not signer.verify(99, b"msg", signature)

    def test_signature_size_65_bytes(self):
        signer = SchnorrSigner()
        signer.register(1)
        assert len(signer.sign(1, b"msg").data) == 65

    def test_different_messages_different_signatures(self):
        signer = SchnorrSigner()
        signer.register(1)
        assert signer.sign(1, b"a").data != signer.sign(1, b"b").data

    def test_malformed_signature_data(self):
        from repro.crypto.signatures import Signature

        signer = SchnorrSigner()
        signer.register(1)
        junk = Signature(scheme=signer.scheme, signer_id=1, data=b"\x00" * 65)
        assert not signer.verify(1, b"msg", junk)


class TestHmac:
    def test_default_signature_is_100_bits(self):
        signer = HmacSigner()
        signer.register(1)
        signature = signer.sign(1, b"msg")
        assert signature.bits == 104  # 100 bits rounded up to 13 bytes

    def test_custom_bits(self):
        signer = HmacSigner(signature_bits=128)
        signer.register(1)
        assert len(signer.sign(1, b"m").data) == 16

    def test_bits_out_of_range_rejected(self):
        with pytest.raises(SigningError):
            HmacSigner(signature_bits=16)
        with pytest.raises(SigningError):
            HmacSigner(signature_bits=512)

    def test_registry_keys_distinct_per_player(self):
        registry = HmacKeyRegistry()
        assert registry.key_for(1) != registry.key_for(2)

    def test_registry_keys_stable(self):
        registry = HmacKeyRegistry()
        assert registry.key_for(1) == registry.key_for(1)

    def test_registry_master_seed_separates_sessions(self):
        a = HmacKeyRegistry(b"session-a")
        b = HmacKeyRegistry(b"session-b")
        assert a.key_for(1) != b.key_for(1)

    def test_empty_master_seed_rejected(self):
        with pytest.raises(SigningError):
            HmacKeyRegistry(b"")

    def test_signing_without_register_works_lazily(self):
        signer = HmacSigner()
        signature = signer.sign(7, b"msg")
        assert signer.verify(7, b"msg", signature)
