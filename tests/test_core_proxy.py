"""Unit tests for the random/verifiable/dynamic proxy schedule."""

import pytest

from repro.core.proxy import ProxySchedule


@pytest.fixture()
def schedule():
    return ProxySchedule(list(range(16)), proxy_period_frames=40)


class TestConstruction:
    def test_needs_two_players(self):
        with pytest.raises(ValueError):
            ProxySchedule([1])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ProxySchedule([1, 1, 2])

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            ProxySchedule([1, 2], proxy_period_frames=0)

    def test_pool_must_be_subset(self):
        with pytest.raises(ValueError):
            ProxySchedule([1, 2, 3], proxy_pool=[1, 99])


class TestRandomProperty:
    """Proxies are random: uniform-ish over the eligible pool."""

    def test_never_own_proxy(self, schedule):
        for epoch in range(50):
            for player in range(16):
                assert schedule.proxy_of(player, epoch) != player

    def test_assignments_change_over_epochs(self, schedule):
        proxies = {schedule.proxy_of(3, epoch) for epoch in range(30)}
        assert len(proxies) > 5  # dynamic: rotates through many nodes

    def test_roughly_uniform(self):
        schedule = ProxySchedule(list(range(8)))
        counts = {p: 0 for p in range(8)}
        epochs = 2000
        for epoch in range(epochs):
            counts[schedule.proxy_of(0, epoch)] += 1
        assert counts[0] == 0
        expected = epochs / 7
        for player in range(1, 8):
            assert abs(counts[player] - expected) < expected * 0.25


class TestVerifiableProperty:
    """All players compute the same schedule with zero communication."""

    def test_independent_instances_agree(self):
        a = ProxySchedule(list(range(10)), common_seed=b"game-1")
        b = ProxySchedule(list(range(10)), common_seed=b"game-1")
        for epoch in range(20):
            for player in range(10):
                assert a.proxy_of(player, epoch) == b.proxy_of(player, epoch)

    def test_different_seed_different_schedule(self):
        a = ProxySchedule(list(range(10)), common_seed=b"game-1")
        b = ProxySchedule(list(range(10)), common_seed=b"game-2")
        assignments_a = [a.proxy_of(p, 0) for p in range(10)]
        assignments_b = [b.proxy_of(p, 0) for p in range(10)]
        assert assignments_a != assignments_b

    def test_verify_proxy_accepts_truth(self, schedule):
        proxy = schedule.proxy_of(5, 3)
        assert schedule.verify_proxy(5, 3, proxy)

    def test_verify_proxy_rejects_lie(self, schedule):
        proxy = schedule.proxy_of(5, 3)
        wrong = (proxy + 1) % 16
        if wrong == 5:
            wrong = (wrong + 1) % 16
        assert not schedule.verify_proxy(5, 3, wrong)

    def test_verify_unknown_player_rejected(self, schedule):
        assert not schedule.verify_proxy(99, 0, 1)


class TestQueries:
    def test_epoch_of_frame(self, schedule):
        assert schedule.epoch_of_frame(0) == 0
        assert schedule.epoch_of_frame(79) == 1

    def test_proxy_at_frame_consistent_with_epoch(self, schedule):
        assert schedule.proxy_at_frame(3, 45) == schedule.proxy_of(3, 1)

    def test_unknown_player_raises(self, schedule):
        with pytest.raises(KeyError):
            schedule.proxy_of(99, 0)

    def test_negative_epoch_rejected(self, schedule):
        with pytest.raises(ValueError):
            schedule.proxy_of(0, -1)

    def test_clients_of_inverse_of_proxy_of(self, schedule):
        for epoch in (0, 1, 5):
            for proxy in range(16):
                for client in schedule.clients_of(proxy, epoch):
                    assert schedule.proxy_of(client, epoch) == proxy

    def test_every_player_has_exactly_one_proxy(self, schedule):
        table = schedule.assignment_table(2)
        assert len(table) == 16
        assert {a.player_id for a in table} == set(range(16))


class TestHeterogeneity:
    def test_pool_exclusion(self):
        """Low-resource nodes are removed from the proxy pool."""
        schedule = ProxySchedule(
            list(range(8)), proxy_pool=[0, 1, 2, 3]
        )
        for epoch in range(30):
            for player in range(8):
                assert schedule.proxy_of(player, epoch) in {0, 1, 2, 3}

    def test_weighted_nodes_serve_more(self):
        schedule = ProxySchedule(
            list(range(6)),
            pool_weights={0: 5},
        )
        counts = {p: 0 for p in range(6)}
        for epoch in range(600):
            counts[schedule.proxy_of(1, epoch)] += 1
        others_mean = sum(counts[p] for p in range(2, 6)) / 4
        assert counts[0] > 2 * others_mean


class TestChurn:
    def test_without_players_removes_them(self, schedule):
        slim = schedule.without_players({3, 7})
        assert 3 not in slim.roster
        for epoch in range(10):
            for player in slim.roster:
                assert slim.proxy_of(player, epoch) not in {3, 7}

    def test_without_players_keeps_seed(self, schedule):
        slim = schedule.without_players({3})
        assert slim.common_seed == schedule.common_seed


class TestCollusionStatistics:
    def test_honest_proxy_probability_matches_paper(self):
        """"colludes with 3 other cheaters (out of 48 players) ... honest
        proxy in 94 % of the cases (1 − 3/47)"."""
        schedule = ProxySchedule(list(range(48)))
        assert schedule.honest_proxy_probability(4) == pytest.approx(1 - 3 / 47)

    def test_single_cheater_always_honest_proxy(self, schedule):
        assert schedule.honest_proxy_probability(1) == 1.0

    def test_out_of_range_rejected(self, schedule):
        with pytest.raises(ValueError):
            schedule.honest_proxy_probability(17)

    def test_empirical_matches_analytic(self):
        schedule = ProxySchedule(list(range(12)))
        colluders = {0, 1, 2}
        honest = 0
        epochs = 1000
        for epoch in range(epochs):
            if schedule.proxy_of(0, epoch) not in colluders:
                honest += 1
        analytic = schedule.honest_proxy_probability(3)
        assert honest / epochs == pytest.approx(analytic, abs=0.04)
