"""End-state invariant predicates over synthetic session shapes."""

from __future__ import annotations

from types import SimpleNamespace

from repro.core.verification import CheckKind
from repro.mc.invariants import (
    INVARIANTS,
    equivocator_convicted,
    live_nodes,
    membership_agreement,
    no_false_eviction,
    single_kill_credit,
)


def node(roster=(), ratings=(), removed=()):
    return SimpleNamespace(
        membership=SimpleNamespace(
            current_roster=lambda r=tuple(roster): list(r),
            removed=set(removed),
        ),
        metrics=SimpleNamespace(ratings=list(ratings)),
    )


def session(nodes, crashed=(), departures=(), byzantine=()):
    return SimpleNamespace(
        nodes=nodes,
        crashed=set(crashed),
        departures=set(departures),
        byzantine_ids=set(byzantine),
    )


def rating(subject_id, frame, detail, check=CheckKind.KILL):
    return SimpleNamespace(
        subject_id=subject_id, frame=frame, detail=detail, check=check
    )


class TestLiveNodes:
    def test_excludes_crashed_and_departed(self):
        s = session({0: node(), 1: node(), 2: node()}, crashed={1}, departures={2})
        assert set(live_nodes(s)) == {0}

    def test_excludes_byzantine_attackers(self):
        s = session({0: node(), 1: node(), 2: node()}, byzantine={2})
        assert set(live_nodes(s)) == {0, 1}


class TestNoFalseEviction:
    def test_full_rosters_hold(self):
        s = session({0: node((0, 1)), 1: node((0, 1))})
        assert no_false_eviction(s) is None

    def test_missing_live_peer_is_reported(self):
        s = session({0: node((0,)), 1: node((0, 1))})
        message = no_false_eviction(s)
        assert message is not None
        assert "node 0 evicted live player 1" in message

    def test_crashed_peer_may_be_evicted(self):
        s = session({0: node((0, 1)), 1: node((0, 1)), 2: node()}, crashed={2})
        assert no_false_eviction(s) is None


class TestMembershipAgreement:
    def test_identical_rosters_agree(self):
        s = session({0: node((0, 1)), 1: node((1, 0))})  # order-insensitive
        assert membership_agreement(s) is None

    def test_disagreement_is_reported(self):
        s = session({0: node((0, 1)), 1: node((0, 1, 2))})
        message = membership_agreement(s)
        assert message is not None
        assert "disagree" in message

    def test_crashed_nodes_do_not_vote(self):
        s = session({0: node((0, 1)), 1: node((0, 1)), 2: node((9,))}, crashed={2})
        assert membership_agreement(s) is None


class TestSingleKillCredit:
    def test_one_judgement_per_claim(self):
        s = session({0: node(ratings=[rating(1, 10, "consistent kill")])})
        assert single_kill_credit(s) is None

    def test_double_judgement_is_reported(self):
        s = session(
            {
                0: node(
                    ratings=[
                        rating(1, 10, "consistent kill"),
                        rating(1, 10, "distance 3.2 exceeds reach"),
                    ]
                )
            }
        )
        message = single_kill_credit(s)
        assert message is not None
        assert "frame 10" in message and "2 times" in message

    def test_spawn_ratings_do_not_collide_with_claims(self):
        # ProjectileVerifier shares CheckKind.KILL but speaks a disjoint
        # detail vocabulary; a spawn and a claim at the same (subject,
        # frame) are legitimate.
        s = session(
            {
                0: node(
                    ratings=[
                        rating(1, 10, "consistent kill"),
                        rating(1, 10, "consistent projectile spawn"),
                    ]
                )
            }
        )
        assert single_kill_credit(s) is None

    def test_distinct_frames_are_distinct_claims(self):
        s = session(
            {
                0: node(
                    ratings=[
                        rating(1, 10, "consistent kill"),
                        rating(1, 14, "consistent kill"),
                    ]
                )
            }
        )
        assert single_kill_credit(s) is None


class TestEquivocatorConvicted:
    def test_vacuous_without_attackers(self):
        s = session({0: node((0, 1))})
        assert equivocator_convicted(s) is None

    def test_every_live_node_must_remove_the_attacker(self):
        s = session(
            {
                0: node((0, 1), removed={2}),
                1: node((0, 1), removed={2}),
                2: node((0, 1, 2)),
            },
            byzantine={2},
        )
        assert equivocator_convicted(s) is None

    def test_missing_conviction_is_reported(self):
        s = session(
            {0: node((0, 1), removed={2}), 1: node((0, 1, 2))},
            byzantine={2},
        )
        message = equivocator_convicted(s)
        assert message is not None
        assert "node 1 never removed equivocator(s) [2]" in message


def test_registry_names_every_invariant():
    assert set(INVARIANTS) == {
        "no_false_eviction",
        "membership_agreement",
        "no_orphaned_subscription",
        "single_kill_credit",
        "equivocator_convicted",
    }
