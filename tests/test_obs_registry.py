"""Unit tests for the observability registry and the bench-diff engine."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    bench_row,
    diff_rows,
    exponential_buckets,
    format_diff,
    get_registry,
    load_bench_rows,
    use_registry,
    write_bench_json,
)
from repro.obs.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMER,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_distinct_names_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert registry.counter("b").value == 0


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3.5)
        gauge.set(2.0)
        assert gauge.value == 2.0

    def test_add_accumulates(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.add(1.5)
        gauge.add(-0.5)
        assert gauge.value == 1.0


class TestHistogram:
    def test_count_sum_min_max(self):
        histogram = MetricsRegistry().histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.record(value)
        assert histogram.count == 4
        assert histogram.total == pytest.approx(555.5)
        assert histogram.min == 0.5
        assert histogram.max == 500.0
        assert histogram.mean == pytest.approx(138.875)

    def test_percentiles_on_uniform_distribution(self):
        # 1..100 into decade buckets: every percentile is exact up to
        # in-bucket interpolation.
        bounds = tuple(float(b) for b in range(10, 101, 10))
        histogram = MetricsRegistry().histogram("h", bounds=bounds)
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.percentile(0.50) == pytest.approx(50.0, abs=1.0)
        assert histogram.percentile(0.95) == pytest.approx(95.0, abs=1.0)
        assert histogram.percentile(0.99) == pytest.approx(99.0, abs=1.0)
        assert histogram.percentile(1.00) == pytest.approx(100.0)
        assert histogram.percentile(0.0) == pytest.approx(1.0)

    def test_percentile_of_constant_distribution(self):
        histogram = MetricsRegistry().histogram("h", bounds=(1.0, 2.0))
        for _ in range(10):
            histogram.record(1.5)
        for q in (0.5, 0.95, 0.99):
            assert histogram.percentile(q) == pytest.approx(1.5)

    def test_overflow_bucket_clamped_to_observed_max(self):
        histogram = MetricsRegistry().histogram("h", bounds=(1.0,))
        histogram.record(7.0)
        histogram.record(9.0)
        assert histogram.percentile(0.99) <= 9.0

    def test_empty_summary(self):
        assert MetricsRegistry().histogram("h").summary() == {"count": 0}

    def test_summary_keys(self):
        histogram = MetricsRegistry().histogram("h", bounds=(1.0, 2.0))
        histogram.record(1.0)
        summary = histogram.summary()
        assert set(summary) == {
            "count", "sum", "mean", "min", "max", "p50", "p95", "p99",
        }

    def test_timer_records_elapsed_seconds(self):
        histogram = MetricsRegistry().histogram("h", bounds=(0.5, 1.0))
        with histogram.time():
            pass
        assert histogram.count == 1
        assert 0.0 <= histogram.max < 0.5

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h").percentile(1.5)


class TestExponentialBuckets:
    def test_geometric_series(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)


class TestDisabledRegistry:
    """The zero-allocation path: shared null singletons, no clock reads."""

    def test_factories_return_shared_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_COUNTER
        assert registry.counter("b") is NULL_COUNTER
        assert registry.gauge("g") is NULL_GAUGE
        assert registry.histogram("h") is NULL_HISTOGRAM
        assert registry.phase_timer("p") is NULL_TIMER
        assert NULL_HISTOGRAM.time() is NULL_TIMER

    def test_null_instruments_swallow_writes(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc(10)
        registry.gauge("g").set(3.0)
        registry.histogram("h").record(1.0)
        with registry.phase_timer("p"):
            pass
        assert registry.snapshot()["counters"] == {}
        assert registry.snapshot()["gauges"] == {}
        assert registry.snapshot()["histograms"] == {}

    def test_null_path_allocates_nothing_per_call(self):
        registry = MetricsRegistry(enabled=False)
        handles = {registry.counter(f"c{i}") for i in range(100)}
        timers = {registry.phase_timer(f"t{i}") for i in range(100)}
        assert handles == {NULL_COUNTER}
        assert timers == {NULL_TIMER}


class TestSnapshot:
    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.gauge("kbps").set(57.5)
        registry.histogram("lat", bounds=(1.0, 2.0)).record(1.5)
        snapshot = json.loads(registry.to_json())
        assert snapshot["counters"]["events"] == 3
        assert snapshot["gauges"]["kbps"] == 57.5
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_flat_metrics_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.histogram("lat", bounds=(1.0, 2.0)).record(1.5)
        flat = registry.flat_metrics()
        assert flat["events"] == 3
        assert flat["lat.count"] == 1
        assert "lat.p99" in flat

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestGlobalRegistry:
    def test_default_is_disabled(self):
        assert get_registry().enabled is False

    def test_use_registry_swaps_and_restores(self):
        before = get_registry()
        replacement = MetricsRegistry()
        with use_registry(replacement) as active:
            assert active is replacement
            assert get_registry() is replacement
        assert get_registry() is before


class TestBenchArtifacts:
    def test_row_requires_name(self):
        with pytest.raises(ValueError):
            bench_row("")

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench_json(path, bench_row("b1", metrics={"kbps": 10.0}))
        rows = load_bench_rows(path)
        assert rows["b1"]["metrics"] == {"kbps": 10.0}
        assert rows["b1"]["timestamp"]

    def test_load_accepts_bare_row_and_list(self, tmp_path):
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(bench_row("solo")), encoding="utf-8")
        assert set(load_bench_rows(bare)) == {"solo"}
        listed = tmp_path / "list.json"
        listed.write_text(
            json.dumps([bench_row("a"), bench_row("b")]), encoding="utf-8"
        )
        assert set(load_bench_rows(listed)) == {"a", "b"}

    def test_load_rejects_rows_without_bench(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"metrics": {}}]), encoding="utf-8")
        with pytest.raises(ValueError):
            load_bench_rows(bad)

    def test_newest_row_wins_per_bench(self, tmp_path):
        path = tmp_path / "bench.json"
        write_bench_json(
            path,
            [
                bench_row("b", metrics={"kbps": 1.0}),
                bench_row("b", metrics={"kbps": 2.0}),
            ],
        )
        assert load_bench_rows(path)["b"]["metrics"]["kbps"] == 2.0


class TestDiff:
    @staticmethod
    def rows(**metrics):
        return {"b": bench_row("b", metrics=metrics)}

    def test_no_regression_within_threshold(self):
        regressions, others = diff_rows(
            self.rows(kbps=100.0), self.rows(kbps=120.0), threshold=0.25
        )
        assert regressions == []
        assert len(others) == 1

    def test_regression_beyond_threshold(self):
        regressions, _ = diff_rows(
            self.rows(kbps=100.0), self.rows(kbps=130.0), threshold=0.25
        )
        assert len(regressions) == 1
        assert regressions[0].relative_change == pytest.approx(0.30)

    def test_improvement_is_not_a_regression(self):
        regressions, _ = diff_rows(
            self.rows(kbps=100.0), self.rows(kbps=10.0), threshold=0.25
        )
        assert regressions == []

    def test_zero_baseline_growth_is_flagged(self):
        regressions, _ = diff_rows(
            self.rows(fails=0.0), self.rows(fails=3.0), threshold=0.25
        )
        assert len(regressions) == 1

    def test_metrics_on_one_side_only_are_ignored(self):
        regressions, others = diff_rows(
            self.rows(old_only=1.0), self.rows(new_only=99.0)
        )
        assert regressions == [] and others == []

    def test_wall_seconds_excluded_by_default(self):
        old = {"b": bench_row("b", wall_seconds=1.0)}
        new = {"b": bench_row("b", wall_seconds=100.0)}
        assert diff_rows(old, new) == ([], [])
        regressions, _ = diff_rows(old, new, include_wall=True)
        assert [d.metric for d in regressions] == ["wall_seconds"]

    def test_format_diff_mentions_regressions(self):
        regressions, others = diff_rows(
            self.rows(kbps=100.0), self.rows(kbps=200.0)
        )
        text = format_diff(regressions, others)
        assert "REGRESSION" in text and "kbps" in text
