"""Deeper WatchmenNode tests: delta coding, estimates, servers, handoffs."""

import pytest

from repro.core import WatchmenConfig, WatchmenSession
from repro.core.messages import (
    HandoffMessage,
    StateUpdate,
    message_size_bits,
)
from repro.game.avatar import AvatarSnapshot
from repro.game.vector import Vec3
from repro.net.latency import uniform_lan


def collect_messages(session, predicate):
    """Re-run helper: intercept messages matching ``predicate``."""
    collected = []
    original_send = session.network.send

    def spy(src, dst, payload, size):
        if predicate(payload):
            collected.append((src, dst, payload, size))
        return original_send(src, dst, payload, size)

    for node in session.nodes.values():
        node._send_raw = spy
    return collected


class TestDeltaCoding:
    @pytest.fixture(scope="class")
    def updates(self, small_trace, longest_yard):
        session = WatchmenSession(
            small_trace, game_map=longest_yard, latency=uniform_lan(8)
        )
        collected = collect_messages(
            session, lambda m: isinstance(m, StateUpdate)
        )
        session.run(max_frames=60)
        # First-hop updates only (publisher → proxy).
        return [
            (payload, size)
            for src, dst, payload, size in collected
            if src == payload.sender_id
        ], session.config

    def test_keyframes_once_per_second(self, updates):
        messages, _ = updates
        keyframes = [m for m, _ in messages if not m.delta_fields]
        assert keyframes
        for message in keyframes:
            assert message.frame % 20 == 0

    def test_deltas_between_keyframes(self, updates):
        messages, _ = updates
        deltas = [m for m, _ in messages if m.delta_fields]
        assert len(deltas) > len(messages) * 0.8

    def test_delta_metadata_stays_cheap_on_the_wire(self, updates):
        """Updates are self-contained (the full snapshot ships every time,
        so any update is a standalone-verifiable heartbeat); the delta
        annotation may cost at most its one-byte-per-field table codes
        over a keyframe in the binary frame."""
        messages, config = updates
        delta_rows = [(m, s) for m, s in messages if m.delta_fields]
        keyframe_sizes = [s for m, s in messages if not m.delta_fields]
        for message, size in delta_rows:
            # +2 slack: frame/sequence varints may cross a 7-bit size
            # class between the keyframe and a later delta.
            assert size <= max(keyframe_sizes) + len(message.delta_fields) + 2

    def test_delta_smaller_than_keyframe_in_nominal_model(self, updates):
        """The paper-arithmetic size model still prices deltas below full
        updates (what the crypto_overhead bench cross-checks)."""
        messages, config = updates
        delta_bits = [
            message_size_bits(m, config) for m, _ in messages if m.delta_fields
        ]
        keyframe_bits = [
            message_size_bits(m, config)
            for m, _ in messages
            if not m.delta_fields
        ]
        assert max(delta_bits) <= min(keyframe_bits)

    def test_delta_fields_reflect_changes(self, updates):
        messages, _ = updates
        by_sender: dict[int, list] = {}
        for message, _ in messages:
            by_sender.setdefault(message.sender_id, []).append(message)
        checked = 0
        for stream in by_sender.values():
            stream.sort(key=lambda m: m.frame)
            for previous, current in zip(stream, stream[1:]):
                if not current.delta_fields:
                    continue
                if current.frame != previous.frame + 1:
                    continue
                if previous.snapshot.position != current.snapshot.position:
                    assert "position" in current.delta_fields
                    checked += 1
        assert checked > 10


class TestEstimateOf:
    @pytest.fixture()
    def node(self, small_trace, longest_yard):
        session = WatchmenSession(
            small_trace, game_map=longest_yard, latency=uniform_lan(8)
        )
        session.run(max_frames=40)
        return session.nodes[0]

    def test_unknown_player_none(self, node):
        assert node.estimate_of(999, 40) is None

    def test_fresh_snapshot_returned_verbatim(self, node):
        snapshot = node.known[1]
        estimate = node.estimate_of(1, snapshot.frame)
        assert estimate is snapshot

    def test_extrapolates_along_velocity(self, node):
        snapshot = node.known[1]
        if snapshot.velocity.length() == 0:
            pytest.skip("target standing still")
        ahead = node.estimate_of(1, snapshot.frame + 4)
        expected = snapshot.position + snapshot.velocity * (4 * 0.05)
        assert ahead.position.distance_to(expected) < 1e-6

    def test_extrapolation_clamped_at_horizon(self, node):
        snapshot = node.known[1]
        horizon = node.config.guidance_horizon_frames
        at_horizon = node.estimate_of(1, snapshot.frame + horizon)
        way_past = node.estimate_of(1, snapshot.frame + horizon + 100)
        assert at_horizon.position == way_past.position


class TestServerNodeBehaviour:
    @pytest.fixture(scope="class")
    def hybrid_session(self, small_trace, longest_yard):
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(9),
            servers=1,
        )
        collected = collect_messages(session, lambda m: True)
        session.run(max_frames=80)
        return session, collected

    def test_server_sends_no_state_updates_of_its_own(self, hybrid_session):
        session, collected = hybrid_session
        server = session.server_ids[0]
        own = [
            m for src, dst, m, s in collected
            if src == server and getattr(m, "sender_id", None) == server
            and isinstance(m, StateUpdate)
        ]
        assert own == []

    def test_server_forwards_player_updates(self, hybrid_session):
        session, collected = hybrid_session
        server = session.server_ids[0]
        forwarded = [
            m for src, dst, m, s in collected
            if src == server and isinstance(m, StateUpdate)
            and m.sender_id != server
        ]
        assert forwarded

    def test_server_performs_no_handoffs_when_sole_proxy(self, hybrid_session):
        session, collected = hybrid_session
        handoffs = [m for _, _, m, _ in collected if isinstance(m, HandoffMessage)]
        # Sole proxy is always re-elected: nothing to hand off.
        assert handoffs == []

    def test_server_emits_verifications(self, hybrid_session):
        session, _ = hybrid_session
        server_node = session.nodes[session.server_ids[0]]
        assert len(server_node.metrics.ratings) > 0


class TestHandoffContents:
    @pytest.fixture(scope="class")
    def handoffs(self, small_trace, longest_yard):
        config = WatchmenConfig(proxy_period_frames=20)
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            config=config,
            latency=uniform_lan(8),
        )
        collected = collect_messages(
            session, lambda m: isinstance(m, HandoffMessage)
        )
        session.run(max_frames=100)
        return session, [m for _, _, m, _ in collected]

    def test_handoffs_occur(self, handoffs):
        _, messages = handoffs
        assert messages

    def test_summary_chain_depth_bounded(self, handoffs):
        session, messages = handoffs
        for message in messages:
            assert len(message.summaries) <= session.config.handoff_depth

    def test_first_summary_is_senders_own(self, handoffs):
        _, messages = handoffs
        for message in messages:
            if message.summaries:
                assert message.summaries[0].proxy_id == message.sender_id
                assert message.summaries[0].player_id == message.player_id

    def test_predecessor_chain_reaches_depth_two(self, handoffs):
        _, messages = handoffs
        assert any(len(m.summaries) == 2 for m in messages)

    def test_summaries_carry_update_counts(self, handoffs):
        _, messages = handoffs
        counted = [
            s for m in messages for s in m.summaries if s.update_count > 0
        ]
        assert counted

    def test_handoff_size_scales_with_contents(self, handoffs):
        session, messages = handoffs
        sizes = [message_size_bits(m, session.config) for m in messages]
        assert min(sizes) > 0
        if len(set(sizes)) > 1:
            assert max(sizes) > min(sizes)
