"""P-family lint rules against synthetic protocol trees and the real repo."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.protocol import ProtocolSources, run_protocol_rules

REPO_ROOT = Path(__file__).resolve().parent.parent


MESSAGES_TEMPLATE = '''\
from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.extra import Farewell


@dataclass({ping_flags})
class Ping:
    sender_id: int


@dataclass(frozen=True, slots=True)
class Pong:
    sender_id: int


GameMessage = Union[Ping, Pong, Farewell]


def message_size_bits(message: GameMessage, config: object) -> int:
    if isinstance(message, Ping):
        return 8
    elif isinstance(message, {sized_second}):
        return 16
    elif isinstance(message, Farewell):
        return 4
    raise TypeError(type(message).__name__)
'''

EXTRA_MODULE = '''\
from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Farewell:
    sender_id: int
'''

NODE_TEMPLATE = '''\
from __future__ import annotations


class Node:
    def _dispatch_message(self, src: int, message: object) -> None:
        if isinstance(message, Ping):
            pass
        elif isinstance(message, {dispatched_second}):
            pass
        elif isinstance(message, Farewell):
            pass
'''

pytestmark = pytest.mark.lint

WIRE_TEMPLATE = '''\
from __future__ import annotations

MESSAGE_TYPES: dict[str, type] = {{
    "Ping": Ping,
    "{registered_second}": object,
    "Farewell": Farewell,
}}
'''


def make_tree(
    root: Path,
    ping_flags: str = "frozen=True, slots=True",
    dispatched_second: str = "Pong",
    registered_second: str = "Pong",
    sized_second: str = "Pong",
) -> ProtocolSources:
    """A minimal src/repro tree with controllable conformance defects."""
    core = root / "src" / "repro" / "core"
    core.mkdir(parents=True, exist_ok=True)
    (core / "messages.py").write_text(
        MESSAGES_TEMPLATE.format(ping_flags=ping_flags, sized_second=sized_second)
    )
    (core / "extra.py").write_text(EXTRA_MODULE)
    (core / "node.py").write_text(
        NODE_TEMPLATE.format(dispatched_second=dispatched_second)
    )
    (core / "wire.py").write_text(
        WIRE_TEMPLATE.format(registered_second=registered_second)
    )
    return ProtocolSources(
        messages_path=core / "messages.py",
        node_path=core / "node.py",
        wire_path=core / "wire.py",
    )


def _rules(sources: ProtocolSources, root: Path) -> list[str]:
    return sorted(
        v.rule for v in run_protocol_rules(sources, src_root=root / "src")
    )


class TestSyntheticTrees:
    def test_conformant_tree_is_clean(self, tmp_path):
        sources = make_tree(tmp_path)
        assert _rules(sources, tmp_path) == []

    def test_missing_frozen_slots_is_p201(self, tmp_path):
        sources = make_tree(tmp_path, ping_flags="frozen=True")
        assert _rules(sources, tmp_path) == ["P201"]

    def test_plain_dataclass_is_p201(self, tmp_path):
        core = tmp_path / "src" / "repro" / "core"
        make_tree(tmp_path)
        text = (core / "messages.py").read_text()
        (core / "messages.py").write_text(
            text.replace("@dataclass(frozen=True, slots=True)\nclass Pong:",
                         "@dataclass\nclass Pong:")
        )
        sources = ProtocolSources(
            messages_path=core / "messages.py",
            node_path=core / "node.py",
            wire_path=core / "wire.py",
        )
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P201"]
        assert "Pong" in violations[0].message

    def test_missing_dispatch_branch_is_p202(self, tmp_path):
        sources = make_tree(tmp_path, dispatched_second="Other")
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P202"]
        assert "Pong" in violations[0].message
        assert "silently dropped" in violations[0].message

    def test_missing_codec_registration_is_p203(self, tmp_path):
        sources = make_tree(tmp_path, registered_second="Other")
        assert _rules(sources, tmp_path) == ["P203"]

    def test_missing_size_model_is_p204(self, tmp_path):
        sources = make_tree(tmp_path, sized_second="Other")
        assert _rules(sources, tmp_path) == ["P204"]

    def test_union_member_defined_in_imported_module_is_resolved(self, tmp_path):
        # Farewell lives in extra.py (like RemovalProposal in membership.py);
        # breaking ITS dataclass flags must still be caught.
        sources = make_tree(tmp_path)
        extra = tmp_path / "src" / "repro" / "core" / "extra.py"
        extra.write_text(EXTRA_MODULE.replace("frozen=True, slots=True", "frozen=True"))
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P201"]
        assert "Farewell" in violations[0].message
        assert violations[0].path.endswith("extra.py")

    def test_multiple_defects_all_reported(self, tmp_path):
        sources = make_tree(
            tmp_path,
            ping_flags="frozen=True",
            dispatched_second="Other",
            registered_second="Other",
            sized_second="Other",
        )
        assert _rules(sources, tmp_path) == ["P201", "P202", "P203", "P204"]


class TestRealRepo:
    def test_repo_protocol_is_conformant(self):
        core = REPO_ROOT / "src" / "repro" / "core"
        sources = ProtocolSources(
            messages_path=core / "messages.py",
            node_path=core / "node.py",
            wire_path=core / "wire.py",
        )
        assert sources.exists()
        assert run_protocol_rules(sources, src_root=REPO_ROOT / "src") == []

    def test_repo_union_has_all_eight_messages(self):
        import ast

        from repro.lint.protocol import union_member_names

        tree = ast.parse((REPO_ROOT / "src/repro/core/messages.py").read_text())
        members = union_member_names(tree)
        assert "StateUpdate" in members
        assert "RemovalProposal" in members  # the imported-member case
        assert len(members) == 8
