"""P-family lint rules against synthetic protocol trees and the real repo."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.protocol import ProtocolSources, run_protocol_rules

REPO_ROOT = Path(__file__).resolve().parent.parent


MESSAGES_TEMPLATE = '''\
from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.extra import Farewell


@dataclass({ping_flags})
class Ping:
    sender_id: int


@dataclass(frozen=True, slots=True)
class Pong:
    sender_id: int


GameMessage = Union[Ping, Pong, Farewell]


def message_size_bits(message: GameMessage, config: object) -> int:
    if isinstance(message, Ping):
        return 8
    elif isinstance(message, {sized_second}):
        return 16
    elif isinstance(message, Farewell):
        return 4
    raise TypeError(type(message).__name__)
'''

EXTRA_MODULE = '''\
from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Farewell:
    sender_id: int
'''

NODE_TEMPLATE = '''\
from __future__ import annotations


class Node:
    def _dispatch_message(self, src: int, message: object) -> None:
        if isinstance(message, Ping):
            pass
        elif isinstance(message, {dispatched_second}):
            pass
        elif isinstance(message, Farewell):
            pass
'''

pytestmark = pytest.mark.lint

WIRE_TEMPLATE = '''\
from __future__ import annotations

MESSAGE_TYPES: dict[str, type] = {{
    "Ping": Ping,
    "{registered_second}": object,
    "Farewell": Farewell,
}}
'''


def make_tree(
    root: Path,
    ping_flags: str = "frozen=True, slots=True",
    dispatched_second: str = "Pong",
    registered_second: str = "Pong",
    sized_second: str = "Pong",
) -> ProtocolSources:
    """A minimal src/repro tree with controllable conformance defects."""
    core = root / "src" / "repro" / "core"
    core.mkdir(parents=True, exist_ok=True)
    (core / "messages.py").write_text(
        MESSAGES_TEMPLATE.format(ping_flags=ping_flags, sized_second=sized_second)
    )
    (core / "extra.py").write_text(EXTRA_MODULE)
    (core / "node.py").write_text(
        NODE_TEMPLATE.format(dispatched_second=dispatched_second)
    )
    (core / "wire.py").write_text(
        WIRE_TEMPLATE.format(registered_second=registered_second)
    )
    return ProtocolSources(
        messages_path=core / "messages.py",
        node_path=core / "node.py",
        wire_path=core / "wire.py",
    )


def _rules(sources: ProtocolSources, root: Path) -> list[str]:
    return sorted(
        v.rule for v in run_protocol_rules(sources, src_root=root / "src")
    )


class TestSyntheticTrees:
    def test_conformant_tree_is_clean(self, tmp_path):
        sources = make_tree(tmp_path)
        assert _rules(sources, tmp_path) == []

    def test_missing_frozen_slots_is_p201(self, tmp_path):
        sources = make_tree(tmp_path, ping_flags="frozen=True")
        assert _rules(sources, tmp_path) == ["P201"]

    def test_plain_dataclass_is_p201(self, tmp_path):
        core = tmp_path / "src" / "repro" / "core"
        make_tree(tmp_path)
        text = (core / "messages.py").read_text()
        (core / "messages.py").write_text(
            text.replace("@dataclass(frozen=True, slots=True)\nclass Pong:",
                         "@dataclass\nclass Pong:")
        )
        sources = ProtocolSources(
            messages_path=core / "messages.py",
            node_path=core / "node.py",
            wire_path=core / "wire.py",
        )
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P201"]
        assert "Pong" in violations[0].message

    def test_missing_dispatch_branch_is_p202(self, tmp_path):
        sources = make_tree(tmp_path, dispatched_second="Other")
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P202"]
        assert "Pong" in violations[0].message
        assert "silently dropped" in violations[0].message

    def test_missing_codec_registration_is_p203(self, tmp_path):
        sources = make_tree(tmp_path, registered_second="Other")
        assert _rules(sources, tmp_path) == ["P203"]

    def test_missing_size_model_is_p204(self, tmp_path):
        sources = make_tree(tmp_path, sized_second="Other")
        assert _rules(sources, tmp_path) == ["P204"]

    def test_union_member_defined_in_imported_module_is_resolved(self, tmp_path):
        # Farewell lives in extra.py (like RemovalProposal in membership.py);
        # breaking ITS dataclass flags must still be caught.
        sources = make_tree(tmp_path)
        extra = tmp_path / "src" / "repro" / "core" / "extra.py"
        extra.write_text(EXTRA_MODULE.replace("frozen=True, slots=True", "frozen=True"))
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P201"]
        assert "Farewell" in violations[0].message
        assert violations[0].path.endswith("extra.py")

    def test_multiple_defects_all_reported(self, tmp_path):
        sources = make_tree(
            tmp_path,
            ping_flags="frozen=True",
            dispatched_second="Other",
            registered_second="Other",
            sized_second="Other",
        )
        assert _rules(sources, tmp_path) == ["P201", "P202", "P203", "P204"]


ACKABLE_SUFFIX = '''\


@dataclass(frozen=True, slots=True)
class AckMessage:
    sender_id: int


ACKABLE_TYPES = ({entries})
'''


def make_ackable_tree(
    root: Path, entries: str, ack_in_union: bool = True
) -> ProtocolSources:
    """The conformant tree plus an AckMessage and an ACKABLE_TYPES registry."""
    sources = make_tree(root)
    messages = root / "src" / "repro" / "core" / "messages.py"
    text = messages.read_text()
    if ack_in_union:
        text = text.replace(
            "GameMessage = Union[Ping, Pong, Farewell]",
            "GameMessage = Union[Ping, Pong, Farewell, AckMessage]",
        )
        text = text.replace(
            "    elif isinstance(message, Farewell):\n        return 4\n",
            "    elif isinstance(message, Farewell):\n        return 4\n"
            "    elif isinstance(message, AckMessage):\n        return 2\n",
        )
        node = root / "src" / "repro" / "core" / "node.py"
        node.write_text(
            node.read_text().replace(
                "        elif isinstance(message, Farewell):\n            pass\n",
                "        elif isinstance(message, Farewell):\n            pass\n"
                "        elif isinstance(message, AckMessage):\n            pass\n",
            )
        )
        wire = root / "src" / "repro" / "core" / "wire.py"
        wire.write_text(
            wire.read_text().replace(
                '    "Farewell": Farewell,\n',
                '    "Farewell": Farewell,\n    "AckMessage": object,\n',
            )
        )
    messages.write_text(text + ACKABLE_SUFFIX.format(entries=entries))
    return sources


class TestAckableRegistry:
    def test_consistent_registry_is_clean(self, tmp_path):
        sources = make_ackable_tree(tmp_path, entries="Ping, Pong")
        assert _rules(sources, tmp_path) == []

    def test_no_registry_skips_p205(self, tmp_path):
        # Fixture trees predating reliable delivery must stay clean.
        sources = make_tree(tmp_path)
        assert _rules(sources, tmp_path) == []

    def test_ack_inside_registry_is_p205(self, tmp_path):
        sources = make_ackable_tree(tmp_path, entries="Ping, AckMessage")
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P205"]
        assert "loop" in violations[0].message

    def test_nonmember_in_registry_is_p205(self, tmp_path):
        sources = make_ackable_tree(tmp_path, entries="Ping, Bogus")
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P205"]
        assert "Bogus" in violations[0].message

    def test_registry_without_ack_in_union_is_p205(self, tmp_path):
        sources = make_ackable_tree(
            tmp_path, entries="Ping, Pong", ack_in_union=False
        )
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P205"]
        assert "union" in violations[0].message


TAGS_SUFFIX = '''\


MESSAGE_TAGS: dict[str, int] = {{
    "Ping": {ping_tag},
    "{tagged_second}": {second_tag},
    "Farewell": 3,
}}
'''


def make_tagged_tree(
    root: Path,
    ping_tag: str = "1",
    tagged_second: str = "Pong",
    second_tag: str = "2",
) -> ProtocolSources:
    """The conformant tree plus a MESSAGE_TAGS table with injectable defects."""
    sources = make_tree(root)
    wire = root / "src" / "repro" / "core" / "wire.py"
    wire.write_text(
        wire.read_text()
        + TAGS_SUFFIX.format(
            ping_tag=ping_tag, tagged_second=tagged_second, second_tag=second_tag
        )
    )
    return sources


class TestTagTable:
    def test_lockstep_table_is_clean(self, tmp_path):
        sources = make_tagged_tree(tmp_path)
        assert _rules(sources, tmp_path) == []

    def test_no_table_skips_p206(self, tmp_path):
        # Fixture trees predating the binary codec must stay clean.
        sources = make_tree(tmp_path)
        assert _rules(sources, tmp_path) == []

    def test_registered_type_without_tag_is_p206(self, tmp_path):
        sources = make_tagged_tree(tmp_path, tagged_second="Farewell")
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        # Pong untagged fires once; the duplicate Farewell key is legal AST.
        assert [v.rule for v in violations] == ["P206"]
        assert "Pong" in violations[0].message
        assert "cannot frame" in violations[0].message

    def test_tag_for_unregistered_name_is_p206(self, tmp_path):
        sources = make_tagged_tree(tmp_path, tagged_second="Bogus")
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        rules = [v.rule for v in violations]
        assert rules == ["P206", "P206"]  # Pong untagged + Bogus dead tag
        assert any("Bogus" in v.message for v in violations)

    def test_duplicate_tag_value_is_p206(self, tmp_path):
        sources = make_tagged_tree(tmp_path, second_tag="1")
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P206"]
        assert "ambiguous" in violations[0].message

    def test_out_of_range_tag_is_p206(self, tmp_path):
        sources = make_tagged_tree(tmp_path, second_tag="256")
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P206"]
        assert "single byte" in violations[0].message

    def test_non_integer_tag_is_p206(self, tmp_path):
        sources = make_tagged_tree(tmp_path, second_tag='"2"')
        violations = run_protocol_rules(sources, src_root=tmp_path / "src")
        assert [v.rule for v in violations] == ["P206"]
        assert "integer literal" in violations[0].message


class TestRealRepo:
    def test_repo_protocol_is_conformant(self):
        core = REPO_ROOT / "src" / "repro" / "core"
        sources = ProtocolSources(
            messages_path=core / "messages.py",
            node_path=core / "node.py",
            wire_path=core / "wire.py",
        )
        assert sources.exists()
        assert run_protocol_rules(sources, src_root=REPO_ROOT / "src") == []

    def test_repo_union_has_all_ten_messages(self):
        import ast

        from repro.lint.protocol import union_member_names

        tree = ast.parse((REPO_ROOT / "src/repro/core/messages.py").read_text())
        members = union_member_names(tree)
        assert "StateUpdate" in members
        assert "RemovalProposal" in members  # the imported-member case
        assert "AckMessage" in members  # the reliable-delivery receipt
        assert "MisbehaviorEvidence" in members  # the equivocation proof
        assert len(members) == 10


class TestRealRepoMutations:
    """Deleting AckMessage from any of its registration points is caught.

    Each test copies the real protocol triple, surgically removes one
    registration, and asserts the corresponding rule fires — the
    regression the P-family exists for: a message type that "works" in
    review but is silently unroutable, unencodable, or unsized.
    """

    def _mutated(self, tmp_path, filename: str, old: str, new: str):
        core = REPO_ROOT / "src" / "repro" / "core"
        work = tmp_path / "core"
        work.mkdir()
        for name in ("messages.py", "node.py", "wire.py"):
            text = (core / name).read_text()
            if name == filename:
                assert old in text, f"mutation anchor missing in {name}"
                text = text.replace(old, new)
            (work / name).write_text(text)
        sources = ProtocolSources(
            messages_path=work / "messages.py",
            node_path=work / "node.py",
            wire_path=work / "wire.py",
        )
        # src_root stays the real tree so imported members still resolve.
        return run_protocol_rules(sources, src_root=REPO_ROOT / "src")

    def test_removing_ack_from_union_is_p205(self, tmp_path):
        violations = self._mutated(
            tmp_path,
            "messages.py",
            "    RemovalProposal,\n    AckMessage,\n    MisbehaviorEvidence,\n]",
            "    RemovalProposal,\n    MisbehaviorEvidence,\n]",
        )
        assert [v.rule for v in violations] == ["P205"]
        assert "union" in violations[0].message

    def test_removing_ack_dispatch_branch_is_p202(self, tmp_path):
        violations = self._mutated(
            tmp_path,
            "node.py",
            "        elif isinstance(message, AckMessage):\n"
            "            self._on_ack(src, message)\n",
            "",
        )
        assert [v.rule for v in violations] == ["P202"]
        assert "AckMessage" in violations[0].message

    def test_removing_ack_codec_registration_is_p203(self, tmp_path):
        violations = self._mutated(
            tmp_path,
            "wire.py",
            '    "AckMessage": AckMessage,\n',
            "",
        )
        # P206 rides along: the type's wire tag is now dead surface.
        assert [v.rule for v in violations] == ["P203", "P206"]
        assert all("AckMessage" in v.message for v in violations)

    def test_removing_ack_wire_tag_is_p206(self, tmp_path):
        violations = self._mutated(
            tmp_path,
            "wire.py",
            '    "AckMessage": 9,\n',
            "",
        )
        assert [v.rule for v in violations] == ["P206"]
        assert "AckMessage" in violations[0].message

    def test_duplicating_a_wire_tag_is_p206(self, tmp_path):
        violations = self._mutated(
            tmp_path,
            "wire.py",
            '    "AckMessage": 9,\n',
            '    "AckMessage": 5,\n',
        )
        assert [v.rule for v in violations] == ["P206"]
        assert "ambiguous" in violations[0].message

    def test_removing_ack_size_branch_is_p204(self, tmp_path):
        violations = self._mutated(
            tmp_path,
            "messages.py",
            "    elif isinstance(message, AckMessage):\n"
            "        body = config.subscription_bits  # tiny signed receipt\n",
            "",
        )
        assert [v.rule for v in violations] == ["P204"]
        assert "AckMessage" in violations[0].message

    def test_adding_ack_to_ackable_types_is_p205(self, tmp_path):
        violations = self._mutated(
            tmp_path,
            "messages.py",
            "ACKABLE_TYPES: tuple[type, ...] = (\n    SubscriptionRequest,",
            "ACKABLE_TYPES: tuple[type, ...] = (\n    AckMessage,"
            "\n    SubscriptionRequest,",
        )
        assert [v.rule for v in violations] == ["P205"]
        assert "loop" in violations[0].message
