"""Exactness gate for the interest-management fast path.

The optimised pipeline (spatial grid LOS, per-frame symmetric LOS cache,
hoisted :class:`ObserverFrame` state, ``heapq.nlargest`` top-k) must be
**bit-identical** to :func:`compute_sets_reference`, the retained naive
implementation.  These tests enforce that contract:

- a hypothesis property compares ``compute_all_sets`` against the reference
  across random maps, positions, yaws and player counts;
- the standalone ``in_vision_cone`` / ``attention_score`` helpers are
  checked against the reference scalar math;
- a golden determinism test runs the full simulator with the fast paths
  disabled (naive GameMap methods monkeypatched in) and asserts the
  serialized trace is byte-identical to the fast run.
"""

import math
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.chaos import default_scenarios, run_chaos

from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import Box, GameMap, make_corridors, make_longest_yard
from repro.game.interest import (
    InteractionRecency,
    InterestConfig,
    LosCache,
    ObserverFrame,
    _attention_score_reference,
    _in_vision_cone_reference,
    attention_score,
    compute_all_sets,
    compute_sets,
    compute_sets_reference,
    in_vision_cone,
)
from repro.game.simulator import generate_trace
from repro.game.vector import Vec3


def _snapshot(pid: int, pos: Vec3, yaw: float, alive: bool = True) -> AvatarSnapshot:
    return AvatarSnapshot(
        player_id=pid, frame=0, position=pos, velocity=Vec3(), yaw=yaw,
        health=100, armor=0, weapon="machinegun", ammo=10, alive=alive,
    )


def _random_world(seed: int, num_players: int, num_boxes: int):
    rng = Random(seed)
    solids = []
    for index in range(num_boxes):
        x, y = rng.uniform(-1800, 1800), rng.uniform(-1800, 1800)
        z = rng.uniform(-100, 300)
        hx, hy, hz = rng.uniform(20, 500), rng.uniform(20, 500), rng.uniform(20, 250)
        solids.append(
            Box(Vec3(x - hx, y - hy, z - hz), Vec3(x + hx, y + hy, z + hz),
                name=f"b{index}")
        )
    game_map = GameMap(
        name="prop",
        bounds_min=Vec3(-3000, -3000, -1000),
        bounds_max=Vec3(3000, 3000, 1000),
        solids=solids,
        respawn_points=[Vec3(0.0, 0.0, 0.0)],
    )
    snapshots = {}
    for pid in range(num_players):
        snapshots[pid] = _snapshot(
            pid,
            Vec3(rng.uniform(-2500, 2500), rng.uniform(-2500, 2500),
                 rng.uniform(-200, 500)),
            rng.uniform(-math.pi, math.pi),
            alive=rng.random() > 0.1,
        )
    recency = InteractionRecency()
    for _ in range(num_players * 2):
        a, b = rng.randrange(num_players), rng.randrange(num_players)
        if a != b:
            recency.record(a, b, rng.randrange(0, 50))
    return game_map, snapshots, recency


class TestBatchedEqualsReference:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=14),
        st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_compute_all_sets_matches_reference(self, seed, players, boxes):
        game_map, snapshots, recency = _random_world(seed, players, boxes)
        config = InterestConfig()
        frame = seed % 97
        fast = compute_all_sets(snapshots, game_map, frame, config, recency)
        assert set(fast) == set(snapshots)
        for pid in snapshots:
            reference = compute_sets_reference(
                snapshots[pid], snapshots, game_map, frame, config, recency
            )
            assert fast[pid] == reference

    def test_compute_sets_matches_reference_with_shared_cache(self):
        game_map, snapshots, recency = _random_world(424242, 10, 8)
        config = InterestConfig()
        los = LosCache(game_map)
        los.begin_frame(3)
        for pid in snapshots:
            via_cache = compute_sets(
                snapshots[pid], snapshots, game_map, 3, config, recency, los=los
            )
            reference = compute_sets_reference(
                snapshots[pid], snapshots, game_map, 3, config, recency
            )
            assert via_cache == reference

    def test_observers_subset_matches_full_roster(self):
        game_map, snapshots, recency = _random_world(7, 12, 6)
        subset = [pid for pid in snapshots if pid % 2 == 0]
        partial = compute_all_sets(
            snapshots, game_map, 0, recency=recency, observers=subset
        )
        full = compute_all_sets(snapshots, game_map, 0, recency=recency)
        assert list(partial) == subset
        for pid in subset:
            assert partial[pid] == full[pid]

    def test_corridor_map_heavy_occlusion_matches_reference(self):
        game_map = make_corridors()
        rng = Random(5)
        snapshots = {
            pid: _snapshot(
                pid,
                Vec3(rng.uniform(-1500, 1500), rng.uniform(-400, 400), 0.0),
                rng.uniform(-math.pi, math.pi),
            )
            for pid in range(16)
        }
        fast = compute_all_sets(snapshots, game_map, 0)
        for pid in snapshots:
            assert fast[pid] == compute_sets_reference(
                snapshots[pid], snapshots, game_map, 0
            )


class TestObserverFrameScalarMath:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_cone_and_attention_match_reference(self, seed):
        rng = Random(seed)
        config = InterestConfig()
        observer = _snapshot(
            0,
            Vec3(rng.uniform(-2000, 2000), rng.uniform(-2000, 2000),
                 rng.uniform(-100, 400)),
            rng.uniform(-math.pi, math.pi),
        )
        target = _snapshot(
            1,
            Vec3(rng.uniform(-2000, 2000), rng.uniform(-2000, 2000),
                 rng.uniform(-100, 400)),
            rng.uniform(-math.pi, math.pi),
        )
        recency = InteractionRecency()
        recency.record(0, 1, 2)
        oframe = ObserverFrame(observer, config)
        for slack in (True, False):
            assert oframe.in_vision_cone(target, slack) == _in_vision_cone_reference(
                observer, target, config, slack
            )
            assert in_vision_cone(
                observer, target, config, slack
            ) == _in_vision_cone_reference(observer, target, config, slack)
        assert oframe.attention_score(target, 10, recency) == (
            _attention_score_reference(observer, target, 10, config, recency)
        )
        assert attention_score(observer, target, 10, config, recency) == (
            _attention_score_reference(observer, target, 10, config, recency)
        )

    def test_degenerate_zero_distance_pair(self):
        config = InterestConfig()
        pos = Vec3(10.0, 20.0, 30.0)
        a, b = _snapshot(0, pos, 0.5), _snapshot(1, pos, -0.5)
        assert in_vision_cone(a, b, config) == _in_vision_cone_reference(a, b, config)
        assert attention_score(a, b, 0, config) == _attention_score_reference(
            a, b, 0, config
        )

    def test_observer_frame_reuse_across_targets(self):
        config = InterestConfig()
        observer = _snapshot(0, Vec3(0, 0, 0), 0.3)
        oframe = ObserverFrame(observer, config)
        rng = Random(2)
        for pid in range(1, 30):
            target = _snapshot(
                pid,
                Vec3(rng.uniform(-2600, 2600), rng.uniform(-2600, 2600), 0.0),
                0.0,
            )
            assert in_vision_cone(
                observer, target, config, observer_frame=oframe
            ) == _in_vision_cone_reference(observer, target, config)


class TestLosCache:
    def test_symmetric_queries_hit(self):
        game_map = make_longest_yard()
        cache = LosCache(game_map)
        cache.begin_frame(0)
        a, b = Vec3(-900.0, -900.0, 100.0), Vec3(900.0, 900.0, 100.0)
        first = cache.line_of_sight(a, b)
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.line_of_sight(b, a) == first  # symmetric hit
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.line_of_sight(a, b) == first
        assert cache.hits == 2

    def test_false_results_are_cached_too(self):
        game_map = make_longest_yard()
        # Straight through the east pillar (x in [220, 300], z in [0, 160]).
        a = Vec3(150.0, 0.0, 80.0)
        b = Vec3(370.0, 0.0, 80.0)
        assert not game_map.line_of_sight(a, b)
        cache = LosCache(game_map)
        cache.begin_frame(0)
        assert cache.line_of_sight(a, b) is False
        assert cache.line_of_sight(b, a) is False
        assert cache.hits == 1  # a cached False must count as a hit

    def test_begin_frame_clears_between_frames_only(self):
        game_map = make_longest_yard()
        cache = LosCache(game_map)
        cache.begin_frame(1)
        a, b = Vec3(-500.0, 0.0, 90.0), Vec3(500.0, 0.0, 90.0)
        cache.line_of_sight(a, b)
        cache.begin_frame(1)  # same frame: memo kept
        cache.line_of_sight(a, b)
        assert cache.hits == 1
        cache.begin_frame(2)  # new frame: memo dropped
        cache.line_of_sight(a, b)
        assert cache.misses == 2


class TestTopKSelection:
    def test_nlargest_matches_full_sort_on_ties(self):
        # Equidistant targets straight ahead -> identical attention scores;
        # the fast top-k must pick the same members as the reference sort.
        config = InterestConfig()
        observer = _snapshot(0, Vec3(0.0, 0.0, 0.0), 0.0)
        snapshots = {0: observer}
        for pid in range(1, 12):
            angle = 2.0 * math.pi * pid / 11.0
            snapshots[pid] = _snapshot(
                pid, Vec3(300.0 * math.cos(angle), 300.0 * math.sin(angle), 0.0), 0.0
            )
        game_map = GameMap(
            name="open",
            bounds_min=Vec3(-1000, -1000, -100),
            bounds_max=Vec3(1000, 1000, 100),
            solids=[],
            respawn_points=[Vec3(0.0, 0.0, 0.0)],
        )
        fast = compute_all_sets(snapshots, game_map, 0, config)
        for pid in snapshots:
            assert fast[pid] == compute_sets_reference(
                snapshots[pid], snapshots, game_map, 0, config
            )


class TestSimulatorByteIdentity:
    def test_trace_bytes_identical_with_fast_paths_disabled(self, tmp_path, monkeypatch):
        """Golden determinism gate: naive-vs-fast whole-simulator runs.

        With GameMap's fast methods replaced by the naive references at the
        class level (the LosCache delegates to the patched method, so every
        layer follows), the simulator must produce a byte-identical trace.
        """
        fast = generate_trace(num_players=8, num_frames=80, seed=42,
                              npc_fraction=0.25)
        fast_path = tmp_path / "fast.jsonl"
        fast.save_jsonl(fast_path)

        monkeypatch.setattr(GameMap, "line_of_sight", GameMap.line_of_sight_naive)
        monkeypatch.setattr(GameMap, "floor_height", GameMap.floor_height_naive)
        naive = generate_trace(num_players=8, num_frames=80, seed=42,
                               npc_fraction=0.25)
        naive_path = tmp_path / "naive.jsonl"
        naive.save_jsonl(naive_path)

        assert fast_path.read_bytes() == naive_path.read_bytes()

    @pytest.mark.perf
    def test_chaos_harness_results_identical_with_fast_paths_disabled(
        self, monkeypatch
    ):
        """Chaos-harness reuse: the full protocol pipeline (sessions, proxies,
        failover, verification) produces identical recovery metrics whether
        the geometry fast paths are active or not."""
        scenarios = (default_scenarios()[0],)
        fast = run_chaos(players=6, frames=120, seed=3, scenarios=scenarios)
        monkeypatch.setattr(GameMap, "line_of_sight", GameMap.line_of_sight_naive)
        monkeypatch.setattr(GameMap, "floor_height", GameMap.floor_height_naive)
        naive = run_chaos(players=6, frames=120, seed=3, scenarios=scenarios)
        assert fast == naive
