"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.game import GameTrace


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "t.jsonl"
    code = main([
        "simulate", "--players", "6", "--frames", "60", "--seed", "3",
        "--out", str(path),
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_simulate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])


class TestSimulate:
    def test_writes_loadable_trace(self, trace_path):
        trace = GameTrace.load_jsonl(trace_path)
        assert trace.num_players == 6
        assert trace.num_frames == 60

    def test_npc_fraction_flag(self, tmp_path, capsys):
        path = tmp_path / "npc.jsonl"
        assert main([
            "simulate", "--players", "4", "--frames", "30",
            "--npc-fraction", "1.0", "--out", str(path),
        ]) == 0
        assert "recorded 4 players" in capsys.readouterr().out

    def test_corridors_map(self, tmp_path):
        path = tmp_path / "c.jsonl"
        assert main([
            "simulate", "--players", "4", "--frames", "30",
            "--map", "corridors", "--out", str(path),
        ]) == 0
        assert GameTrace.load_jsonl(path).map_name == "corridors"


class TestReplay:
    def test_replay_prints_report(self, trace_path, capsys):
        assert main(["replay", str(trace_path), "--latency", "lan"]) == 0
        out = capsys.readouterr().out
        assert "update ages" in out
        assert "stale" in out

    def test_replay_with_server(self, trace_path, capsys):
        assert main(["replay", str(trace_path), "--servers", "1"]) == 0
        assert "server" in capsys.readouterr().out


class TestExperiment:
    def test_fig1(self, capsys):
        assert main([
            "experiment", "fig1", "--players", "6", "--frames", "60",
        ]) == 0
        assert "top-10%" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main([
            "experiment", "fig4", "--players", "6", "--frames", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "watchmen" in out and "donnybrook" in out

    def test_churn(self, capsys):
        assert main([
            "experiment", "churn", "--players", "6", "--frames", "80",
        ]) == 0
        assert "IS turnover" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main([
            "experiment", "fig7", "--players", "6", "--frames", "80",
        ]) == 0
        out = capsys.readouterr().out
        assert "king" in out and "peerwise" in out
