"""Tests for the command-line interface."""

import json

import pytest

from repro import __version__
from repro.cli import build_parser, main
from repro.game import GameTrace
from repro.obs import bench_row, write_bench_json


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "t.jsonl"
    code = main([
        "simulate", "--players", "6", "--frames", "60", "--seed", "3",
        "--out", str(path),
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_simulate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate"])


class TestSimulate:
    def test_writes_loadable_trace(self, trace_path):
        trace = GameTrace.load_jsonl(trace_path)
        assert trace.num_players == 6
        assert trace.num_frames == 60

    def test_npc_fraction_flag(self, tmp_path, capsys):
        path = tmp_path / "npc.jsonl"
        assert main([
            "simulate", "--players", "4", "--frames", "30",
            "--npc-fraction", "1.0", "--out", str(path),
        ]) == 0
        assert "recorded 4 players" in capsys.readouterr().out

    def test_corridors_map(self, tmp_path):
        path = tmp_path / "c.jsonl"
        assert main([
            "simulate", "--players", "4", "--frames", "30",
            "--map", "corridors", "--out", str(path),
        ]) == 0
        assert GameTrace.load_jsonl(path).map_name == "corridors"


class TestReplay:
    def test_replay_prints_report(self, trace_path, capsys):
        assert main(["replay", str(trace_path), "--latency", "lan"]) == 0
        out = capsys.readouterr().out
        assert "update ages" in out
        assert "stale" in out

    def test_replay_with_server(self, trace_path, capsys):
        assert main(["replay", str(trace_path), "--servers", "1"]) == 0
        assert "server" in capsys.readouterr().out


class TestVersion:
    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_module_entrypoint_matches(self):
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ, PYTHONPATH=src)
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert result.returncode == 0
        assert f"repro {__version__}" in result.stdout


class TestMetrics:
    def test_metrics_summary(self, capsys):
        assert main([
            "metrics", "--players", "6", "--frames", "40", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "frame time" in out
        assert "bandwidth" in out

    def test_metrics_json_stdout(self, capsys):
        assert main([
            "metrics", "--players", "6", "--frames", "40", "--json", "-",
        ]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["histograms"]["session.frame_seconds"]["count"] == 40
        assert snapshot["counters"]["net.sent.StateUpdate.count"] > 0
        assert snapshot["gauges"]["net.upload_kbps.mean"] > 0

    def test_metrics_json_file(self, tmp_path):
        out = tmp_path / "metrics.json"
        assert main([
            "metrics", "--players", "6", "--frames", "40",
            "--json", str(out),
        ]) == 0
        snapshot = json.loads(out.read_text(encoding="utf-8"))
        assert snapshot["enabled"] is True


class TestBenchDiff:
    @staticmethod
    def write(path, **metrics):
        write_bench_json(path, bench_row("b", metrics=metrics))

    def test_identical_artifacts_pass(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self.write(old, kbps=100.0)
        self.write(new, kbps=100.0)
        assert main(["bench-diff", str(old), str(new)]) == 0

    def test_regression_fails(self, tmp_path, capsys):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self.write(old, kbps=100.0)
        self.write(new, kbps=160.0)
        assert main(["bench-diff", str(old), str(new)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        old, new = tmp_path / "old.json", tmp_path / "new.json"
        self.write(old, kbps=100.0)
        self.write(new, kbps=160.0)
        assert main([
            "bench-diff", str(old), str(new), "--threshold", "0.7",
        ]) == 0

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        self.write(old, kbps=1.0)
        assert main(["bench-diff", str(old), str(tmp_path / "nope.json")]) == 2
        assert "bench-diff" in capsys.readouterr().err


class TestExperiment:
    def test_fig1(self, capsys):
        assert main([
            "experiment", "fig1", "--players", "6", "--frames", "60",
        ]) == 0
        assert "top-10%" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main([
            "experiment", "fig4", "--players", "6", "--frames", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "watchmen" in out and "donnybrook" in out

    def test_churn(self, capsys):
        assert main([
            "experiment", "churn", "--players", "6", "--frames", "80",
        ]) == 0
        assert "IS turnover" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main([
            "experiment", "fig7", "--players", "6", "--frames", "80",
        ]) == 0
        out = capsys.readouterr().out
        assert "king" in out and "peerwise" in out
