"""Unit tests for bandwidth accounting."""

import pytest

from repro.net.bandwidth import BandwidthMeter, UploadBudget


class TestMeter:
    def test_upload_kbps(self):
        meter = BandwidthMeter()
        meter.record_send(0, 12_500, time=1.0)  # 100 kbit over 1 s
        assert meter.upload_kbps(0) == pytest.approx(100.0)

    def test_download_kbps(self):
        meter = BandwidthMeter()
        meter.record_receive(1, 25_000, time=2.0)
        assert meter.download_kbps(1) == pytest.approx(100.0)

    def test_mean_and_max(self):
        meter = BandwidthMeter()
        meter.record_send(0, 1000, 1.0)
        meter.record_send(1, 3000, 1.0)
        assert meter.max_upload_kbps() == pytest.approx(24.0)
        assert meter.mean_upload_kbps() == pytest.approx(16.0)

    def test_total(self):
        meter = BandwidthMeter()
        meter.record_send(0, 1000, 1.0)
        meter.record_send(1, 1000, 1.0)
        assert meter.total_kbps() == pytest.approx(16.0)

    def test_empty_meter(self):
        meter = BandwidthMeter()
        assert meter.mean_upload_kbps() == 0.0
        assert meter.max_upload_kbps() == 0.0

    def test_message_counters(self):
        meter = BandwidthMeter()
        meter.record_send(0, 10, 0.5)
        meter.record_send(0, 10, 0.6)
        meter.record_receive(0, 10, 0.7)
        usage = meter.usage(0)
        assert usage.sent_messages == 2
        assert usage.received_messages == 1

    def test_node_ids_sorted(self):
        meter = BandwidthMeter()
        meter.record_send(5, 10, 0.1)
        meter.record_send(2, 10, 0.1)
        assert meter.node_ids() == [2, 5]


class TestBudget:
    def test_allows_within_budget(self):
        budget = UploadBudget(1000)
        assert budget.try_send(0, 500, 0.0)
        assert budget.try_send(0, 400, 0.1)

    def test_blocks_over_budget(self):
        budget = UploadBudget(1000)
        assert budget.try_send(0, 800, 0.0)
        assert not budget.try_send(0, 300, 0.1)

    def test_window_slides(self):
        budget = UploadBudget(1000)
        assert budget.try_send(0, 900, 0.0)
        assert not budget.try_send(0, 900, 0.5)
        assert budget.try_send(0, 900, 1.5)  # old charge expired

    def test_zero_budget_means_unlimited(self):
        budget = UploadBudget(0)
        assert budget.try_send(0, 10**9, 0.0)

    def test_independent_nodes(self):
        budget = UploadBudget(100)
        assert budget.try_send(0, 100, 0.0)
        assert budget.try_send(1, 100, 0.0)
