"""Unit tests for the reputation & punishment backends."""

import pytest

from repro.core.reputation import (
    BetaReputation,
    InteractionTag,
    ReputationBoard,
    ThresholdReputation,
)
from repro.core.verification import CheatRating


def tag(subject, success, reporter=0, confidence=1.0, frame=0):
    return InteractionTag(
        reporter_id=reporter,
        subject_id=subject,
        frame=frame,
        success=success,
        confidence=confidence,
    )


def rating(subject, value, reporter=0, confidence=1.0):
    return CheatRating(
        verifier_id=reporter,
        subject_id=subject,
        frame=0,
        check="position",
        rating=value,
        confidence=confidence,
        deviation=0.0,
    )


class TestInteractionTag:
    def test_from_low_rating_is_success(self):
        t = InteractionTag.from_rating(rating(1, 1.0))
        assert t.success

    def test_from_high_rating_is_failure(self):
        t = InteractionTag.from_rating(rating(1, 9.0))
        assert not t.success

    def test_carries_confidence(self):
        t = InteractionTag.from_rating(rating(1, 9.0, confidence=0.55))
        assert t.confidence == 0.55


class TestThresholdReputation:
    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdReputation(ban_threshold=0.0)

    def test_clean_player_not_banned(self):
        system = ThresholdReputation(min_reports=5)
        for _ in range(50):
            system.report(tag(1, success=True))
        assert 1 not in system.banned()
        assert system.reputation_of(1) == 1.0

    def test_persistent_cheater_banned(self):
        system = ThresholdReputation(ban_threshold=0.85, min_reports=10)
        for _ in range(20):
            system.report(tag(2, success=False))
        assert 2 in system.banned()

    def test_single_false_positive_does_not_ban(self):
        """"a single detection of cheating does not result in banning"."""
        system = ThresholdReputation(ban_threshold=0.85, min_reports=20)
        system.report(tag(3, success=False))
        for _ in range(30):
            system.report(tag(3, success=True))
        assert 3 not in system.banned()

    def test_min_reports_prevents_premature_ban(self):
        system = ThresholdReputation(min_reports=20)
        for _ in range(5):
            system.report(tag(4, success=False))
        assert 4 not in system.banned()

    def test_low_confidence_reports_ignored(self):
        system = ThresholdReputation(min_reports=1)
        for _ in range(50):
            system.report(tag(5, success=False, confidence=0.1))
        assert 5 not in system.banned()

    def test_unknown_player_perfect_reputation(self):
        assert ThresholdReputation().reputation_of(99) == 1.0

    def test_confidence_weighting(self):
        system = ThresholdReputation()
        system.report(tag(6, success=True, confidence=1.0))
        system.report(tag(6, success=False, confidence=0.5))
        assert system.reputation_of(6) == pytest.approx(2 / 3)


class TestBetaReputation:
    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            BetaReputation(ban_threshold=1.5)

    def test_prior_gives_benefit_of_doubt(self):
        system = BetaReputation()
        assert system.reputation_of(1) > 0.7

    def test_failures_lower_reputation(self):
        system = BetaReputation()
        before = system.reputation_of(1)
        for _ in range(10):
            system.report(tag(1, success=False))
        assert system.reputation_of(1) < before

    def test_cheater_banned_with_enough_evidence(self):
        system = BetaReputation(min_evidence=5.0)
        for _ in range(30):
            system.report(tag(2, success=False))
        assert 2 in system.banned()

    def test_badmouthing_blunted_by_credibility(self):
        """Reports from an identified cheater barely count."""
        system = BetaReputation()
        # Reporter 9 is first established as a cheater.
        for _ in range(40):
            system.report(tag(9, success=False, reporter=1))
        cheater_credibility = system.reputation_of(9)
        assert cheater_credibility < 0.5
        # Now the cheater bad-mouths honest player 3 while one honest
        # player vouches for him with the same volume.
        for _ in range(20):
            system.report(tag(3, success=False, reporter=9))
            system.report(tag(3, success=True, reporter=1))
        assert system.reputation_of(3) > 0.6
        assert 3 not in system.banned()

    def test_evidence_accumulates(self):
        system = BetaReputation()
        system.report(tag(4, success=True))
        assert system.evidence_of(4) > 0


class TestReputationBoard:
    def test_submit_rating_updates_counts(self):
        board = ReputationBoard()
        board.submit_rating(rating(1, 9.0))
        assert board.tags_seen == 1

    def test_board_bans_through_system(self):
        board = ReputationBoard(system=ThresholdReputation(min_reports=10))
        for _ in range(20):
            board.submit_rating(rating(2, 10.0))
        assert 2 in board.banned()

    def test_reputation_query(self):
        board = ReputationBoard()
        board.submit_rating(rating(3, 1.0))
        assert board.reputation_of(3) == 1.0

    def test_custom_system_pluggable(self):
        """"The Watchmen detection algorithm can be plugged into any
        reputation system"."""
        board = ReputationBoard(system=BetaReputation())
        board.submit_tag(tag(1, success=True))
        assert board.reputation_of(1) > 0.5
