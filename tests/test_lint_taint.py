"""S701/S702/S703: interprocedural taint, fixtures plus real-tree mutations."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.lint.callgraph import ParsedModule, build_call_graph, module_name_for
from repro.lint.taint import run_taint_rules

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]


def taint_violations(*modules: tuple[str, str]):
    parsed = [
        ParsedModule(
            module=name,
            path=f"src/{name.replace('.', '/')}.py",
            tree=ast.parse(source),
        )
        for name, source in modules
    ]
    sources = {
        p.path: source.splitlines()
        for p, (_, source) in zip(parsed, modules)
    }
    violations, _stats = run_taint_rules(build_call_graph(parsed), sources)
    return violations


class TestS701:
    def test_flags_unverified_payload_into_auth_call(self):
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def on_message(self, src, message: GameMessage):\n"
                "        self.membership.heard_from(message.sender_id, 0)\n",
            )
        )
        assert [v.rule for v in violations] == ["S701"]
        assert "heard_from" in violations[0].message
        assert "network payload parameter 'message'" in violations[0].message

    def test_flags_payload_write_into_authoritative_store(self):
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def on_message(self, src, message: GameMessage):\n"
                "        self.known[message.sender_id] = message\n",
            )
        )
        assert [v.rule for v in violations] == ["S701"]
        assert "authoritative store 'known'" in violations[0].message

    def test_flags_payload_dispatched_into_handler(self):
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def on_message(self, src, message: GameMessage):\n"
                "        self._on_update(src, message)\n"
                "    def _on_update(self, src, message):\n"
                "        pass\n",
            )
        )
        assert [v.rule for v in violations] == ["S701"]
        assert "dispatch into handler _on_update()" in violations[0].message

    def test_interprocedural_flow_carries_a_witness_path(self):
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def on_message(self, src, message: GameMessage):\n"
                "        self._route(message)\n"
                "    def _route(self, update):\n"
                "        self.membership.heard_from(update.sender_id, 0)\n",
            )
        )
        assert [v.rule for v in violations] == ["S701"]
        message = violations[0].message
        assert "taint path:" in message
        assert "passed on by core.node.Node.on_message:3" in message
        assert "authoritative-state mutation heard_from()" in message

    def test_marker_sanitizer_kills_payload(self):
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def on_message(self, src, message: GameMessage):\n"
                "        self._check(src, message)\n"
                "        self.membership.heard_from(message.sender_id, 0)\n"
                "    def _check(self, src, message):  # repro-taint: sanitizer\n"
                "        return True\n",
            )
        )
        assert violations == []

    def test_by_name_verify_must_not_vouch(self):
        # `self.helper.verify(...)` only matches a sanitizer-marked `verify`
        # by bare name (the receiver's type is unknown) — that guess must
        # not kill the taint, so the sink still fires.
        violations = taint_violations(
            (
                "repro.core.other",
                "class Helper:\n"
                "    # repro-taint: sanitizer\n"
                "    def verify(self, src, message):\n"
                "        return True\n",
            ),
            (
                "repro.core.node",
                "class Node:\n"
                "    def on_message(self, src, message: GameMessage):\n"
                "        self.helper.verify(src, message)\n"
                "        self.membership.heard_from(message.sender_id, 0)\n",
            ),
        )
        assert [v.rule for v in violations] == ["S701"]

    def test_typed_receiver_makes_the_sanitizer_exact(self):
        # Same shape as above, but __init__ annotates the attribute type,
        # so the verify call resolves on the exact tier and sanitizes.
        violations = taint_violations(
            (
                "repro.core.node",
                "class Helper:\n"
                "    # repro-taint: sanitizer\n"
                "    def verify(self, src, message):\n"
                "        return True\n"
                "class Node:\n"
                "    def __init__(self, helper: Helper):\n"
                "        self.helper = helper\n"
                "    def on_message(self, src, message: GameMessage):\n"
                "        self.helper.verify(src, message)\n"
                "        self.membership.heard_from(message.sender_id, 0)\n",
            )
        )
        assert violations == []

    def test_out_of_scope_module_is_not_reported(self):
        violations = taint_violations(
            (
                "repro.obs.report",
                "class Sink:\n"
                "    def on_message(self, src, message: GameMessage):\n"
                "        self.membership.heard_from(message.sender_id, 0)\n",
            )
        )
        assert violations == []


class TestS702:
    def test_flags_secret_attribute_into_transmit(self):
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def leak(self, peer):\n"
                "        key = self.registry.secret\n"
                "        self._transmit(key, peer)\n",
            )
        )
        assert [v.rule for v in violations] == ["S702"]
        assert "read of secret attribute '.secret'" in violations[0].message
        assert "transmit/encode call _transmit()" in violations[0].message

    def test_flags_key_for_result_into_message_constructor(self):
        violations = taint_violations(
            (
                "repro.core.messages",
                "class StateUpdate:\n"
                "    def kind(self):\n"
                "        return 'state'\n",
            ),
            (
                "repro.core.node",
                "class Node:\n"
                "    def leak(self, peer):\n"
                "        key = self.registry.key_for(peer)\n"
                "        update = StateUpdate(payload=key)\n"
                "        self._transmit(update, peer)\n",
            ),
        )
        assert "S702" in {v.rule for v in violations}
        ctor_hits = [v for v in violations if "message constructor" in v.message]
        assert len(ctor_hits) == 1

    def test_sign_declassifies_its_result(self):
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def publish(self, peer, body):\n"
                "        key = self.registry.secret\n"
                "        sealed = self.signer.sign(key, body)\n"
                "        self._transmit(sealed, peer)\n",
            )
        )
        assert violations == []

    def test_crypto_layer_is_exempt(self):
        violations = taint_violations(
            (
                "repro.crypto.keys",
                "class Registry:\n"
                "    def export(self, peer):\n"
                "        key = self.secret\n"
                "        self._transmit(key, peer)\n",
            )
        )
        assert violations == []


class TestS703:
    def test_flags_exact_state_into_reduced_field(self):
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def publish(self, peer):\n"
                "        exact = self.snapshot\n"
                "        update = PositionUpdate(snapshot=exact)\n"
                "        self._transmit(update, peer)\n",
            )
        )
        assert [v.rule for v in violations] == ["S703"]
        assert "reduced-resolution field PositionUpdate.snapshot" in (
            violations[0].message
        )

    def test_flags_exact_parameter_through_a_helper(self):
        # The helper-indirection case F402 cannot see: the snapshot enters
        # one function and reaches the ctor in another.
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def publish(self, snapshot: AvatarSnapshot, peer):\n"
                "        self._emit(snapshot, peer)\n"
                "    def _emit(self, state, peer):\n"
                "        update = PositionUpdate(snapshot=state)\n"
                "        self._transmit(update, peer)\n",
            )
        )
        assert [v.rule for v in violations] == ["S703"]
        assert "passed on by" in violations[0].message

    def test_reducer_cleans_its_result(self):
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def publish(self, peer):\n"
                "        reduced = position_only(self.snapshot)\n"
                "        update = PositionUpdate(snapshot=reduced)\n"
                "        self._transmit(update, peer)\n",
            )
        )
        assert violations == []

    def test_component_read_is_already_a_reduction(self):
        violations = taint_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def publish(self, peer):\n"
                "        x = self.snapshot.position\n"
                "        update = PositionUpdate(snapshot=x)\n"
                "        self._transmit(update, peer)\n",
            )
        )
        assert violations == []


class TestStats:
    def test_effort_counters_are_populated(self):
        parsed = [
            ParsedModule(
                module="repro.core.node",
                path="src/repro/core/node.py",
                tree=ast.parse(
                    "class Node:\n"
                    "    def on_message(self, src, message: GameMessage):\n"
                    "        self._route(message)\n"
                    "    def _route(self, update):\n"
                    "        pass\n"
                ),
            )
        ]
        _violations, stats = run_taint_rules(
            build_call_graph(parsed), {"src/repro/core/node.py": []}
        )
        assert stats.functions_analyzed == 2
        # the call-out into _route re-queues it: more visits than functions
        assert stats.fixpoint_iterations >= stats.functions_analyzed


# -- real-tree acceptance: the mutations this family exists to catch --------


def real_tree_violations(mutate=None):
    """Run the S rules over the actual src/repro tree.

    ``mutate`` (optional) rewrites the source text of core/node.py before
    parsing — the mutation-acceptance fixture hook.
    """
    program_root = REPO_ROOT / "src" / "repro"
    modules: list[ParsedModule] = []
    sources: dict[str, list[str]] = {}
    for file in sorted(program_root.rglob("*.py")):
        rel = file.relative_to(REPO_ROOT).as_posix()
        text = file.read_text(encoding="utf-8")
        if mutate is not None and rel == "src/repro/core/node.py":
            text = mutate(text)
        module = module_name_for(rel)
        if module is None:
            continue
        modules.append(
            ParsedModule(module=module, path=rel, tree=ast.parse(text))
        )
        sources[rel] = text.splitlines()
    violations, _stats = run_taint_rules(build_call_graph(modules), sources)
    return violations


VERIFY_CALL = "accepted = self._verify_envelope(src, message)"
PUBLISH_ANCHOR = "    def _publish_updates("

LEAK_METHOD = (
    "    def _leak_key(self, peer):\n"
    "        leaked = self.signer.registry.key_for(self.player_id)\n"
    "        update = PositionUpdate(sender_id=self.player_id, frame=0,\n"
    "                                payload=leaked)\n"
    "        self._transmit(update, peer)\n"
    "\n"
)


class TestRealTree:
    def test_clean_tree_has_zero_s_findings(self):
        assert real_tree_violations() == []

    def test_deleting_envelope_verification_raises_s701(self):
        def drop_verification(text: str) -> str:
            assert VERIFY_CALL in text
            return text.replace(VERIFY_CALL, "accepted = True")

        violations = real_tree_violations(drop_verification)
        s701 = [v for v in violations if v.rule == "S701"]
        assert s701, "unverified payload flow must be detected"
        assert all(v.path == "src/repro/core/node.py" for v in s701)
        assert any("taint path:" in v.message for v in s701)

    def test_leaking_key_material_into_a_payload_raises_s702(self):
        def add_leak(text: str) -> str:
            assert PUBLISH_ANCHOR in text
            return text.replace(PUBLISH_ANCHOR, LEAK_METHOD + PUBLISH_ANCHOR, 1)

        violations = real_tree_violations(add_leak)
        s702 = [v for v in violations if v.rule == "S702"]
        assert s702, "key material reaching a send must be detected"
        assert any("key material from key_for()" in v.message for v in s702)
