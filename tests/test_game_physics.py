"""Unit tests for the movement-physics envelope."""

import math

import pytest

from repro.game.gamemap import make_arena
from repro.game.physics import MoveIntent, Physics, PhysicsConfig
from repro.game.vector import Vec3


@pytest.fixture()
def physics(arena):
    return Physics(arena)


def run_intent(physics, position, frames, intent, velocity=Vec3(), yaw=0.0):
    for _ in range(frames):
        result = physics.step(position, velocity, yaw, intent)
        position, velocity, yaw = result.position, result.velocity, result.yaw
    return result


class TestConfig:
    def test_rejects_non_positive_frame(self):
        with pytest.raises(ValueError):
            PhysicsConfig(frame_seconds=0.0)

    def test_rejects_non_positive_speed(self):
        with pytest.raises(ValueError):
            PhysicsConfig(max_ground_speed=-1.0)

    def test_max_frame_distance(self):
        config = PhysicsConfig()
        assert config.max_frame_distance == pytest.approx(
            config.max_air_speed * config.frame_seconds
        )


class TestStep:
    def test_ground_run_caps_speed(self, physics):
        intent = MoveIntent(Vec3(1, 0, 0), wish_speed=9999.0, yaw=0.0)
        result = physics.step(Vec3(0, 0, 0), Vec3(), 0.0, intent)
        speed = result.velocity.horizontal_length()
        assert speed <= physics.config.max_ground_speed + 1e-6

    def test_standing_still(self, physics):
        result = physics.step(Vec3(0, 0, 0), Vec3(), 0.0, MoveIntent())
        assert result.position.horizontal_length() == pytest.approx(0.0)
        assert result.on_ground

    def test_jump_leaves_ground(self, physics):
        intent = MoveIntent(jump=True)
        result = physics.step(Vec3(0, 0, 0), Vec3(), 0.0, intent)
        assert result.position.z > 0.0
        assert not result.on_ground

    def test_jump_lands_back(self, physics):
        position, velocity = Vec3(0, 0, 0), Vec3()
        result = physics.step(position, velocity, 0.0, MoveIntent(jump=True))
        for _ in range(40):
            result = physics.step(
                result.position, result.velocity, result.yaw, MoveIntent()
            )
            if result.on_ground:
                break
        assert result.on_ground
        assert result.position.z == pytest.approx(0.0)

    def test_gravity_accelerates_fall(self, physics):
        airborne = Vec3(0, 0, 300.0)
        r1 = physics.step(airborne, Vec3(), 0.0, MoveIntent())
        r2 = physics.step(r1.position, r1.velocity, 0.0, MoveIntent())
        assert r2.velocity.z < r1.velocity.z < 0.0

    def test_fall_speed_clamped_at_terminal(self, physics):
        result = physics.step(Vec3(0, 0, 400), Vec3(0, 0, -5000), 0.0, MoveIntent())
        assert result.velocity.z >= -physics.config.max_fall_speed

    def test_fall_damage_on_hard_landing(self, physics):
        result = physics.step(
            Vec3(0, 0, 5.0), Vec3(0, 0, -800.0), 0.0, MoveIntent()
        )
        assert result.on_ground
        assert result.fall_damage > 0

    def test_soft_landing_no_damage(self, physics):
        result = physics.step(
            Vec3(0, 0, 2.0), Vec3(0, 0, -100.0), 0.0, MoveIntent()
        )
        assert result.on_ground
        assert result.fall_damage == 0

    def test_turn_rate_limited(self, physics):
        intent = MoveIntent(yaw=math.pi)
        result = physics.step(Vec3(0, 0, 0), Vec3(), 0.0, intent)
        max_turn = physics.config.max_turn_rate * physics.config.frame_seconds
        assert abs(result.yaw) <= max_turn + 1e-9

    def test_turn_converges_to_target(self, physics):
        yaw = 0.0
        for _ in range(20):
            result = physics.step(Vec3(0, 0, 0), Vec3(), yaw, MoveIntent(yaw=1.0))
            yaw = result.yaw
        assert yaw == pytest.approx(1.0, abs=1e-6)

    def test_yaw_wraps_to_pi_range(self, physics):
        result = physics.step(
            Vec3(0, 0, 0), Vec3(), math.pi - 0.01, MoveIntent(yaw=-math.pi + 0.01)
        )
        assert -math.pi <= result.yaw <= math.pi

    def test_void_fall_detected(self):
        # The longest-yard map has void between platforms.
        from repro.game.gamemap import make_longest_yard

        yard = make_longest_yard()
        physics = Physics(yard)
        position, velocity = Vec3(700, 0, 0), Vec3()  # off every platform
        fell = False
        result = None
        for _ in range(100):
            result = physics.step(
                position, velocity, 0.0, MoveIntent()
            )
            position, velocity = result.position, result.velocity
            if result.fell_in_void:
                fell = True
                break
        assert fell

    def test_position_stays_in_bounds(self, physics, arena):
        intent = MoveIntent(Vec3(1, 0, 0), wish_speed=320.0, yaw=0.0)
        position, velocity, yaw = Vec3(0, 0, 0), Vec3(), 0.0
        for _ in range(500):
            result = physics.step(position, velocity, yaw, intent)
            position, velocity, yaw = result.position, result.velocity, result.yaw
        assert arena.in_bounds(position)


class TestEnvelope:
    def test_max_travel_monotone(self, physics):
        assert physics.max_travel(1) < physics.max_travel(2) < physics.max_travel(10)

    def test_max_travel_rejects_negative(self, physics):
        with pytest.raises(ValueError):
            physics.max_travel(-1)

    def test_legal_ground_run(self, physics):
        start = Vec3(0, 0, 0)
        end = Vec3(320 * 0.05 * 10, 0, 0)  # exactly max speed for 10 frames
        assert physics.displacement_is_legal(start, end, 10)

    def test_illegal_double_speed(self, physics):
        start = Vec3(0, 0, 0)
        end = Vec3(2 * 320 * 0.05 * 10, 0, 0)
        assert not physics.displacement_is_legal(start, end, 10)

    def test_terminal_fall_is_legal(self, physics):
        start = Vec3(0, 0, 1000.0)
        drop = physics.config.max_fall_speed * 0.05 * 10
        assert physics.displacement_is_legal(start, start.with_z(1000 - drop), 10)

    def test_super_fall_is_illegal(self, physics):
        start = Vec3(0, 0, 5000.0)
        drop = physics.config.max_fall_speed * 0.05 * 10 * 3
        assert not physics.displacement_is_legal(start, start.with_z(5000 - drop), 10)

    def test_vertical_cheat_cannot_hide_in_horizontal_allowance(self, physics):
        # Rising faster than repeated jumps allow is illegal even when the
        # horizontal displacement is zero.
        rise = physics.max_ascent(5) * 3
        assert (
            physics.displacement_excess(Vec3(0, 0, 0), Vec3(0, 0, rise), 5) > 0
        )

    def test_zero_frames_displacement(self, physics):
        assert physics.displacement_is_legal(Vec3(0, 0, 0), Vec3(0.5, 0, 0), 0)
        assert not physics.displacement_is_legal(Vec3(0, 0, 0), Vec3(50, 0, 0), 0)

    def test_speed_of(self, physics):
        speed = physics.speed_of(Vec3(0, 0, 0), Vec3(32, 0, 0), 2)
        assert speed == pytest.approx(320.0)

    def test_speed_of_zero_frames(self, physics):
        assert physics.speed_of(Vec3(0, 0, 0), Vec3(32, 0, 0), 0) == 0.0

    def test_honest_simulation_is_physics_clean(self, physics, arena):
        """Whatever the stepper produces, the envelope checker accepts."""
        intent = MoveIntent(Vec3(1, 1, 0).normalized(), 320.0, jump=True, yaw=2.0)
        position, velocity, yaw = Vec3(0, 0, 0), Vec3(), 0.0
        track = [position]
        for _ in range(60):
            result = physics.step(position, velocity, yaw, intent)
            position, velocity, yaw = result.position, result.velocity, result.yaw
            track.append(position)
        for gap in (1, 3, 10):
            for index in range(0, len(track) - gap, gap):
                assert physics.displacement_is_legal(
                    track[index], track[index + gap], gap, tolerance=1.10
                )
