"""Tests for the corridors map and cross-map behaviour differences."""

import pytest

from repro.game import compute_sets, generate_trace, make_corridors, make_longest_yard
from repro.game.gamemap import eye_position
from repro.game.vector import Vec3


@pytest.fixture(scope="module")
def corridors():
    return make_corridors()


class TestGeometry:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_corridors(lanes=1)
        with pytest.raises(ValueError):
            make_corridors(lane_width=50.0)

    def test_lane_walls_block_sight(self, corridors):
        # Two eyes in adjacent lanes, away from any doorway.
        lane_width = 300.0
        eye_a = Vec3(-1000.0, -lane_width, 48.0)
        eye_b = Vec3(-1000.0, 0.0 + lane_width, 48.0)
        assert not corridors.line_of_sight(eye_a, eye_b)

    def test_same_lane_clear_sight(self, corridors):
        eye_a = Vec3(-1200.0, -300.0, 48.0)
        eye_b = Vec3(1200.0, -300.0, 48.0)
        assert corridors.line_of_sight(eye_a, eye_b)

    def test_doorways_open_lines(self, corridors):
        # Straight through the central doorway between lanes.
        eye_a = Vec3(0.0, -300.0, 48.0)
        eye_b = Vec3(0.0, 300.0, 48.0)
        assert corridors.line_of_sight(eye_a, eye_b)

    def test_floor_everywhere_inside(self, corridors):
        for x in (-1500.0, 0.0, 1500.0):
            for y in (-300.0, 0.0, 300.0):
                assert corridors.floor_height(Vec3(x, y, 10.0)) == 0.0

    def test_items_per_lane(self, corridors):
        assert len(corridors.items) == 9  # 3 lanes × (centre, health, ammo)

    def test_respawns_at_lane_ends(self, corridors):
        assert len(corridors.respawn_points) == 6


class TestCrossMapBehaviour:
    @pytest.fixture(scope="class")
    def traces(self, longest_yard, corridors):
        open_trace = generate_trace(12, 200, seed=8, game_map=longest_yard)
        tight_trace = generate_trace(12, 200, seed=8, game_map=corridors)
        return open_trace, tight_trace

    def test_corridors_shrink_vision_sets(self, traces, longest_yard, corridors):
        """Heavy occlusion ⇒ fewer visible players per observer on average."""
        open_trace, tight_trace = traces

        def mean_visible(trace, game_map):
            total, samples = 0, 0
            for frame in range(50, 200, 50):
                snapshots = trace.frames[frame]
                for pid, snap in snapshots.items():
                    sets = compute_sets(snap, snapshots, game_map, frame)
                    total += len(sets.interest) + len(sets.vision)
                    samples += 1
            return total / samples

        assert mean_visible(tight_trace, corridors) < mean_visible(
            open_trace, longest_yard
        )

    def test_both_maps_playable(self, traces):
        for trace in traces:
            assert len(trace.shots) > 0

    def test_presence_concentrated_on_both(self, traces, longest_yard, corridors):
        from repro.analysis import hotspot_concentration, presence_heatmap

        open_trace, tight_trace = traces
        for trace, game_map in ((open_trace, longest_yard),
                                (tight_trace, corridors)):
            heatmap = presence_heatmap(trace, game_map, grid=16)
            assert hotspot_concentration(heatmap, 0.10) > 0.3

    def test_protocol_runs_on_corridors(self, corridors):
        from repro.core import WatchmenSession
        from repro.net.latency import uniform_lan

        trace = generate_trace(8, 120, seed=8, game_map=corridors)
        report = WatchmenSession(
            trace, game_map=corridors, latency=uniform_lan(8)
        ).run()
        assert report.stale_fraction(3) < 0.05
        assert report.banned == set()
