"""Unit tests for the wire-message taxonomy and size model."""

import pytest

from repro.core.config import WatchmenConfig
from repro.core.messages import (
    SUB_INTEREST,
    SUB_VISION,
    GuidanceMessage,
    HandoffMessage,
    HandoffSummary,
    KillClaim,
    PositionUpdate,
    StateUpdate,
    SubscriptionRequest,
    message_size_bits,
    message_size_bytes,
    signable_bytes,
)
from repro.game.avatar import AvatarSnapshot
from repro.game.deadreckoning import predict_linear
from repro.game.vector import Vec3


def snap(player_id=1, frame=0, x=0.0):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=Vec3(x, 0, 0),
        velocity=Vec3(),
        yaw=0.0,
        health=100,
        armor=0,
        weapon="machinegun",
        ammo=100,
        alive=True,
    )


@pytest.fixture()
def config():
    return WatchmenConfig()


def make_all_messages():
    s = snap()
    return [
        StateUpdate(1, 0, 1, s),
        PositionUpdate(1, 0, 2, s.position_only()),
        GuidanceMessage(1, 0, 3, s, predict_linear(s)),
        SubscriptionRequest(1, 2, SUB_INTEREST, 0, 4),
        KillClaim(1, 2, 0, 5, "railgun", 500.0),
        HandoffMessage(
            1, 2, 0, 6, frozenset({3, 4}), frozenset({5}),
            (HandoffSummary(2, 0, 1, s, 40, 0),),
        ),
    ]


class TestValidation:
    def test_bad_subscription_kind_rejected(self):
        with pytest.raises(ValueError):
            SubscriptionRequest(1, 2, "SUPER", 0, 1)

    def test_both_kinds_accepted(self):
        SubscriptionRequest(1, 2, SUB_INTEREST, 0, 1)
        SubscriptionRequest(1, 2, SUB_VISION, 0, 1)


class TestSignableBytes:
    def test_deterministic(self):
        for message in make_all_messages():
            assert signable_bytes(message) == signable_bytes(message)

    def test_field_change_changes_bytes(self):
        a = StateUpdate(1, 0, 1, snap())
        b = StateUpdate(1, 0, 1, snap(x=1.0))
        assert signable_bytes(a) != signable_bytes(b)

    def test_sequence_change_changes_bytes(self):
        a = StateUpdate(1, 0, 1, snap())
        b = StateUpdate(1, 0, 2, snap())
        assert signable_bytes(a) != signable_bytes(b)

    def test_signature_not_included(self):
        from repro.crypto.signatures import Signature

        a = StateUpdate(1, 0, 1, snap())
        b = StateUpdate(1, 0, 1, snap(), signature=Signature("s", 1, b"xx"))
        assert signable_bytes(a) == signable_bytes(b)

    def test_message_types_distinguished(self):
        s = snap()
        update = StateUpdate(1, 0, 1, s)
        position = PositionUpdate(1, 0, 1, s)
        assert signable_bytes(update) != signable_bytes(position)

    def test_all_types_encodable(self):
        for message in make_all_messages():
            assert isinstance(signable_bytes(message), bytes)


class TestSizeModel:
    def test_state_update_size(self, config):
        update = StateUpdate(1, 0, 1, snap())
        bits = message_size_bits(update, config)
        assert bits == config.header_bits + config.state_update_bits

    def test_signature_adds_100_bits(self, config):
        from repro.crypto.signatures import HmacSigner

        signer = HmacSigner()
        update = StateUpdate(1, 0, 1, snap())
        signed = StateUpdate(
            1, 0, 1, snap(), signature=signer.sign(1, signable_bytes(update))
        )
        assert (
            message_size_bits(signed, config)
            == message_size_bits(update, config) + config.signature_bits
        )

    def test_position_smaller_than_state(self, config):
        s = snap()
        state = StateUpdate(1, 0, 1, s)
        position = PositionUpdate(1, 0, 1, s.position_only())
        assert message_size_bits(position, config) < message_size_bits(
            state, config
        )

    def test_handoff_scales_with_entries(self, config):
        small = HandoffMessage(1, 2, 0, 1, frozenset(), frozenset(), ())
        big = HandoffMessage(
            1, 2, 0, 1, frozenset(range(10)), frozenset(range(10, 15)), ()
        )
        assert message_size_bits(big, config) > message_size_bits(small, config)

    def test_bytes_rounds_up(self, config):
        update = StateUpdate(1, 0, 1, snap())
        bits = message_size_bits(update, config)
        assert message_size_bytes(update, config) == (bits + 7) // 8

    def test_unknown_type_rejected(self, config):
        with pytest.raises(TypeError):
            message_size_bits("not a message", config)  # type: ignore[arg-type]

    def test_all_types_have_sizes(self, config):
        for message in make_all_messages():
            assert message_size_bits(message, config) > 0
