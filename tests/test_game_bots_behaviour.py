"""Behavioural tests for the bot controllers (trace realism properties)."""

import random

import pytest

from repro.game.avatar import AvatarSnapshot
from repro.game.bots import HumanlikeBot, WaypointBot
from repro.game.gamemap import ItemKind, make_longest_yard
from repro.game.items import ItemManager
from repro.game.vector import Vec3


def snap(player_id, x=0.0, y=0.0, yaw=0.0, health=100, weapon="machinegun",
         alive=True, frame=0):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=Vec3(x, y, 0),
        velocity=Vec3(),
        yaw=yaw,
        health=health,
        armor=0,
        weapon=weapon,
        ammo=100,
        alive=alive,
    )


@pytest.fixture()
def yard():
    return make_longest_yard()


@pytest.fixture()
def items(yard):
    return ItemManager(yard)


class TestWeaponRush:
    def test_unarmed_bot_heads_for_weapon(self, yard, items):
        bot = HumanlikeBot(0, yard, random.Random(1))
        me = snap(0, x=900.0, y=0.0)
        everyone = {0: me, 1: snap(1, x=-900.0, y=900.0)}
        decision = bot.decide(0, me, everyone, items)
        weapon = items.nearest_available(me.position, ItemKind.WEAPON)
        to_weapon = (weapon.spec.position - me.position).with_z(0).normalized()
        assert decision.intent.wish_direction.dot(to_weapon) > 0.7

    def test_cornered_unarmed_bot_fights(self, yard, items):
        bot = HumanlikeBot(0, yard, random.Random(1))
        me = snap(0, x=0.0, y=0.0, yaw=0.0)
        enemy = snap(1, x=200.0, y=0.0)
        decision = bot.decide(0, me, {0: me, 1: enemy}, items)
        # Close-quarters: aim at the enemy, don't run for toys.
        assert abs(decision.intent.yaw) < 0.3

    def test_armed_bot_engages(self, yard, items):
        bot = HumanlikeBot(0, yard, random.Random(1))
        me = snap(0, x=0.0, y=0.0, yaw=0.0, weapon="railgun")
        enemy = snap(1, x=700.0, y=0.0)
        decision = bot.decide(0, me, {0: me, 1: enemy}, items)
        assert abs(decision.intent.yaw) < 0.3

    def test_armed_on_target_bot_shoots(self, yard, items):
        bot = HumanlikeBot(0, yard, random.Random(2))
        # Fight staged away from the central pillars (clear line of sight).
        me = snap(0, x=0.0, y=-800.0, yaw=0.0, weapon="lightning-gun")
        enemy = snap(1, x=400.0, y=-800.0)
        fired = any(
            bot.decide(f, me, {0: me, 1: enemy}, items).shoot_at == 1
            for f in range(10)
        )
        assert fired


class TestRetreat:
    def test_wounded_bot_runs_for_health(self, yard, items):
        bot = HumanlikeBot(0, yard, random.Random(1))
        me = snap(0, x=0.0, y=0.0, health=15)
        enemy = snap(1, x=300.0, y=0.0)
        decision = bot.decide(0, me, {0: me, 1: enemy}, items)
        health = items.nearest_available(me.position, ItemKind.HEALTH)
        to_health = (health.spec.position - me.position).with_z(0).normalized()
        assert decision.intent.wish_direction.dot(to_health) > 0.5
        assert decision.shoot_at is None


class TestOcclusionAwareness:
    def test_bot_ignores_hidden_enemies(self, yard, items):
        bot = HumanlikeBot(0, yard, random.Random(1))
        # The east pillar hides the enemy at eye level.
        me = snap(0, x=100.0, y=0.0, yaw=0.0, weapon="railgun")
        hidden = snap(1, x=400.0, y=0.0)
        decision = bot.decide(0, me, {0: me, 1: hidden}, items)
        assert decision.shoot_at is None

    def test_dead_enemies_ignored(self, yard, items):
        bot = HumanlikeBot(0, yard, random.Random(1))
        me = snap(0, weapon="railgun")
        corpse = snap(1, x=300.0, alive=False)
        decision = bot.decide(0, me, {0: me, 1: corpse}, items)
        assert decision.shoot_at is None


class TestWaypointPatrol:
    def test_patrol_advances_waypoints(self, yard, items):
        bot = WaypointBot(0, yard, random.Random(1))
        first_waypoint = bot.waypoints[0]
        me = snap(0, x=first_waypoint.x, y=first_waypoint.y)
        bot.decide(0, me, {0: me, 1: snap(1, x=-1800.0, y=-1800.0)}, items)
        assert bot._index == 1

    def test_patrols_are_player_specific(self, yard):
        a = WaypointBot(0, yard, random.Random(1))
        b = WaypointBot(1, yard, random.Random(1))
        assert a.waypoints != b.waypoints

    def test_waypoint_bot_aims_at_visible_enemy(self, yard, items):
        bot = WaypointBot(0, yard, random.Random(3))
        me = snap(0, x=-1000.0, y=-1000.0, yaw=0.0)
        enemy = snap(1, x=-600.0, y=-1000.0)
        decision = bot.decide(0, me, {0: me, 1: enemy}, items)
        to_enemy = (enemy.position - me.position).yaw()
        assert abs(decision.intent.yaw - to_enemy) < 0.3
