"""Unit tests for WatchmenNode over a synchronous loopback transport."""

import pytest

from repro.core.config import WatchmenConfig
from repro.core.messages import (
    SUB_INTEREST,
    StateUpdate,
    SubscriptionRequest,
    signable_bytes,
)
from repro.core.node import WatchmenNode
from repro.core.proxy import ProxySchedule
from repro.crypto.signatures import HmacSigner
from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import make_arena
from repro.game.vector import Vec3


def snap(player_id, frame=0, x=0.0, y=-800.0, yaw=0.0, alive=True):
    return AvatarSnapshot(
        player_id=player_id,
        frame=frame,
        position=Vec3(x, y, 0),
        velocity=Vec3(),
        yaw=yaw,
        health=100,
        armor=0,
        weapon="machinegun",
        ammo=100,
        alive=alive,
    )


class LoopbackHarness:
    """N nodes wired through an instant, lossless, synchronous transport."""

    def __init__(self, num_players=4, config=None, behaviours=None):
        self.config = config or WatchmenConfig()
        roster = list(range(num_players))
        self.schedule = ProxySchedule(
            roster,
            common_seed=self.config.common_seed,
            proxy_period_frames=self.config.proxy_period_frames,
        )
        self.signer = HmacSigner()
        self.sent = []  # (src, dst, message)
        behaviours = behaviours or {}
        self.nodes = {}
        for player_id in roster:
            self.nodes[player_id] = WatchmenNode(
                player_id=player_id,
                roster=roster,
                game_map=make_arena(),
                config=self.config,
                schedule=self.schedule,
                signer=self.signer,
                send=self._send,
                behaviour=behaviours.get(player_id),
            )

    def _send(self, src, dst, message, size):
        self.sent.append((src, dst, message))
        node = self.nodes.get(dst)
        if node is not None:
            node.on_message(src, message)
        return True

    def tick(self, frame, positions=None):
        positions = positions or {}
        for player_id, node in self.nodes.items():
            x = positions.get(player_id, 100.0 * player_id)
            node.on_frame(frame, snap(player_id, frame=frame, x=x))

    def run(self, frames):
        for frame in range(frames):
            self.tick(frame)


class TestPublishing:
    def test_state_update_goes_to_proxy(self):
        harness = LoopbackHarness()
        harness.tick(0)
        for src, dst, message in harness.sent:
            if isinstance(message, StateUpdate) and src == message.sender_id:
                assert dst == harness.schedule.proxy_of(src, 0)

    def test_guidance_and_position_sent_at_interval(self):
        harness = LoopbackHarness()
        harness.run(41)
        from repro.core.messages import GuidanceMessage, PositionUpdate

        guidance_frames = {
            m.frame
            for _, _, m in harness.sent
            if isinstance(m, GuidanceMessage) and m.sender_id == 0
        }
        assert guidance_frames == {0, 20, 40}
        position_frames = {
            m.frame
            for _, _, m in harness.sent
            if isinstance(m, PositionUpdate) and m.sender_id == 0
        }
        assert position_frames == {0, 20, 40}

    def test_all_outgoing_messages_signed(self):
        harness = LoopbackHarness()
        harness.run(5)
        for src, _, message in harness.sent:
            assert message.signature is not None

    def test_sequences_strictly_increase(self):
        harness = LoopbackHarness()
        harness.run(10)
        last = {}
        for src, _, message in harness.sent:
            if message.sender_id != src:
                continue  # forwarded third-party message
            assert message.sequence > last.get(src, 0) or message.sequence >= 0
            last[src] = max(last.get(src, 0), message.sequence)


class TestProxyForwarding:
    def test_proxy_forwards_to_interest_subscribers(self):
        harness = LoopbackHarness(num_players=4)
        harness.run(5)
        # Node 1 is near node 0 (x=0 vs x=100) so they subscribe to each
        # other; node 0 should receive state updates about node 1.
        assert 1 in harness.nodes[0].known
        assert harness.nodes[0].known[1].frame >= 3

    def test_subscription_routed_via_both_proxies(self):
        harness = LoopbackHarness()
        harness.tick(0)  # discovery: everyone learns positions
        harness.tick(1)  # first real subscriptions
        proxied_subs = [
            (src, dst, m)
            for src, dst, m in harness.sent
            if isinstance(m, SubscriptionRequest) and src != m.sender_id
        ]
        assert proxied_subs, "proxies must relay subscriptions onward"
        for src, dst, message in proxied_subs:
            # Relayed by the sender's proxy to the target's proxy.
            assert src == harness.schedule.proxy_of(message.sender_id, 0)
            assert dst == harness.schedule.proxy_of(message.target_id, 0)

    def test_target_never_learns_subscribers(self):
        """"the player itself does not know who is interested in him".

        One exception is inherent to the architecture: when the target *is*
        the subscriber's current proxy, it sees the first hop — but a proxy
        already holds complete information about its client, so nothing new
        leaks.
        """
        harness = LoopbackHarness()
        harness.run(3)
        epoch = 0
        for src, dst, message in harness.sent:
            if isinstance(message, SubscriptionRequest):
                if dst == harness.schedule.proxy_of(message.sender_id, epoch):
                    continue  # first hop to the subscriber's own proxy
                assert dst != message.target_id

    def test_known_view_tracks_positions(self):
        harness = LoopbackHarness()
        harness.run(8)
        node = harness.nodes[0]
        # Everybody is known (seeded or updated).
        assert set(node.known) == {0, 1, 2, 3}


class TestEnvelopeSecurity:
    def test_unsigned_message_rejected(self):
        harness = LoopbackHarness()
        harness.tick(0)
        node = harness.nodes[1]
        before = node.metrics.signature_failures
        node.on_message(0, StateUpdate(0, 0, 999, snap(0)))
        assert node.metrics.signature_failures == before + 1

    def test_spoofed_sender_rejected(self):
        harness = LoopbackHarness()
        harness.tick(0)
        node = harness.nodes[1]
        # Player 2 signs a message claiming to be player 0.
        message = StateUpdate(0, 0, 998, snap(0))
        forged = StateUpdate(
            0, 0, 998, snap(0),
            signature=harness.signer.sign(2, signable_bytes(message)),
        )
        before = node.metrics.signature_failures
        node.on_message(2, forged)
        assert node.metrics.signature_failures == before + 1

    def test_replayed_message_rejected(self):
        harness = LoopbackHarness()
        harness.tick(0)
        node = harness.nodes[1]
        message = StateUpdate(0, 0, 997, snap(0))
        signed = StateUpdate(
            0, 0, 997, snap(0),
            signature=harness.signer.sign(0, signable_bytes(message)),
        )
        node.on_message(0, signed)
        before = node.metrics.replayed_messages
        node.on_message(0, signed)
        assert node.metrics.replayed_messages == before + 1

    def test_tampered_forward_rejected(self):
        """A proxy modifying a relayed update invalidates the signature."""
        from dataclasses import replace

        harness = LoopbackHarness()
        harness.tick(0)
        node = harness.nodes[1]
        message = StateUpdate(0, 0, 996, snap(0))
        signed = replace(
            message, signature=harness.signer.sign(0, signable_bytes(message))
        )
        tampered = replace(signed, snapshot=snap(0, x=9999.0))
        before = node.metrics.signature_failures
        node.on_message(3, tampered)
        assert node.metrics.signature_failures == before + 1

    def test_direct_update_bypassing_proxy_flagged(self):
        harness = LoopbackHarness()
        harness.run(2)
        # Find a node that is NOT player 0's proxy right now.
        proxy = harness.schedule.proxy_of(0, 0)
        receiver = next(
            n for n in harness.nodes.values()
            if n.player_id not in (0, proxy)
        )
        message = StateUpdate(0, 1, 995, snap(0, frame=1))
        from dataclasses import replace

        signed = replace(
            message, signature=harness.signer.sign(0, signable_bytes(message))
        )
        before = receiver.metrics.direct_update_violations
        receiver.on_message(0, signed)
        assert receiver.metrics.direct_update_violations == before + 1


class TestHandoff:
    def test_handoff_sent_at_epoch_boundary(self):
        config = WatchmenConfig(proxy_period_frames=10)
        harness = LoopbackHarness(config=config)
        harness.run(21)
        from repro.core.messages import HandoffMessage

        handoffs = [m for _, _, m in harness.sent if isinstance(m, HandoffMessage)]
        assert handoffs
        for handoff in handoffs:
            # Sent by the epoch-ending proxy to the new proxy.
            assert (
                harness.schedule.proxy_of(handoff.player_id, handoff.epoch)
                == handoff.sender_id
            )

    def test_handoff_carries_summaries(self):
        config = WatchmenConfig(proxy_period_frames=10)
        harness = LoopbackHarness(config=config)
        harness.run(35)
        from repro.core.messages import HandoffMessage

        handoffs = [m for _, _, m in harness.sent if isinstance(m, HandoffMessage)]
        with_summary = [h for h in handoffs if h.summaries]
        assert with_summary
        depth = max(len(h.summaries) for h in handoffs)
        assert depth <= config.handoff_depth

    def test_forged_handoff_rejected(self):
        config = WatchmenConfig(proxy_period_frames=10)
        harness = LoopbackHarness(config=config)
        harness.run(11)
        from dataclasses import replace

        from repro.core.messages import HandoffMessage

        node = harness.nodes[0]
        # A node that was never player 1's proxy sends a handoff about him.
        epoch = 0
        real_proxy = harness.schedule.proxy_of(1, epoch)
        imposter = next(
            p for p in range(4) if p not in (1, real_proxy, node.player_id)
        )
        message = HandoffMessage(
            sender_id=imposter,
            player_id=1,
            epoch=epoch,
            sequence=12345,
            interest_subscribers=frozenset({0}),
            vision_subscribers=frozenset(),
        )
        signed = replace(
            message,
            signature=harness.signer.sign(imposter, signable_bytes(message)),
        )
        before = len(node.metrics.ratings)
        node.on_message(imposter, signed)
        new = node.metrics.ratings[before:]
        assert any(r.subject_id == imposter and r.rating == 10.0 for r in new)


class TestKillClaims:
    def test_claim_published_and_judged(self):
        harness = LoopbackHarness()
        harness.tick(0)
        harness.nodes[0].claim_kill(1, victim_id=1, weapon="machinegun",
                                    distance=100.0)
        harness.tick(1)
        from repro.core.messages import KillClaim

        claims = [m for _, _, m in harness.sent if isinstance(m, KillClaim)]
        assert claims
        proxy = harness.schedule.proxy_of(0, 0)
        kill_ratings = [
            r
            for r in harness.nodes[proxy].metrics.ratings
            if r.check == "kill" and r.subject_id == 0
        ]
        assert kill_ratings
