"""R501/R502: proxy-routing and envelope-authentication rules."""

from __future__ import annotations

import ast
import shutil
from pathlib import Path

import pytest

from repro.lint.callgraph import ParsedModule, build_call_graph
from repro.lint.cli import main as lint_main
from repro.lint.routing import run_routing_rules

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent


def routing_violations(*modules: tuple[str, str]):
    parsed = [
        ParsedModule(
            module=name,
            path=f"src/{name.replace('.', '/')}.py",
            tree=ast.parse(source),
        )
        for name, source in modules
    ]
    sources = {
        p.path: source.splitlines()
        for p, (_, source) in zip(parsed, modules)
    }
    return run_routing_rules(build_call_graph(parsed), sources)


class TestR501:
    def test_flags_direct_transport_send(self):
        violations = routing_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def leak(self, message):\n"
                "        self.transport.send(self.player_id, 0, message, 1)\n",
            ),
        )
        assert [v.rule for v in violations] == ["R501"]
        assert "proxy" in violations[0].message

    def test_flags_raw_send_from_game_module(self):
        violations = routing_violations(
            (
                "repro.game.weapons",
                "class Weapon:\n"
                "    def fire(self, message):\n"
                "        self.node._send_raw(1, 2, message, 10)\n",
            ),
        )
        assert [v.rule for v in violations] == ["R501"]

    def test_sanctioned_egress_is_exempt(self):
        violations = routing_violations(
            (
                "repro.core.node",
                "class WatchmenNode:\n"
                "    def _transmit_unfiltered(self, destination, signed, size):\n"
                "        self._send_raw(self.player_id, destination, signed, size)\n",
            ),
        )
        assert violations == []

    def test_exact_proxy_edge_vouches_for_routing(self):
        violations = routing_violations(
            (
                "repro.core.proxy",
                "def proxies_for(player, frame):\n    return []\n",
            ),
            (
                "repro.core.node",
                "from repro.core.proxy import proxies_for\n"
                "class Node:\n"
                "    def route(self, message, frame):\n"
                "        for proxy in proxies_for(self.player_id, frame):\n"
                "            self.transport.send(self.player_id, proxy, message, 1)\n",
            ),
        )
        assert violations == []

    def test_by_name_proxy_guess_does_not_vouch(self):
        # A same-named method in proxy.py reached only by a by-name guess
        # must NOT count as routing evidence (tier-1 edges only).
        violations = routing_violations(
            (
                "repro.core.proxy",
                "class ProxySchedule:\n"
                "    def epoch_of_frame(self, frame):\n        return 0\n",
            ),
            (
                "repro.core.config",
                "class WatchmenConfig:\n"
                "    def epoch_of_frame(self, frame):\n        return 0\n",
            ),
            (
                "repro.core.node",
                "class Node:\n"
                "    def leak(self, message, frame):\n"
                "        epoch = self.config.epoch_of_frame(frame)\n"
                "        self.transport.send(self.player_id, epoch, message, 1)\n",
            ),
        )
        assert [v.rule for v in violations] == ["R501"]

    def test_non_transport_arity_is_ignored(self):
        violations = routing_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def save(self, sink, data):\n"
                "        sink.send(data)\n",
            ),
        )
        assert violations == []

    def test_cheats_and_net_modules_are_out_of_scope(self):
        violations = routing_violations(
            (
                "repro.net.transport",
                "class Transport:\n"
                "    def deliver(self, message):\n"
                "        self.socket.send(1, 2, message, 3)\n",
            ),
        )
        assert violations == []


class TestR502:
    def test_flags_reply_to_payload_sender_id(self):
        violations = routing_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def _on_guidance(self, src, message):\n"
                "        self._transmit(self.ack, message.sender_id)\n",
            ),
        )
        assert [v.rule for v in violations] == ["R502"]
        assert "sender_id" in violations[0].message

    def test_flags_destination_keyword(self):
        violations = routing_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def _handle_update(self, src, update):\n"
                "        self._transmit(self.ack, destination=update.sender_id)\n",
            ),
        )
        assert [v.rule for v in violations] == ["R502"]

    def test_passes_when_replying_to_envelope_src(self):
        violations = routing_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def _on_guidance(self, src, message):\n"
                "        self._transmit(self.ack, src)\n",
            ),
        )
        assert violations == []

    def test_non_handler_functions_are_not_checked(self):
        violations = routing_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def broadcast(self, message):\n"
                "        self._transmit(self.ack, message.sender_id)\n",
            ),
        )
        assert violations == []

    def test_self_attribute_sender_id_is_fine(self):
        # self.last_message.sender_id is node state, not the spoofable payload.
        violations = routing_violations(
            (
                "repro.core.node",
                "class Node:\n"
                "    def _on_guidance(self, src, message):\n"
                "        self._transmit(self.ack, self.last.sender_id)\n",
            ),
        )
        assert violations == []


def _copy_tree(tmp_path: Path) -> Path:
    root = tmp_path / "repo"
    (root / "src").mkdir(parents=True)
    shutil.copytree(REPO_ROOT / "src" / "repro", root / "src" / "repro")
    return root


class TestAcceptanceProxyBypass:
    """ISSUE.md acceptance criterion: a deliberate proxy-bypass patch makes
    ``repro lint`` exit 1 with an R501 finding."""

    def test_clean_copy_passes(self, tmp_path, capsys):
        root = _copy_tree(tmp_path)
        assert lint_main(["--root", str(root)]) == 0

    def test_proxy_bypass_fails_with_r501(self, tmp_path, capsys):
        root = _copy_tree(tmp_path)
        node_py = root / "src" / "repro" / "core" / "node.py"
        source = node_py.read_text()
        marker = "    def _on_removal_proposal("
        assert marker in source
        patched = source.replace(
            marker,
            "    def _shortcut(self, message):\n"
            "        self._send_raw(self.player_id, 0, message, 1)\n"
            "\n" + marker,
            1,
        )
        node_py.write_text(patched)

        exit_code = lint_main(["--root", str(root)])
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "R501" in output
        assert "proxy" in output
