"""T-family lint rule: annotation completeness on fixture snippets."""

from __future__ import annotations

import ast

import pytest

from repro.lint.typing_rules import check_annotations

pytestmark = pytest.mark.lint

PATH = "src/repro/game/example.py"


def _run(snippet: str):
    return check_annotations(PATH, ast.parse(snippet), snippet.splitlines())


class TestT301:
    def test_flags_missing_param_annotation(self):
        violations = _run("def f(x) -> int:\n    return x\n")
        assert [v.rule for v in violations] == ["T301"]
        assert "x" in violations[0].message

    def test_flags_missing_return(self):
        violations = _run("def f(x: int):\n    return x\n")
        assert len(violations) == 1
        assert "return" in violations[0].message

    def test_flags_star_args(self):
        violations = _run("def f(*args, **kw) -> None: ...\n")
        assert "*args" in violations[0].message
        assert "**kw" in violations[0].message

    def test_flags_keyword_only(self):
        violations = _run("def f(*, mode) -> None: ...\n")
        assert "mode" in violations[0].message

    def test_self_and_cls_exempt(self):
        snippet = (
            "class C:\n"
            "    def m(self) -> None: ...\n"
            "    @classmethod\n"
            "    def c(cls) -> int:\n"
            "        return 1\n"
        )
        assert _run(snippet) == []

    def test_nested_and_async_functions_checked(self):
        snippet = (
            "def outer() -> None:\n"
            "    def inner(x):\n"
            "        return x\n"
            "async def a(y):\n"
            "    return y\n"
        )
        assert len(_run(snippet)) == 2

    def test_fully_annotated_passes(self):
        snippet = (
            "def f(a: int, b: str = 'x', *rest: float, k: bool = True,\n"
            "      **extra: object) -> list[int]:\n"
            "    return [a]\n"
        )
        assert _run(snippet) == []

    def test_lambda_not_flagged(self):
        assert _run("f = lambda x: x\n") == []
