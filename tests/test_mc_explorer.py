"""Explorer tests: POR independence, bounded runs, counterexample plumbing."""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.mc.controller import McController
from repro.mc.explorer import (
    Explorer,
    explore_scenario,
    independence_from_footprints,
)
from repro.mc.invariants import INVARIANTS
from repro.mc.scenarios import SCENARIOS, scenario_by_name
from repro.replay.scenario import TapeScenario
from repro.replay.tape import read_tape

KILL = scenario_by_name("kill-claim")


class TestIndependenceFromFootprints:
    def test_collapses_emits_per_consumed_type(self):
        footprints = {
            "by_type": {"Ping": {"writes": ["known"], "commutes": ["known"]}},
            "handlers": {
                "a._on_ping": {"consumes": ["Ping"], "emits": ["Pong"]},
                "b._on_ping": {"consumes": ["Ping"], "emits": ["Ack"]},
            },
        }
        by_type, emits = independence_from_footprints(footprints)
        assert by_type["Ping"]["writes"] == ["known"]
        assert emits["Ping"] == frozenset({"Pong", "Ack"})


SYNTHETIC_FOOTPRINTS = {
    "by_type": {
        # order-insensitive: every writer annotated the shared store
        "Ping": {"writes": ["known"], "commutes": ["known"]},
        # order-sensitive: membership write without annotation
        "Raze": {"writes": ["membership"], "commutes": []},
        "Burn": {"writes": ["membership"], "commutes": []},
        # cascading: its handler can emit a controlled type
        "Fork": {"writes": [], "commutes": []},
    },
    "handlers": {
        "n._on_fork": {"consumes": ["Fork"], "emits": ["Ping"]},
    },
}


class TestPartialOrderReduction:
    def explorer(self):
        scenario = replace(KILL, controlled=("Ping", "Raze", "Burn", "Fork"))
        return Explorer(scenario, footprints=SYNTHETIC_FOOTPRINTS)

    def test_different_destinations_commute(self):
        meta = {0: (0, 1, "Raze"), 1: (0, 2, "Burn")}
        assert self.explorer()._independent(
            ("deliver", 0), ("deliver", 1), meta
        )

    def test_shared_unannotated_store_conflicts(self):
        meta = {0: (0, 1, "Raze"), 1: (2, 1, "Burn")}
        assert not self.explorer()._independent(
            ("deliver", 0), ("deliver", 1), meta
        )

    def test_shared_annotated_store_commutes(self):
        meta = {0: (0, 1, "Ping"), 1: (2, 1, "Ping")}
        assert self.explorer()._independent(
            ("deliver", 0), ("deliver", 1), meta
        )

    def test_emitter_of_a_controlled_type_never_commutes(self):
        # delivering Fork can grow the decision space itself
        meta = {0: (0, 1, "Fork"), 1: (0, 2, "Ping")}
        assert not self.explorer()._independent(
            ("deliver", 0), ("deliver", 1), meta
        )

    def test_fault_actions_are_never_pruned(self):
        meta = {0: (0, 1, "Ping"), 1: (0, 2, "Ping")}
        assert not self.explorer()._independent(
            ("defer", 0), ("deliver", 1), meta
        )
        assert not self.explorer()._independent(
            ("deliver", 0), ("drop", 1), meta
        )

    def test_unknown_capture_is_conservatively_dependent(self):
        meta = {0: (0, 1, "Ping")}
        assert not self.explorer()._independent(
            ("deliver", 0), ("deliver", 99), meta
        )

    def test_without_footprints_same_destination_conflicts(self):
        explorer = Explorer(replace(KILL, controlled=("Ping",)))
        meta = {0: (0, 1, "Ping"), 1: (2, 1, "Ping")}
        assert not explorer._independent(("deliver", 0), ("deliver", 1), meta)


class TestExecution:
    def test_fixed_prefix_is_deterministic(self):
        explorer = Explorer(KILL)
        first = explorer.execute(())
        second = explorer.execute(())
        assert first.choices == second.choices
        assert first.decisions == second.decisions
        assert first.controller_stats == second.controller_stats
        assert first.violation is None

    def test_budget_bound_reports_incomplete(self):
        scenario = scenario_by_name("handoff-subscription")
        report = Explorer(scenario, max_executions=2).run()
        assert report.executions == 2
        assert not report.complete
        assert report.ok  # incompleteness is not a violation


class TestCounterexamplePlumbing:
    def test_violation_is_minimized_and_written_as_a_tape(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(
            INVARIANTS, "always-broken", lambda session: "synthetic violation"
        )
        scenario = replace(
            KILL, invariants=("always-broken",), max_executions=8
        )
        report = explore_scenario(scenario, counterexample_dir=tmp_path)
        assert report.violation == "synthetic violation"
        assert report.invariant == "always-broken"
        # the default schedule already violates, so minimization must
        # shrink the counterexample to the empty prefix
        assert report.schedule == ()
        tape_path = tmp_path / "mc-kill-claim.tape"
        assert report.tape_path == str(tape_path)
        tape = read_tape(tape_path)
        assert tape.scenario.mc is not None
        assert tape.scenario.mc["schedule"] == []
        assert tape.scenario.mc["controlled"] == ["KillClaim"]

    def test_clean_scenario_writes_no_tape(self, tmp_path):
        report = explore_scenario(
            KILL, max_executions=1, counterexample_dir=tmp_path
        )
        assert report.ok
        assert report.tape_path is None
        assert list(tmp_path.iterdir()) == []


class TestMcEnvelope:
    def test_tape_scenario_round_trips_through_json(self):
        ts = KILL.tape_scenario((("defer", 0), ("deliver", 1)))
        rebuilt = TapeScenario.from_json(ts.to_json())
        assert rebuilt.mc == ts.mc
        assert rebuilt.mc["schedule"] == [["defer", 0], ["deliver", 1]]

    def test_config_overrides_apply(self):
        handoff = scenario_by_name("handoff-subscription")
        config = handoff.tape_scenario().make_config()
        assert config.proxy_period_frames == 16

    def test_make_session_installs_the_controller(self):
        ts = KILL.tape_scenario()
        session = ts.make_session(ts.make_trace())
        controller = session.network.controller
        assert isinstance(controller, McController)
        assert controller.controlled == frozenset({"KillClaim"})
        assert controller.window == KILL.window


@pytest.mark.slow
class TestExhaustiveExploration:
    def test_kill_claim_scenario_is_exhaustive_and_clean(self):
        report = Explorer(KILL).run()
        assert report.complete
        assert report.ok
        assert report.executions > 1  # duplication branches were explored


def test_scenario_registry():
    names = [s.name for s in SCENARIOS]
    assert names == [
        "handoff-subscription",
        "crash-eviction",
        "kill-claim",
        "equivocation-evidence",
    ]
    for scenario in SCENARIOS:
        for invariant in scenario.invariants:
            assert invariant in INVARIANTS
    with pytest.raises(ValueError):
        scenario_by_name("nope")
