"""Tests for churn membership management (Section VI agreement round)."""

import pytest

from repro.core import WatchmenSession
from repro.core.membership import MembershipView, RemovalProposal
from repro.net.latency import uniform_lan


class TestMembershipView:
    def make(self, size=8, **kwargs):
        return MembershipView(list(range(size)), **kwargs)

    def test_needs_two_players(self):
        with pytest.raises(ValueError):
            MembershipView([1])

    def test_heartbeats_silence(self):
        view = self.make(silence_threshold_frames=10)
        view.heard_from(1, 5)
        assert 1 not in view.silent_players(14, self_id=0)
        assert 1 in view.silent_players(16, self_id=0)

    def test_self_never_silent(self):
        view = self.make(silence_threshold_frames=10)
        assert 0 not in view.silent_players(100, self_id=0)

    def test_exempt_infrastructure_never_silent(self):
        view = MembershipView(
            list(range(4)), silence_threshold_frames=10, exempt=frozenset({3})
        )
        assert 3 not in view.silent_players(100, self_id=0)

    def test_unknown_player_heartbeat_ignored(self):
        view = self.make()
        view.heard_from(99, 5)  # no crash, no tracking
        assert 99 not in view.silent_players(1000, self_id=0)

    def test_quorum_majority(self):
        view = self.make(size=8)
        assert view.quorum_size() == 5

    def test_proposals_accumulate_to_quorum(self):
        # Frames past the silence threshold (60): the local view must
        # corroborate the silence before votes can schedule a removal.
        view = self.make(size=5)  # quorum 3
        assert not view.record_proposal(0, 4, frame=100, epoch=1)
        assert not view.record_proposal(1, 4, frame=101, epoch=1)
        assert view.record_proposal(2, 4, frame=102, epoch=1)
        assert view.pending_removals() == {4: 2}  # epoch 1 + delay 1

    def test_votes_alone_cannot_evict_a_locally_live_player(self):
        """Quorum completes but the local heartbeat refutes the silence."""
        view = self.make(size=5)  # quorum 3
        view.heard_from(4, 95)
        for proposer in (0, 1, 2):
            view.record_proposal(proposer, 4, frame=100, epoch=1)
        assert view.pending_removals() == {}
        assert view.proposal_count(4) == 3  # votes kept for a later re-check

    def test_hearing_rescinds_pending_suspicion(self):
        """A live voice clears votes, own-proposal state and the schedule."""
        view = self.make(size=5)
        view.note_own_proposal(4)
        for proposer in (0, 1, 2):
            view.record_proposal(proposer, 4, frame=100, epoch=1)
        assert view.pending_removals() == {4: 2}
        view.heard_from(4, 110)
        assert view.pending_removals() == {}
        assert view.proposal_count(4) == 0
        assert view.should_propose(4)

    def test_applied_removals_are_never_rescinded(self):
        view = self.make(size=4)  # quorum 3
        for proposer in (0, 1, 2):
            view.record_proposal(proposer, 3, frame=100, epoch=2)
        view.apply_removals(epoch=3)
        view.heard_from(3, 120)  # straggler update from the departed
        assert 3 in view.removed

    def test_duplicate_proposer_counted_once(self):
        view = self.make(size=5)
        view.record_proposal(0, 4, 10, 1)
        assert not view.record_proposal(0, 4, 11, 1)
        assert view.proposal_count(4) == 1

    def test_non_roster_proposer_ignored(self):
        view = self.make(size=5)
        assert not view.record_proposal(99, 4, 10, 1)
        assert view.proposal_count(4) == 0

    def test_minority_cannot_evict(self):
        """Two colluders out of eight cannot remove an honest player."""
        view = self.make(size=8)  # quorum 5
        view.record_proposal(0, 7, 10, 1)
        view.record_proposal(1, 7, 10, 1)
        assert view.pending_removals() == {}
        assert 7 not in view.removed

    def test_removal_effective_at_future_epoch(self):
        view = self.make(size=4)  # quorum 3
        for proposer in (0, 1, 2):
            view.record_proposal(proposer, 3, 100, epoch=2)
        assert view.apply_removals(epoch=2) == set()
        assert view.apply_removals(epoch=3) == {3}
        assert 3 in view.removed
        assert view.current_roster() == [0, 1, 2]

    def test_no_double_scheduling(self):
        view = self.make(size=4)
        for proposer in (0, 1, 2):
            view.record_proposal(proposer, 3, 100, epoch=2)
        assert not view.record_proposal(1, 3, 101, epoch=2)

    def test_should_propose_once(self):
        view = self.make()
        assert view.should_propose(5)
        view.note_own_proposal(5)
        assert not view.should_propose(5)

    def test_quorum_shrinks_after_removal(self):
        view = self.make(size=5)
        for proposer in (0, 1, 2):
            view.record_proposal(proposer, 4, 100, epoch=0)
        view.apply_removals(epoch=2)
        assert view.quorum_size() == 3  # majority of 4 remaining


class TestChurnIntegration:
    @pytest.fixture(scope="class")
    def departed_session(self, small_trace, longest_yard):
        session = WatchmenSession(
            small_trace,
            game_map=longest_yard,
            latency=uniform_lan(8),
            departures={5: 40},
        )
        report = session.run()
        return session, report

    def test_all_honest_nodes_agree_on_removal(self, departed_session):
        session, _ = departed_session
        for player_id, node in session.nodes.items():
            if player_id == 5:
                continue
            assert 5 in node.membership.removed, f"node {player_id} disagrees"

    def test_schedules_converge(self, departed_session):
        session, _ = departed_session
        rosters = {
            tuple(node.schedule.roster)
            for player_id, node in session.nodes.items()
            if player_id != 5
        }
        assert len(rosters) == 1
        assert 5 not in next(iter(rosters))

    def test_departed_never_proxies_after_removal(self, departed_session):
        session, _ = departed_session
        node = session.nodes[0]
        final_epoch = session.config.epoch_of_frame(159)
        for player in node.schedule.roster:
            assert node.schedule.proxy_of(player, final_epoch) != 5

    def test_no_honest_player_removed(self, departed_session):
        session, _ = departed_session
        for player_id, node in session.nodes.items():
            if player_id == 5:
                continue
            assert node.membership.removed <= {5}

    def test_proposals_were_broadcast(self, departed_session):
        session, _ = departed_session
        node = session.nodes[0]
        assert node.membership.proposal_count(5) == 0 or 5 in (
            node.membership.removed
        )

    def test_honest_session_removes_nobody(self, honest_session_report):
        session, _ = honest_session_report
        for node in session.nodes.values():
            assert node.membership.removed == set()
