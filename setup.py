from setuptools import setup, find_packages
setup(name="repro", version="1.0.0", package_dir={"": "src"}, packages=find_packages("src"))
