"""Quickstart: simulate a deathmatch, run Watchmen over a simulated WAN.

Generates a 16-player game trace, replays it through the full Watchmen
protocol (random verifiable proxies, IS/VS/Others subscriptions, signed
messages, mutual verification) over a King-like latency matrix with 1 %
loss, and prints the responsiveness and bandwidth the session achieved.

Run:  python examples/quickstart.py
"""

from repro.core import WatchmenSession
from repro.game import generate_trace, make_longest_yard


def main() -> None:
    print("Generating a 16-player deathmatch on the longest-yard map...")
    game_map = make_longest_yard()
    trace = generate_trace(
        num_players=16, num_frames=400, seed=7, game_map=game_map
    )
    print(
        f"  {trace.num_frames} frames ({trace.num_frames * 0.05:.0f}s of play), "
        f"{len(trace.shots)} shots, {len(trace.kills)} kills"
    )

    print("Replaying through Watchmen over a simulated wide-area network...")
    session = WatchmenSession(trace, game_map=game_map)
    report = session.run()

    print(f"\n  messages sent      : {report.messages_sent}")
    print(f"  messages lost      : {report.messages_lost} "
          f"({report.messages_lost / report.messages_sent:.1%})")
    print(f"  mean upload        : {report.mean_upload_kbps:.0f} kbps/node")
    print(f"  max upload         : {report.max_upload_kbps:.0f} kbps/node")

    print("\n  age of received updates (frames → share):")
    for age, probability in sorted(report.age_pdf().items()):
        bar = "#" * int(probability * 50)
        print(f"    {age:>2}: {probability:6.1%} {bar}")
    print(f"  stale (≥3 frames = ≥150 ms): {report.stale_fraction(3):.2%}")

    suspicious = [r for r in report.ratings if r.rating >= 6.0]
    print(f"\n  verifications run  : {len(report.ratings)}")
    print(f"  high ratings       : {len(suspicious)} "
          f"({len(suspicious) / max(1, len(report.ratings)):.2%} — honest play)")
    print(f"  banned players     : {sorted(report.banned) or 'none'}")


if __name__ == "__main__":
    main()
