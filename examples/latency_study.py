"""Latency study: does Watchmen meet the 150 ms FPS budget? (Figure 7)

Runs the same game over LAN, King-like and PeerWise-like latency models
(the paper's two wide-area datasets) and over a deliberately slow network,
showing the age distribution of received updates and the effect of the
Section VI optimizations.

Run:  python examples/latency_study.py
"""

from repro.analysis import update_age_experiment
from repro.analysis.report import render_update_age
from repro.core import WatchmenConfig
from repro.game import generate_trace, make_longest_yard
from repro.net.latency import king_like, peerwise_like, uniform_lan


def main() -> None:
    game_map = make_longest_yard()
    trace = generate_trace(
        num_players=12, num_frames=300, seed=5, game_map=game_map
    )
    size = len(trace.player_ids())

    print("Replaying the same match over four network models...\n")
    results = []
    for latency in (
        uniform_lan(size, one_way_ms=0.5),
        king_like(size, seed=5),
        peerwise_like(size, seed=5),
        uniform_lan(size, one_way_ms=90.0),
    ):
        results.append(update_age_experiment(trace, game_map, latency))
    print(render_update_age(results))
    print(
        "\nQuake III tolerates 150 ms (3 frames); the 'stale' column is the "
        "paper's effective-loss metric.  The 90 ms/hop network shows what "
        "happens when two proxy hops no longer fit the budget."
    )

    print("\nRelaxed first hop (Section VI, optimization 3):")
    relaxed = update_age_experiment(
        trace,
        game_map,
        king_like(size, seed=5),
        config=WatchmenConfig(relax_first_hop=True),
    )
    print(render_update_age([relaxed]))
    print(
        "one hop instead of two — fresher updates at the cost of the "
        "consistency-cheat protection the forwarding proxy provides."
    )


if __name__ == "__main__":
    main()
