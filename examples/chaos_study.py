"""Chaos study: what breaks under faults, and what the protocol buys back.

Replays one deterministic deathmatch through the fault-injection matrix
(`repro.faults`) and narrates the recovery metrics — the headline
contrast is the same mid-epoch proxy kill run with and without the
failover layer: identical fault, bounded recovery vs a black hole.

Run:  python examples/chaos_study.py
"""

from repro.core.config import PROXY_PERIOD_FRAMES
from repro.faults.chaos import run_chaos

PLAYERS, FRAMES, SEED = 12, 240, 7


def main() -> None:
    print(
        f"Running the chaos matrix: {PLAYERS} players, {FRAMES} frames, "
        f"seed {SEED} (deterministic: rerunning reproduces every number)...\n"
    )
    results = run_chaos(players=PLAYERS, frames=FRAMES, seed=SEED)
    by_name = {r["scenario"]: r for r in results}

    header = (
        f"{'scenario':<24}{'evicted':>8}{'reproxy':>9}"
        f"{'stale.peak':>11}{'stale.after':>12}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        m = result["metrics"]
        print(
            f"{result['scenario']:<24}"
            f"{int(m['false_evictions']):>8}"
            f"{int(m['frames_to_reproxy']):>9}"
            f"{m['stale_frac_peak']:>11.3f}"
            f"{m['stale_frac_after']:>12.3f}"
        )

    kill = by_name["proxy_kill_midepoch"]["metrics"]
    hole = by_name["proxy_kill_no_failover"]["metrics"]
    print(
        f"\nThe headline contrast — the same proxy killed mid-epoch twice:\n"
        f"  with failover:    re-proxied in {int(kill['frames_to_reproxy'])} "
        f"frames (SLO: one proxy period = {PROXY_PERIOD_FRAMES})\n"
        f"  without failover: {int(hole['frames_to_reproxy'])} frames — the "
        f"clients stay black-holed until the schedule itself rotates."
    )

    partition = by_name["partition_2s_heal"]["metrics"]
    print(
        f"\nThe 2 s partition peaks at "
        f"{partition['stale_frac_peak']:.0%} stale view pairs, then heals to "
        f"{partition['stale_frac_after']:.1%} in the final period — and "
        f"evicts nobody: removal proposals double as liveness challenges, "
        f"so players whose heartbeats merely routed through the cut defend "
        f"themselves with direct bursts once reachable again."
    )

    evictions = sum(int(r["metrics"]["false_evictions"]) for r in results)
    print(
        f"\nFalse evictions across the whole matrix: {evictions} "
        f"(the hard SLO — faults may degrade views, but must never cost an "
        f"honest player his seat).\n"
        f"CI runs this same matrix with byte-identity and baseline-diff "
        f"gates; see docs/ROBUSTNESS.md."
    )


if __name__ == "__main__":
    main()
