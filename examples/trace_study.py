"""Trace study: presence heatmaps and interest-set dynamics (Figure 1).

Shows why fixed-radius AOI filtering fails — presence concentrates on a
few platforms (items, the central railgun) — and measures the IS churn
statistics that justify subscriber retention.

Run:  python examples/trace_study.py
"""

from repro.analysis import (
    churn_statistics,
    hotspot_concentration,
    presence_heatmap,
    render_ascii,
)
from repro.analysis.report import render_churn
from repro.game import generate_trace, make_longest_yard


def main() -> None:
    game_map = make_longest_yard()

    print("Simulating human-like players vs NPCs (24 players, 300 frames)...")
    humans = generate_trace(
        num_players=24, num_frames=300, seed=21, game_map=game_map
    )
    npcs = generate_trace(
        num_players=24, num_frames=300, seed=21, npc_fraction=1.0,
        game_map=game_map,
    )

    print("\n(a) Human movements — darker = more presence:\n")
    human_map = presence_heatmap(humans, game_map, grid=24)
    print(render_ascii(human_map))
    print("\n(b) NPC movements (predetermined waypoint paths):\n")
    npc_map = presence_heatmap(npcs, game_map, grid=24)
    print(render_ascii(npc_map))

    print(
        f"\npresence held by the top 10% of cells — humans: "
        f"{hotspot_concentration(human_map, 0.10):.0%}, NPCs: "
        f"{hotspot_concentration(npc_map, 0.10):.0%} (uniform: 10%)"
    )
    print(
        "A fixed-radius AOI centred on a hotspot would contain a large "
        "share of the game — which is why Watchmen filters by vision and "
        "attention instead."
    )

    print("\nInterest-set dynamics over the human trace:\n")
    print(render_churn(churn_statistics(humans, game_map)))


if __name__ == "__main__":
    main()
