"""A deathmatch with cheaters: injection, detection, and punishment.

Three players cheat — a speed hack, a fake-kill spammer, and an aimbot —
while nine play honestly.  The example shows the full Watchmen pipeline:
verifiers emit ratings, the reputation board accumulates evidence, and
only the cheaters end up banned.

Run:  python examples/deathmatch_with_cheaters.py
"""

from collections import Counter

from repro.analysis.detection import wire_cheat
from repro.cheats import AimbotCheat, FakeKillCheat, SpeedHack
from repro.core import (
    ReputationBoard,
    ThresholdReputation,
    WatchmenConfig,
    WatchmenSession,
)
from repro.game import generate_trace, make_longest_yard

SPEED_HACKER, KILL_FAKER, AIMBOTTER = 0, 1, 2


def build_cheats(trace, game_map, config):
    players = trace.player_ids()
    speed = SpeedHack(factor=2.5, cheat_rate=0.25, seed=1)
    faker = FakeKillCheat(
        [p for p in players if p != KILL_FAKER], cheat_rate=0.05, seed=2
    )
    aimbot = AimbotCheat(cheat_rate=0.3, seed=3)

    def most_behind_enemy(frame):
        import math

        frame = min(frame, trace.num_frames - 1)
        snapshots = trace.frames[frame]
        me = snapshots[AIMBOTTER]
        candidates = [
            s for pid, s in snapshots.items() if pid != AIMBOTTER and s.alive
        ]
        if not candidates:
            return None

        def delta(s):
            yaw = (s.position - me.position).yaw()
            return abs((yaw - me.yaw + math.pi) % (2 * math.pi) - math.pi)

        return max(candidates, key=delta)

    aimbot.target_source = most_behind_enemy
    for cheater_id, cheat in (
        (SPEED_HACKER, speed),
        (KILL_FAKER, faker),
        (AIMBOTTER, aimbot),
    ):
        wire_cheat(cheat, cheater_id, trace, game_map, config)
    return {SPEED_HACKER: speed, KILL_FAKER: faker, AIMBOTTER: aimbot}


def main() -> None:
    game_map = make_longest_yard()
    trace = generate_trace(
        num_players=12, num_frames=400, seed=11, game_map=game_map
    )
    config = WatchmenConfig()
    cheats = build_cheats(trace, game_map, config)
    board = ReputationBoard(
        system=ThresholdReputation(ban_threshold=0.99, min_reports=50)
    )

    print("Running a 12-player match with 3 cheaters (ids 0, 1, 2)...")
    session = WatchmenSession(
        trace,
        game_map=game_map,
        config=config,
        behaviours=dict(cheats),
        reputation=board,
    )
    report = session.run()

    print("\nGround truth (what the cheats actually did):")
    for cheater_id, cheat in cheats.items():
        print(
            f"  player {cheater_id} ({cheat.name}): "
            f"{len(cheat.log.cheat_frames)} cheat actions"
        )

    print("\nHigh-confidence detections per subject and check:")
    flagged = Counter(
        (r.subject_id, r.check)
        for r in report.ratings
        if r.rating >= 6.0 and r.verifier_id != r.subject_id
    )
    for (subject, check), count in sorted(flagged.items()):
        marker = "CHEATER" if subject in cheats else "honest"
        print(f"  player {subject:>2} [{marker}]  {check:<10} {count:>4} flags")

    print("\nReputation (1.0 = spotless):")
    for player in trace.player_ids():
        reputation = board.reputation_of(player)
        marker = "CHEATER" if player in cheats else "honest "
        print(f"  player {player:>2} [{marker}]  {reputation:0.3f}")

    print(f"\nBanned: {sorted(report.banned)}")
    honest_banned = report.banned - set(cheats)
    caught = report.banned & set(cheats)
    print(f"  cheaters caught : {sorted(caught)} of {sorted(cheats)}")
    print(f"  honest banned   : {sorted(honest_banned) or 'none'}")


if __name__ == "__main__":
    main()
