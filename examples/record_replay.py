"""Record & replay: the paper's trace-driven evaluation workflow.

The authors instrumented Quake III with "a tracing module ... that records
in a trace file all important game information", then built "a replay
engine that can replay game traces and generate the same network
traffic repeatedly and under different networking and proxy
architectures".  This example exercises the whole loop:

1. simulate a match and save the trace as JSONL;
2. reload the file and verify it is bit-identical;
3. replay the same trace under two different network conditions and
   compare the architectures' behaviour on identical inputs.

Run:  python examples/record_replay.py
"""

import tempfile
from pathlib import Path

from repro.core import WatchmenSession
from repro.game import GameTrace, generate_trace, make_longest_yard
from repro.net.latency import king_like, uniform_lan


def main() -> None:
    game_map = make_longest_yard()

    print("1. Recording a 10-player match...")
    trace = generate_trace(
        num_players=10, num_frames=300, seed=99, game_map=game_map
    )
    path = Path(tempfile.gettempdir()) / "watchmen-demo-trace.jsonl"
    trace.save_jsonl(path)
    print(f"   saved {path} ({path.stat().st_size / 1024:.0f} KiB, "
          f"{trace.num_frames} frames, {len(trace.kills)} kills)")

    print("2. Reloading and verifying the recording...")
    loaded = GameTrace.load_jsonl(path)
    identical = all(
        loaded.snapshot(f, p) == trace.snapshot(f, p)
        for f in range(0, trace.num_frames, 37)
        for p in trace.player_ids()
    )
    print(f"   snapshots identical: {identical}; "
          f"shots {len(loaded.shots)} == {len(trace.shots)}")

    print("3. Replaying the same inputs under different networks...")
    for name, latency in (
        ("LAN", uniform_lan(10, one_way_ms=0.5)),
        ("wide-area (king-like)", king_like(10, seed=99)),
    ):
        report = WatchmenSession(
            loaded, game_map=game_map, latency=latency
        ).run()
        pdf = report.age_pdf()
        fresh = pdf.get(0, 0.0) + pdf.get(1, 0.0)
        print(
            f"   {name:<22} fresh (≤1 frame): {fresh:6.1%}   "
            f"stale (≥3): {report.stale_fraction(3):5.2%}   "
            f"upload {report.mean_upload_kbps:4.0f} kbps"
        )

    print("\nSame game, same messages — only the network changed. "
          "That is what makes the experiments repeatable.")
    path.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
