"""Hybrid architecture: a trusted game server joins the proxy pool.

Section VI: "if game servers exist they can be easily incorporated by
providing the game lobby, extra bandwidth, and becoming the proxy for
some or all players."  This example runs the same match three ways —
pure P2P, server-proxies-everyone, and a weighted mix — and shows what
the server buys: players shed their forwarding load and the proxy
information channel moves to trusted hardware.

Run:  python examples/hybrid_server.py
"""

from repro.core import WatchmenSession
from repro.game import generate_trace, make_longest_yard
from repro.net.latency import king_like


def describe(name: str, report, server_ids) -> None:
    print(f"\n--- {name} ---")
    print(f"  player upload  : mean {report.mean_upload_kbps:.0f} kbps, "
          f"max {report.max_upload_kbps:.0f} kbps")
    for server, kbps in report.server_upload_kbps.items():
        print(f"  server {server} upload : {kbps:.0f} kbps")
    print(f"  stale updates  : {report.stale_fraction(3):.2%} (≥150 ms)")
    del server_ids


def main() -> None:
    game_map = make_longest_yard()
    trace = generate_trace(
        num_players=12, num_frames=300, seed=4, game_map=game_map
    )
    size = len(trace.player_ids())

    print("Same 12-player match under three deployments...")

    pure = WatchmenSession(
        trace, game_map=game_map, latency=king_like(size, seed=4)
    )
    describe("pure P2P", pure.run(), [])

    hybrid = WatchmenSession(
        trace,
        game_map=game_map,
        latency=king_like(size + 1, seed=4),
        servers=1,
    )
    report = hybrid.run()
    describe("server proxies everyone", report, hybrid.server_ids)
    player_proxies = {
        hybrid.schedule.proxy_of(p, e)
        for p in trace.player_ids()
        for e in range(6)
    }
    print(f"  every proxy assignment: {sorted(player_proxies)} "
          f"(the server — no player ever holds proxy-grade info)")

    weighted = WatchmenSession(
        trace,
        game_map=game_map,
        latency=king_like(size + 1, seed=4),
        servers=1,
        server_only_proxies=False,
        server_weight=6,
    )
    describe("weighted mix (server weight 6)", weighted.run(),
             weighted.server_ids)
    server = weighted.server_ids[0]
    served = sum(
        1
        for p in trace.player_ids()
        for e in range(6)
        if weighted.schedule.proxy_of(p, e) == server
    )
    print(f"  server handled {served} of {6 * size} proxy tenures; "
          f"players covered the rest")

    print(
        "\nTake-away: the hybrid mode trades hosting bandwidth for removing "
        "the player-proxy exposure channel — and it degrades gracefully "
        "back to pure P2P when the server leaves."
    )


if __name__ == "__main__":
    main()
