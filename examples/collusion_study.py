"""Collusion study: what coalitions of cheaters learn under each architecture.

Reproduces the Figure 4/5 analysis interactively: for growing coalition
sizes, how much information the colluders jointly hold about honest
players under client/server, Donnybrook and Watchmen — and how many
honest witnesses still surround each cheater under Watchmen.

Run:  python examples/collusion_study.py
"""

from repro.analysis import (
    exposure_experiment,
    honest_proxy_probability,
    witness_experiment,
)
from repro.analysis.report import render_exposure, render_witnesses
from repro.game import generate_trace, make_longest_yard

COALITION_SIZES = [1, 2, 4, 8]


def main() -> None:
    game_map = make_longest_yard()
    print("Generating a 24-player trace...")
    trace = generate_trace(
        num_players=24, num_frames=300, seed=17, game_map=game_map
    )

    print("\n=== Information disclosure (Figure 4) ===")
    print("Mean number of honest players per joint-knowledge category:\n")
    results = exposure_experiment(
        trace,
        game_map,
        COALITION_SIZES,
        coalitions_per_size=5,
        frame_stride=30,
    )
    print(render_exposure(results))
    print(
        "\nReading: under Watchmen most honest players are known only via "
        "1 Hz positions (infreq); Donnybrook hands every coalition dead-"
        "reckoning about everyone; client/server is the lower bound."
    )

    print("\n=== Witness availability (Figure 5) ===\n")
    witnesses = witness_experiment(
        trace,
        game_map,
        COALITION_SIZES,
        coalitions_per_size=5,
        frame_stride=30,
    )
    print(render_witnesses(witnesses))
    n = len(trace.player_ids())
    print("\nAnalytic honest-proxy probability 1-(k-1)/(n-1):")
    for size in COALITION_SIZES:
        print(f"  k={size:>2}: {honest_proxy_probability(n, size):.1%}")


if __name__ == "__main__":
    main()
