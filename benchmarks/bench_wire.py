"""Binary wire codec vs the JSON envelope, on real recorded traffic.

The paper budgets ~1024 bits for a signed update; the JSON envelope the
repo started with spends 4-8x that on field names and 17-significant-digit
float reprs.  This bench records one deterministic session, re-encodes
every datagram both ways, and publishes the bandwidth story the
scalability numbers now rest on:

- ``bytes_ratio_binary_over_json`` — total binary bytes / total JSON
  bytes over the whole recorded stream (the acceptance floor is a >=5x
  shrink, i.e. ratio <= 0.2);
- ``signed_state_update_max_bytes`` — the largest signed ``StateUpdate``
  on the wire, which must stay within 2x the paper's 1024-bit figure;
- ``mean_bytes.<MessageType>`` — per-type mean binary frame size
  (deterministic for the pinned scenario, so the bench-diff gate pins
  the codec's framing byte-for-byte).

Everything here is byte counting over a seeded recording — no timing —
so the published metrics are machine-independent and the gate is exact.
"""

from collections import defaultdict

from repro.core.wire import decode_bytes, encode_json_bytes
from repro.replay import TapeScenario, record_session

from conftest import SMOKE, publish

PLAYERS = 8
FRAMES = 60
SEED = 2013
#: Acceptance: binary traffic must be at least this many times smaller.
SHRINK_FLOOR = 5.0
#: Acceptance: a signed update stays within 2x the paper's 1024 bits.
SIGNED_UPDATE_CEILING_BITS = 2 * 1024


def test_binary_codec_beats_json(results_dir):
    tape = record_session(TapeScenario(players=PLAYERS, frames=FRAMES, seed=SEED))

    binary_bytes: dict[str, int] = defaultdict(int)
    json_bytes: dict[str, int] = defaultdict(int)
    counts: dict[str, int] = defaultdict(int)
    signed_update_max = 0
    for frame in tape.frames:
        for taped in frame.messages:
            message = decode_bytes(taped.payload)
            name = type(message).__name__
            binary_bytes[name] += len(taped.payload)
            json_bytes[name] += len(encode_json_bytes(message))
            counts[name] += 1
            if name == "StateUpdate" and message.signature is not None:
                signed_update_max = max(signed_update_max, len(taped.payload))

    total_binary = sum(binary_bytes.values())
    total_json = sum(json_bytes.values())
    ratio = total_binary / total_json

    lines = [
        f"{name:>20s}: n={counts[name]:5d}  "
        f"binary {binary_bytes[name] / counts[name]:7.1f} B  "
        f"json {json_bytes[name] / counts[name]:7.1f} B  "
        f"shrink {json_bytes[name] / binary_bytes[name]:.2f}x"
        for name in sorted(counts)
    ]
    lines.append(
        f"{'total':>20s}: {total_binary:,} B binary vs {total_json:,} B json "
        f"({total_json / total_binary:.2f}x, gate: >={SHRINK_FLOOR}x)"
    )
    lines.append(
        f"largest signed StateUpdate: {signed_update_max} B "
        f"= {signed_update_max * 8} bits "
        f"(paper budget 1024, gate: <= {SIGNED_UPDATE_CEILING_BITS})"
    )

    metrics: dict[str, float] = {
        "bytes_ratio_binary_over_json": ratio,
        "signed_state_update_max_bytes": float(signed_update_max),
    }
    for name in sorted(counts):
        metrics[f"mean_bytes.{name}"] = binary_bytes[name] / counts[name]

    publish(
        results_dir,
        "wire_codec",
        "Binary wire codec vs JSON envelope (recorded session traffic)",
        "\n".join(lines),
        params={
            "players": PLAYERS,
            "frames": FRAMES,
            "seed": SEED,
            "smoke": SMOKE,
        },
        metrics=metrics,
    )

    assert signed_update_max > 0, "session recorded no signed StateUpdate"
    assert ratio <= 1.0 / SHRINK_FLOOR, (
        f"binary traffic is only {1.0 / ratio:.2f}x smaller than JSON; "
        f"acceptance requires >={SHRINK_FLOOR}x"
    )
    assert signed_update_max * 8 <= SIGNED_UPDATE_CEILING_BITS, (
        f"signed StateUpdate is {signed_update_max * 8} bits on the wire; "
        f"must stay within 2x the paper's 1024-bit budget"
    )
