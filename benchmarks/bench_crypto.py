"""Microbenchmarks: signature schemes and the verifiable PRNG.

The paper's signatures are "lightweight (100 bits while state update
messages are 700 bits on average)".  This bench quantifies both schemes'
throughput and the size overhead per message class.
"""

from repro.core import WatchmenConfig
from repro.core.messages import StateUpdate, message_size_bits, signable_bytes
from repro.crypto import HmacSigner, SchnorrSigner, VerifiablePrng
from repro.game.avatar import AvatarSnapshot
from repro.game.vector import Vec3

from conftest import publish

MESSAGE = b"state update: frame 42, position (1,2,3), health 100"


def test_hmac_sign_verify_throughput(benchmark):
    signer = HmacSigner()
    signer.register(1)

    def op():
        signature = signer.sign(1, MESSAGE)
        assert signer.verify(1, MESSAGE, signature)

    benchmark(op)


def test_schnorr_sign_throughput(benchmark):
    signer = SchnorrSigner()
    signer.register(1)
    benchmark(lambda: signer.sign(1, MESSAGE))


def test_schnorr_verify_throughput(benchmark):
    signer = SchnorrSigner()
    signer.register(1)
    signature = signer.sign(1, MESSAGE)
    benchmark(lambda: signer.verify(1, MESSAGE, signature))


def test_prng_draw_throughput(benchmark):
    prng = VerifiablePrng(b"session", 3)
    benchmark(lambda: prng.next_below(47))


def test_signature_size_overhead(benchmark, results_dir):
    config = WatchmenConfig()
    snapshot = AvatarSnapshot(
        player_id=1, frame=0, position=Vec3(1, 2, 3), velocity=Vec3(),
        yaw=0.0, health=100, armor=0, weapon="machinegun", ammo=10,
        alive=True,
    )
    update = StateUpdate(1, 0, 1, snapshot)
    signer = HmacSigner(signature_bits=config.signature_bits)
    signed = StateUpdate(
        1, 0, 1, snapshot,
        signature=benchmark(lambda: signer.sign(1, signable_bytes(update))),
    )
    plain_bits = message_size_bits(update, config)
    signed_bits = message_size_bits(signed, config)
    overhead = (signed_bits - plain_bits) / plain_bits
    body = (
        f"state update: {plain_bits} bits unsigned, {signed_bits} bits "
        f"signed — overhead {overhead:.1%}\n"
        f"(paper: 100-bit signatures on ~700-bit updates ≈ 14% overhead)"
    )
    publish(
        results_dir,
        "crypto_overhead",
        "Signature size overhead",
        body,
        params={"signature_bits": config.signature_bits},
        metrics={
            "state_update_bits_unsigned": plain_bits,
            "state_update_bits_signed": signed_bits,
            "signature_overhead_fraction": overhead,
        },
    )
    assert signed_bits - plain_bits == config.signature_bits
    assert overhead < 0.2
