"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures, prints the
rows/series, and archives them under ``benchmarks/results/`` — a
human-readable ``.txt`` block *and* a structured ``.json`` artifact
(schema ``repro.bench.v1``, see ``docs/OBSERVABILITY.md``).  At the end
of a run every published row is also aggregated into the top-level
``BENCH_core.json``, the machine-readable perf trajectory that
``repro bench-diff`` gates CI on.

Traces are session-scoped: the expensive inputs are built once.  Set
``REPRO_BENCH_SMOKE=1`` for the reduced-size smoke subset CI runs.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.game import generate_trace, make_longest_yard
from repro.obs import bench_row, write_bench_json

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_CORE_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"

#: Reduced sizes for CI's bench-smoke job (REPRO_BENCH_SMOKE=1).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Parameters of the session-scoped fixture traces, stamped onto every
#: artifact so archived results are attributable to their inputs.
BENCH_TRACE_PARAMS = {
    "seed": 2013,
    "players": 12 if SMOKE else 24,
    "frames": 120 if SMOKE else 400,
}
SESSION_TRACE_PARAMS = {
    "seed": 2013,
    "players": 8 if SMOKE else 12,
    "frames": 80 if SMOKE else 240,
}

#: Rows published during this run, aggregated at session end.
_PUBLISHED_ROWS: list[dict] = []


def pytest_collection_modifyitems(items):
    """Every bench test carries the ``bench`` marker."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def yard():
    return make_longest_yard()


@pytest.fixture(scope="session")
def bench_trace(yard):
    """The main evaluation trace: 24 players, 400 frames (20 s of play)."""
    return generate_trace(
        num_players=BENCH_TRACE_PARAMS["players"],
        num_frames=BENCH_TRACE_PARAMS["frames"],
        seed=BENCH_TRACE_PARAMS["seed"],
        game_map=yard,
    )


@pytest.fixture(scope="session")
def session_trace(yard):
    """A lighter trace for full-protocol (network) benches."""
    return generate_trace(
        num_players=SESSION_TRACE_PARAMS["players"],
        num_frames=SESSION_TRACE_PARAMS["frames"],
        seed=SESSION_TRACE_PARAMS["seed"],
        game_map=yard,
    )


def publish(
    results_dir: Path,
    name: str,
    title: str,
    body: str,
    params: dict | None = None,
    metrics: dict[str, float] | None = None,
    wall_seconds: float | None = None,
) -> None:
    """Print a result block and archive it for EXPERIMENTS.md.

    ``params`` should name the run's inputs (seed, player count, frame
    count); each block and JSON artifact is stamped with them so archived
    results stay attributable across overwrites.  ``metrics`` (flat name
    -> number) additionally lands in ``results/<name>.json`` and in the
    aggregated ``BENCH_core.json`` for the bench-diff CI gate.
    """
    params = dict(params or {})
    stamp = " ".join(f"{key}={value}" for key, value in sorted(params.items()))
    generated = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    header = f"== {title} ==\n-- run: {stamp or 'unparameterised'} at {generated} --\n"
    block = f"{header}{body}\n"
    print("\n" + block)
    (results_dir / f"{name}.txt").write_text(block, encoding="utf-8")

    row = bench_row(
        bench=name,
        params=params,
        metrics=metrics,
        wall_seconds=wall_seconds,
    )
    write_bench_json(results_dir / f"{name}.json", row)
    _PUBLISHED_ROWS.append(row)


def pytest_sessionfinish(session, exitstatus):
    """Aggregate every published row into the top-level BENCH_core.json."""
    del session, exitstatus
    if _PUBLISHED_ROWS:
        write_bench_json(BENCH_CORE_PATH, list(_PUBLISHED_ROWS))
