"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures, prints the
rows/series, and archives them under ``benchmarks/results/``.  Traces are
session-scoped: the expensive inputs are built once.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.game import generate_trace, make_longest_yard

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def yard():
    return make_longest_yard()


@pytest.fixture(scope="session")
def bench_trace(yard):
    """The main evaluation trace: 24 players, 400 frames (20 s of play)."""
    return generate_trace(num_players=24, num_frames=400, seed=2013,
                          game_map=yard)


@pytest.fixture(scope="session")
def session_trace(yard):
    """A lighter trace for full-protocol (network) benches."""
    return generate_trace(num_players=12, num_frames=240, seed=2013,
                          game_map=yard)


def publish(results_dir: Path, name: str, title: str, body: str) -> None:
    """Print a result block and archive it for EXPERIMENTS.md."""
    block = f"== {title} ==\n{body}\n"
    print("\n" + block)
    (results_dir / f"{name}.txt").write_text(block, encoding="utf-8")
