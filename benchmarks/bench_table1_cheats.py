"""Table I: the cheat taxonomy — every row injected and countered."""

from repro.analysis import cheat_matrix_experiment
from repro.analysis.report import render_cheat_matrix

from conftest import SESSION_TRACE_PARAMS, publish


def test_table1_cheat_matrix(benchmark, yard, session_trace, results_dir):
    outcomes = benchmark.pedantic(
        cheat_matrix_experiment,
        args=(session_trace, yard),
        rounds=1,
        iterations=1,
    )
    body = render_cheat_matrix(outcomes)
    publish(results_dir, "table1_cheats",
            "Table I — cheat taxonomy, measured countermeasures", body,
            params=SESSION_TRACE_PARAMS)

    assert len(outcomes) == 14
    for outcome in outcomes:
        assert outcome.status in (
            "detected",
            "prevented",
            "exposure-minimised",
            "contained",
        ), f"{outcome.cheat_name}: {outcome.evidence}"
