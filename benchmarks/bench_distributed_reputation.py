"""Distributed reputation: gossip convergence on real session evidence.

Feeds the cheat ratings from a live Watchmen session (one speed hacker)
into the gossip network — each player contributes only his *own* ratings —
and measures how many rounds it takes for every node to reach the same
verdict, without any central lobby.
"""

from repro.analysis.detection import wire_cheat
from repro.analysis.report import render_table
from repro.cheats import SpeedHack
from repro.core import WatchmenConfig, WatchmenSession
from repro.core.reputation import BetaReputation, InteractionTag
from repro.core.reputation_gossip import GossipReputationNetwork
from repro.net.latency import king_like

from conftest import SESSION_TRACE_PARAMS, publish

CHEATER = 0


def test_distributed_reputation_convergence(benchmark, yard, session_trace,
                                            results_dir):
    players = session_trace.player_ids()

    def run():
        config = WatchmenConfig()
        cheat = SpeedHack(factor=2.5, cheat_rate=0.4, seed=3)
        wire_cheat(cheat, CHEATER, session_trace, yard, config)
        session = WatchmenSession(
            session_trace,
            game_map=yard,
            config=config,
            behaviours={CHEATER: cheat},
            latency=king_like(len(players), seed=3),
        )
        session.run()

        # Honest reputations settle ≥0.99; the cheater's sinks to ~0.84.
        # The ban threshold goes between, as the paper's "set based on the
        # success and false positive rates of the detection system".
        network = GossipReputationNetwork(
            players,
            seed=3,
            system_factory=lambda: BetaReputation(ban_threshold=0.95),
        )
        for player in players:
            node = session.nodes[player]
            for rating in node.metrics.ratings:
                if rating.verifier_id != player:
                    continue  # only first-hand observations enter gossip
                network.node(player).observe(InteractionTag.from_rating(rating))
        rounds = network.run_until_quiet(fanout=2, digest_size=4096)
        return network, rounds

    network, rounds = benchmark.pedantic(run, rounds=1, iterations=1)

    agreement = network.ban_agreement()
    spread = network.reputation_spread(CHEATER)
    body = render_table(
        ["metric", "value"],
        [
            ["gossip rounds to quiescence", str(rounds)],
            ["tags exchanged", str(network.tags_exchanged)],
            ["nodes banning the cheater",
             f"{agreement.get(CHEATER, 0.0):.0%}"],
            ["honest players banned anywhere",
             str(len(set(agreement) - {CHEATER}))],
            ["reputation spread for the cheater", f"{spread:.3f}"],
        ],
    )
    body += (
        "\n(no central lobby: every player ends with the same verdict from "
        "first-hand observations alone, spread by gossip)\n"
    )
    publish(results_dir, "distributed_reputation",
            "Distributed reputation — gossip convergence", body,
            params=SESSION_TRACE_PARAMS)

    assert agreement.get(CHEATER, 0.0) >= 0.99
    assert set(agreement) == {CHEATER}
    assert spread < 0.05
