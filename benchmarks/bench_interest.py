"""Interest-management fast path vs the retained naive reference.

The frame loop classifies IS/VS/Others for every player every 50 ms, so
``compute_all_sets`` is the hottest code in the repo.  This bench pits it
against :func:`repro.game.interest.compute_sets_reference` — the verbatim
naive implementation kept as the exactness gate — on deterministic synthetic
rosters placed on the longest-yard map, and publishes both sides in one
``repro.bench.v1`` artifact:

- ``pairs/sec`` for the naive and fast paths (body text);
- ``ratio_fast_over_naive.nN`` — the machine-independent cost ratio the
  bench-diff CI gate watches (``<= 1/3`` means the >=3x speedup holds);
- ``los_box_tests_fast.nN`` — deterministic count of slab tests the grid
  actually ran ("LOS tests avoided" is derived against the naive count);
- ``wall_seconds`` — end-to-end bench cost.

Equality of the two paths is asserted here too (cheap insurance on top of
the property tests in tests/test_game_interest_fast.py).
"""

import math
import time
from random import Random

from repro.game.avatar import AvatarSnapshot
from repro.game.interest import (
    InteractionRecency,
    InterestConfig,
    compute_all_sets,
    compute_sets_reference,
)
from repro.game.vector import Vec3

from conftest import SMOKE, publish

PLAYER_COUNTS = [16, 32] if SMOKE else [16, 32, 64]
SEED = 2013
#: Keep timing each path until it has run at least this long (noise floor).
MIN_MEASURE_SECONDS = 0.05 if SMOKE else 0.25
SPEEDUP_FLOOR = 3.0  # acceptance: >=3x on pairs/sec at 32+ players


def _make_roster(
    game_map, num_players: int, seed: int
) -> tuple[dict[int, AvatarSnapshot], InteractionRecency]:
    """Deterministic synthetic frame: players jittered around respawns."""
    rng = Random(seed)
    spawns = game_map.respawn_points
    snapshots: dict[int, AvatarSnapshot] = {}
    for pid in range(num_players):
        base = spawns[pid % len(spawns)]
        position = Vec3(
            base.x + rng.uniform(-600.0, 600.0),
            base.y + rng.uniform(-600.0, 600.0),
            base.z + rng.uniform(0.0, 80.0),
        )
        snapshots[pid] = AvatarSnapshot(
            player_id=pid,
            frame=0,
            position=position,
            velocity=Vec3(),
            yaw=rng.uniform(-math.pi, math.pi),
            health=100,
            armor=0,
            weapon="machinegun",
            ammo=10,
            alive=rng.random() > 0.05,
        )
    recency = InteractionRecency()
    for _ in range(num_players):
        a, b = rng.randrange(num_players), rng.randrange(num_players)
        if a != b:
            recency.record(a, b, 0)
    return snapshots, recency


def _measure(op, base_reps: int) -> tuple[float, int]:
    """Run ``op(rep)`` batches of ``base_reps`` until MIN_MEASURE_SECONDS."""
    total = 0.0
    reps = 0
    while total < MIN_MEASURE_SECONDS:
        start = time.perf_counter()
        for _ in range(base_reps):
            op(reps)
            reps += 1
        total += time.perf_counter() - start
    return total, reps


def test_interest_fast_path_speedup(yard, results_dir):
    config = InterestConfig()
    wall_start = time.perf_counter()
    lines = []
    metrics = {}
    speedups = {}

    for n in PLAYER_COUNTS:
        snapshots, recency = _make_roster(yard, n, SEED)

        # Exactness gate: identical InterestSets before any timing.
        fast_sets = compute_all_sets(snapshots, yard, 0, config, recency)
        for pid in snapshots:
            reference = compute_sets_reference(
                snapshots[pid], snapshots, yard, 0, config, recency
            )
            assert fast_sets[pid] == reference, f"fast path diverged for {pid}"

        def run_naive(rep, snaps=snapshots, rec=recency):
            for pid in snaps:
                compute_sets_reference(snaps[pid], snaps, yard, rep, config, rec)

        def run_fast(rep, snaps=snapshots, rec=recency):
            compute_all_sets(snaps, yard, rep, config, rec)

        yard.los_queries = yard.los_boxes_tested = 0
        naive_seconds, naive_reps = _measure(run_naive, max(1, 64 // n))
        naive_boxes_per_rep = yard.los_boxes_tested / naive_reps

        yard.los_queries = yard.los_boxes_tested = 0
        fast_seconds, fast_reps = _measure(run_fast, max(1, 256 // n))
        fast_boxes_per_rep = yard.los_boxes_tested / fast_reps

        pairs = n * (n - 1)
        naive_pps = pairs * naive_reps / naive_seconds
        fast_pps = pairs * fast_reps / fast_seconds
        speedup = fast_pps / naive_pps
        speedups[n] = speedup
        avoided = 1.0 - fast_boxes_per_rep / max(1.0, naive_boxes_per_rep)
        lines.append(
            f"n={n:3d}: naive {naive_pps:10,.0f} pairs/s | fast "
            f"{fast_pps:10,.0f} pairs/s | speedup {speedup:4.2f}x | "
            f"LOS box tests {naive_boxes_per_rep:,.0f} -> "
            f"{fast_boxes_per_rep:,.0f} per frame ({avoided:.1%} avoided)"
        )
        # Gated costs: the timing ratio is machine-independent; the box-test
        # count is fully deterministic (same roster, same grid).
        metrics[f"ratio_fast_over_naive.n{n}"] = 1.0 / speedup
        metrics[f"los_box_tests_fast.n{n}"] = fast_boxes_per_rep

    wall = time.perf_counter() - wall_start
    metrics["wall_seconds"] = wall
    body = "\n".join(lines) + (
        "\n(fast = spatial grid + per-frame symmetric LOS cache + hoisted "
        "observer state + top-k selection; naive = retained reference)\n"
    )
    publish(
        results_dir,
        "interest_fast_path",
        "Interest-management fast path vs naive reference",
        body,
        params={
            "seed": SEED,
            "players": PLAYER_COUNTS,
            "min_measure_seconds": MIN_MEASURE_SECONDS,
            "smoke": SMOKE,
        },
        metrics=metrics,
        wall_seconds=wall,
    )

    for n, speedup in speedups.items():
        if n >= 32:
            assert speedup >= SPEEDUP_FLOOR, (
                f"fast path only {speedup:.2f}x at n={n}; acceptance "
                f"requires >={SPEEDUP_FLOOR}x on pairs/sec"
            )
