"""Tape-recording overhead on the live frame loop.

The recorder's contract (docs/REPLAY.md) is that record mode is pure
observation: during the run it only appends payload references, and all
wire encoding happens in ``finalize()`` after the loop.  This bench holds
it to the acceptance number — **<= 10 % frame-loop wall overhead** — by
running the identical session untapped and tapped in interleaved pairs
and publishing the ratio:

- ``overhead_ratio.nN`` — tapped / untapped frame-loop wall (median of
  per-pair ratios; pairs run back-to-back so both sides see the same
  machine conditions, and the order alternates so drift cancels).  A
  ratio above 1.10 fails the in-bench gate outright, and the committed
  baseline keeps the bench-diff 25 % threshold tight around the
  recorded value.
- ``tape_messages.nN`` / ``tape_payload_bytes.nN`` — deterministic
  stream totals; any drift means the wire behaviour changed.
- ``finalize_seconds`` lands in the body text only (machine-dependent).

Smoke runs use a 12-player, 60-frame session (seconds, not half a
minute); the full run measures the documented 32-player, 240-frame
contract.  The ``.nN`` metric suffix follows the roster size, so the two
modes pin separate baseline rows instead of fighting over one key.

A byte-identity assertion rides along: two recordings of the same
scenario must produce identical fingerprints.
"""

import gc
import time

from repro.replay import TapeRecorder, TapeScenario

from conftest import SMOKE, publish

PLAYERS = 12 if SMOKE else 32
FRAMES = 60 if SMOKE else 240
SEED = 2013
MIN_PAIRS = 3 if SMOKE else 4
MAX_PAIRS = 8 if SMOKE else 6


def _scenario() -> TapeScenario:
    return TapeScenario(players=PLAYERS, frames=FRAMES, seed=SEED)


def _timed_run(session) -> float:
    # Pause the collector for the timed region so GC pauses (whose timing
    # depends on allocation history, not on the recorder) don't land on
    # one side of the comparison.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        session.run()
        return time.perf_counter() - start
    finally:
        gc.enable()


def _run_untapped(scenario, trace, game_map) -> float:
    return _timed_run(scenario.make_session(trace, game_map=game_map))


def _run_tapped(scenario, trace, game_map, finalize=False):
    session = scenario.make_session(trace, game_map=game_map)
    recorder = TapeRecorder(session, scenario).attach()
    loop_wall = _timed_run(session)
    if not finalize:
        return loop_wall, 0.0, None
    start = time.perf_counter()
    tape = recorder.finalize()
    return loop_wall, time.perf_counter() - start, tape


def test_tape_record_overhead(results_dir):
    scenario = _scenario()
    game_map = scenario.make_map()
    trace = scenario.make_trace(game_map)

    # Paired design: each pair runs untapped and tapped back-to-back (the
    # two sides see near-identical machine conditions), alternating which
    # side goes first so monotone drift (thermal throttling, noisy
    # neighbours) cancels instead of biasing one side.  The reported
    # statistic is the *median of per-pair ratios* — robust to the odd
    # pair that lands on a load spike, unlike a cross-pair min that can
    # compare samples from different load windows.  Finalize is
    # off-budget (docs/REPLAY.md) and is only invoked on the two runs
    # whose tapes the byte-identity assertion needs.
    untapped_walls, tapped_walls = [], []
    finalize_wall = 0.0
    tape = None

    def run_pair(index):
        nonlocal finalize_wall, tape
        if index % 2 == 0:
            untapped_walls.append(_run_untapped(scenario, trace, game_map))
        loop_wall, fin_wall, fin_tape = _run_tapped(
            scenario, trace, game_map, finalize=tape is None
        )
        tapped_walls.append(loop_wall)
        if fin_tape is not None:
            finalize_wall, tape = fin_wall, fin_tape
        if index % 2 == 1:
            untapped_walls.append(_run_untapped(scenario, trace, game_map))

    def median_ratio():
        ratios = sorted(
            tapped / untapped
            for tapped, untapped in zip(tapped_walls, untapped_walls)
        )
        middle = len(ratios) // 2
        if len(ratios) % 2:
            return ratios[middle]
        return (ratios[middle - 1] + ratios[middle]) / 2.0

    for i in range(MIN_PAIRS):
        run_pair(i)
    # Marginal readings get extra pairs (bounded) before the gate fires:
    # on a contended container an unlucky pair or two is common, and more
    # samples is the honest fix — the 1.10 gate itself stays hard.
    while median_ratio() > 1.08 and len(tapped_walls) < MAX_PAIRS:
        run_pair(len(tapped_walls))
    ratio = median_ratio()

    rerun = _run_tapped(scenario, trace, game_map, finalize=True)[2]
    assert rerun.fingerprint() == tape.fingerprint(), (
        "two recordings of one scenario must be byte-identical"
    )

    body = "\n".join(
        [
            f"players={PLAYERS} frames={FRAMES} seed={SEED}",
            f"frame-loop wall untapped: {min(untapped_walls):.3f}s (min)",
            f"frame-loop wall tapped:   {min(tapped_walls):.3f}s (min)",
            f"overhead ratio:           {ratio:.3f} "
            f"(median of {len(tapped_walls)} pairs, gate: <= 1.10)",
            f"finalize (off-loop):      {finalize_wall:.3f}s",
            f"stream: {tape.num_messages} messages, "
            f"{tape.payload_bytes} payload bytes",
        ]
    )
    publish(
        results_dir,
        "tape_overhead",
        "Tape recording overhead (record mode vs untapped frame loop)",
        body,
        params={
            "players": PLAYERS,
            "frames": FRAMES,
            "seed": SEED,
            "smoke": SMOKE,
        },
        metrics={
            f"overhead_ratio.n{PLAYERS}": ratio,
            f"tape_messages.n{PLAYERS}": float(tape.num_messages),
            f"tape_payload_bytes.n{PLAYERS}": float(tape.payload_bytes),
        },
        wall_seconds=sum(untapped_walls) + sum(tapped_walls),
    )
    assert ratio <= 1.10, f"record-mode overhead {ratio:.3f} exceeds 10% budget"
