"""In-text IS-churn statistics (Section VI): turnover, spell lengths,
frame-to-frame stability, attention-centre lag."""

from repro.analysis import churn_statistics
from repro.analysis.report import render_churn

from conftest import BENCH_TRACE_PARAMS, publish


def test_text_churn_statistics(benchmark, yard, bench_trace, results_dir):
    stats = benchmark.pedantic(
        churn_statistics,
        args=(bench_trace, yard),
        rounds=1,
        iterations=1,
    )
    body = render_churn(stats)
    body += (
        "\n(our bot players churn faster than the paper's human traces; "
        "the retention-timeout design conclusion is unchanged)\n"
    )
    publish(results_dir, "text_churn", "In-text IS churn statistics", body,
            params=BENCH_TRACE_PARAMS)

    assert 0.1 <= stats.turnover_after_period <= 0.99
    assert stats.frame_stability >= 0.7
    assert stats.spells_longer_than_cap <= 0.2
    assert stats.slow_attention_centre >= 0.5
