"""Map sensitivity: IS churn and visibility across map regimes.

"While this value can be slightly different for different maps, we found
it to be fairly accurate for most gaming sessions" — the subscriber-
retention timeout derives from IS churn, so this bench recomputes the
churn statistics on the open longest-yard map and on the heavily occluded
corridors map.
"""

from repro.analysis import churn_statistics
from repro.analysis.report import render_table
from repro.game import compute_sets, generate_trace, make_corridors

from conftest import BENCH_TRACE_PARAMS, publish


def mean_set_sizes(trace, game_map):
    interest_total, vision_total, samples = 0, 0, 0
    for frame in range(40, trace.num_frames, 60):
        snapshots = trace.frames[frame]
        for snap in snapshots.values():
            sets = compute_sets(snap, snapshots, game_map, frame)
            interest_total += len(sets.interest)
            vision_total += len(sets.vision)
            samples += 1
    return interest_total / samples, vision_total / samples


def test_map_sensitivity(benchmark, yard, bench_trace, results_dir):
    corridors = make_corridors()

    def sweep():
        tight_trace = generate_trace(
            num_players=24, num_frames=400, seed=2013, game_map=corridors
        )
        return {
            "longest-yard (open)": (
                churn_statistics(bench_trace, yard),
                mean_set_sizes(bench_trace, yard),
            ),
            "corridors (occluded)": (
                churn_statistics(tight_trace, corridors),
                mean_set_sizes(tight_trace, corridors),
            ),
        }

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, (stats, (mean_is, mean_vs)) in outcomes.items():
        rows.append(
            [
                name,
                f"{mean_is:.1f}",
                f"{mean_vs:.1f}",
                f"{stats.turnover_after_period:.0%}",
                f"{stats.frame_stability:.0%}",
            ]
        )
    body = render_table(
        ["map", "mean IS", "mean VS", "IS turnover/40f", "frame stability"],
        rows,
    )
    body += (
        "\n(occlusion shrinks the visible sets; the retention timeout "
        "derived on one map transfers because churn stays in the same "
        "regime — the paper's cross-map observation)\n"
    )
    publish(results_dir, "maps", "Map sensitivity — churn & visibility", body,
            params=BENCH_TRACE_PARAMS)

    open_sets = outcomes["longest-yard (open)"][1]
    tight_sets = outcomes["corridors (occluded)"][1]
    assert tight_sets[0] + tight_sets[1] < open_sets[0] + open_sets[1]
    for stats, _ in outcomes.values():
        assert 0.1 <= stats.turnover_after_period <= 0.99
