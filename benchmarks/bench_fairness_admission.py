"""Fairness & heterogeneity (Section VI): feasibility test + weighted pools.

A population with mixed uplinks goes through the admission feasibility
test; low-capacity players are excluded from the proxy pool and powerful
ones serve several tenures.  The bench verifies the resulting session (a)
never asks a weak node to forward and (b) still meets the latency budget.
"""

from repro.analysis.report import render_table
from repro.core import WatchmenSession, feasibility_test
from repro.net.latency import king_like

from conftest import SESSION_TRACE_PARAMS, publish


def test_fairness_admission(benchmark, yard, session_trace, results_dir):
    players = session_trace.player_ids()
    # A third of the players on weak DSL uplinks, a third mid, a third fat.
    capacities = {}
    for index, player in enumerate(players):
        capacities[player] = (120.0, 900.0, 8000.0)[index % 3]

    def sweep():
        decision = feasibility_test(capacities)
        session = WatchmenSession(
            session_trace,
            game_map=yard,
            latency=king_like(len(players), seed=9),
            proxy_pool=decision.proxy_pool,
            pool_weights=decision.pool_weights,
        )
        return decision, session, session.run()

    decision, session, report = benchmark.pedantic(sweep, rounds=1, iterations=1)

    weak = [p for p in players if capacities[p] == 120.0]
    rows = []
    for player in players:
        rows.append(
            [
                str(player),
                f"{capacities[player]:.0f}",
                "yes" if player in decision.proxy_pool else "no",
                str(decision.pool_weights.get(player, 0)),
                f"{session.network.meter.upload_kbps(player):.0f}",
            ]
        )
    body = render_table(
        ["player", "capacity kbps", "in pool", "weight", "measured up kbps"],
        rows,
    )
    body += (
        f"\npublisher floor {decision.publisher_kbps:.0f} kbps, one proxy "
        f"tenure {decision.proxy_kbps:.0f} kbps; stale ≥3: "
        f"{report.stale_fraction(3):.2%}\n"
    )
    publish(results_dir, "fairness_admission",
            "Fairness — feasibility test and weighted proxy pool", body,
            params=SESSION_TRACE_PARAMS)

    # Weak players admitted but never serve as proxies.
    for player in weak:
        assert player in decision.admitted
        assert player not in decision.proxy_pool
        for epoch in range(5):
            for subject in players:
                assert session.schedule.proxy_of(subject, epoch) != player
    # The game still meets the FPS budget.
    assert report.stale_fraction(3) < 0.05
    # Weak players upload measurably less than the pool members.
    weak_up = sum(session.network.meter.upload_kbps(p) for p in weak) / len(weak)
    pool_up = sum(
        session.network.meter.upload_kbps(p) for p in decision.proxy_pool
    ) / len(decision.proxy_pool)
    assert weak_up < pool_up
