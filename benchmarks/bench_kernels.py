"""Batched frame kernels vs their retained scalar references.

The simulator's per-frame hot loops — physics integration, dead-reckoning
trajectory simulation/deviation, attention scoring — each ship a flat
batched kernel whose naive implementation is retained verbatim as the
exactness gate (tests/test_game_kernels.py asserts bit-identity).  This
bench pins the *performance* half of that contract: for each kernel it
times fast vs naive on deterministic synthetic workloads and publishes

- ``physics_ratio_fast_over_naive.n48`` — ``Physics.step_many`` over a
  48-avatar roster vs per-avatar ``Physics.step``;
- ``guidance_ratio_fast_over_naive`` — flat ``simulate_guidance`` vs the
  per-frame ``position_at`` reference;
- ``deviation_ratio_fast_over_naive`` — inlined
  ``trajectory_deviation_area`` vs the ``Vec3``-per-pair reference;
- ``attention_ratio_fast_over_naive.n48`` — batched
  ``ObserverFrame.attention_scores`` vs the per-pair naive reference.

Ratios are machine-independent costs the bench-diff CI gate watches; each
also carries a hard in-bench ceiling so a regressed kernel fails loudly.
The committed baseline pins every ratio at ``ceiling / 1.25`` so the
bench-diff gate's 25 % threshold trips at exactly the in-bench ceiling —
run-to-run timing noise below the ceiling never fails CI, a genuine
kernel regression fails both gates at the same number.  Equality of fast
and naive outputs is asserted before any timing (cheap insurance on top
of the property tests).
"""

import math
import time
from random import Random

from repro.game.deadreckoning import (
    GuidancePrediction,
    simulate_guidance,
    simulate_guidance_reference,
    trajectory_deviation_area,
    trajectory_deviation_area_reference,
)
from repro.game.avatar import AvatarSnapshot
from repro.game.interest import (
    InteractionRecency,
    InterestConfig,
    ObserverFrame,
    _attention_score_reference,
)
from repro.game.physics import MoveIntent, Physics
from repro.game.vector import Vec3

from conftest import SMOKE, publish

PLAYERS = 48  # paper scale, always: the kernels exist for this roster size
SEED = 2013
#: Keep timing each path until it has run at least this long (noise floor).
MIN_MEASURE_SECONDS = 0.05 if SMOKE else 0.25
#: Acceptance ceilings (fast/naive cost; measured ~0.17-0.42 locally).
RATIO_CEILINGS = {
    "physics_ratio_fast_over_naive.n48": 0.85,
    "guidance_ratio_fast_over_naive": 0.85,
    "deviation_ratio_fast_over_naive": 0.60,
    "attention_ratio_fast_over_naive.n48": 0.70,
}


def _measure(op, base_reps: int) -> float:
    """Seconds per rep: run batches of ``base_reps`` until the noise floor."""
    total = 0.0
    reps = 0
    while total < MIN_MEASURE_SECONDS:
        start = time.perf_counter()
        for _ in range(base_reps):
            op()
        total += time.perf_counter() - start
        reps += base_reps
    return total / reps


def _physics_batch(game_map, count: int):
    rng = Random(SEED)
    batch = []
    for _ in range(count):
        position = Vec3(
            rng.uniform(-2000.0, 2000.0),
            rng.uniform(-2000.0, 2000.0),
            rng.uniform(-100.0, 400.0),
        )
        velocity = Vec3(
            rng.uniform(-300.0, 300.0),
            rng.uniform(-300.0, 300.0),
            rng.uniform(-600.0, 300.0),
        )
        intent = MoveIntent(
            wish_direction=Vec3(rng.uniform(-1, 1), rng.uniform(-1, 1), 0.0),
            wish_speed=rng.uniform(0.0, 360.0),
            jump=rng.random() < 0.2,
            yaw=rng.uniform(-math.pi, math.pi),
        )
        batch.append((position, velocity, rng.uniform(-math.pi, math.pi), intent))
    return batch


def _roster(count: int) -> dict[int, AvatarSnapshot]:
    rng = Random(SEED + 1)
    return {
        pid: AvatarSnapshot(
            player_id=pid,
            frame=0,
            position=Vec3(
                rng.uniform(-2000.0, 2000.0),
                rng.uniform(-2000.0, 2000.0),
                rng.uniform(0.0, 300.0),
            ),
            velocity=Vec3(),
            yaw=rng.uniform(-math.pi, math.pi),
            health=100,
            armor=0,
            weapon="machinegun",
            ammo=10,
            alive=True,
        )
        for pid in range(count)
    }


def test_kernels_beat_references(yard, results_dir):
    wall_start = time.perf_counter()
    metrics: dict[str, float] = {}
    lines = []

    # -- physics -----------------------------------------------------------
    physics = Physics(yard)
    batch = _physics_batch(yard, PLAYERS)
    assert physics.step_many(batch) == [physics.step(*args) for args in batch]
    naive = _measure(lambda: [physics.step(*args) for args in batch], 4)
    fast = _measure(lambda: physics.step_many(batch), 4)
    metrics[f"physics_ratio_fast_over_naive.n{PLAYERS}"] = fast / naive
    lines.append(
        f"physics step_many (n={PLAYERS}):  {naive * 1e6:8.0f}us naive | "
        f"{fast * 1e6:8.0f}us fast | {naive / fast:.2f}x"
    )

    # -- dead reckoning ----------------------------------------------------
    prediction = GuidancePrediction(
        frame=100,
        origin=Vec3(10.0, -20.0, 64.0),
        velocity=Vec3(120.0, -40.0, 0.0),
        yaw=0.3,
        horizon_frames=20,
    )
    span = (95, 130)
    assert simulate_guidance(prediction, *span) == simulate_guidance_reference(
        prediction, *span
    )
    naive = _measure(lambda: simulate_guidance_reference(prediction, *span), 64)
    fast = _measure(lambda: simulate_guidance(prediction, *span), 64)
    metrics["guidance_ratio_fast_over_naive"] = fast / naive
    lines.append(
        f"simulate_guidance (36 frames):   {naive * 1e6:8.1f}us naive | "
        f"{fast * 1e6:8.1f}us fast | {naive / fast:.2f}x"
    )

    rng = Random(SEED + 2)
    predicted = simulate_guidance(prediction, *span)
    actual = [
        Vec3(p.x + rng.uniform(-8, 8), p.y + rng.uniform(-8, 8), p.z)
        for p in predicted
    ]
    assert trajectory_deviation_area(
        predicted, actual
    ) == trajectory_deviation_area_reference(predicted, actual)
    naive = _measure(
        lambda: trajectory_deviation_area_reference(predicted, actual), 64
    )
    fast = _measure(lambda: trajectory_deviation_area(predicted, actual), 64)
    metrics["deviation_ratio_fast_over_naive"] = fast / naive
    lines.append(
        f"trajectory_deviation_area:       {naive * 1e6:8.1f}us naive | "
        f"{fast * 1e6:8.1f}us fast | {naive / fast:.2f}x"
    )

    # -- attention scoring -------------------------------------------------
    roster = _roster(PLAYERS)
    config = InterestConfig()
    recency = InteractionRecency()
    rng = Random(SEED + 3)
    for _ in range(PLAYERS):
        a, b = rng.randrange(PLAYERS), rng.randrange(PLAYERS)
        if a != b:
            recency.record(a, b, rng.randrange(50))
    oframe = ObserverFrame(roster[0], config)
    candidates = [pid for pid in roster if pid != 0]
    batched = oframe.attention_scores(roster, candidates, 50, recency)
    assert batched == {
        pid: _attention_score_reference(roster[0], roster[pid], 50, config, recency)
        for pid in candidates
    }
    naive = _measure(
        lambda: [
            _attention_score_reference(
                roster[0], roster[pid], 50, config, recency
            )
            for pid in candidates
        ],
        16,
    )
    fast = _measure(
        lambda: oframe.attention_scores(roster, candidates, 50, recency), 16
    )
    metrics[f"attention_ratio_fast_over_naive.n{PLAYERS}"] = fast / naive
    lines.append(
        f"attention_scores (n={PLAYERS}):     {naive * 1e6:8.1f}us naive | "
        f"{fast * 1e6:8.1f}us fast | {naive / fast:.2f}x"
    )

    wall = time.perf_counter() - wall_start
    publish(
        results_dir,
        "frame_kernels",
        "Batched frame kernels vs retained scalar references",
        "\n".join(lines)
        + "\n(fast = flat batched kernels; naive = retained references; "
        "bit-identity enforced by tests/test_game_kernels.py)\n",
        params={
            "players": PLAYERS,
            "seed": SEED,
            "min_measure_seconds": MIN_MEASURE_SECONDS,
            "smoke": SMOKE,
        },
        metrics=metrics,
        wall_seconds=wall,
    )

    for name, ceiling in RATIO_CEILINGS.items():
        assert metrics[name] <= ceiling, (
            f"{name} = {metrics[name]:.3f} exceeds acceptance ceiling "
            f"{ceiling} (kernel regressed towards its naive reference)"
        )
