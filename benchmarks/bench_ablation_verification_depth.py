"""Ablation: sanity checks vs action-repetition replay (Section V-A).

The paper ships sanity checks "for efficiency reasons" and notes that
"action repetition checks ... would provide more accuracy but incur
higher costs".  This bench quantifies both halves of that sentence on a
*sub-envelope* cheat (a 1.2× speed multiplier the sanity check's
tolerance forgives).
"""

import time

from repro.analysis.detection import wire_cheat
from repro.analysis.report import render_table
from repro.cheats import SpeedHack
from repro.core import WatchmenConfig, WatchmenSession
from repro.net.latency import uniform_lan

from conftest import SESSION_TRACE_PARAMS, publish


def run_depth(trace, yard, action_repetition: bool):
    config = WatchmenConfig(action_repetition=action_repetition)
    cheat = SpeedHack(factor=1.2, cheat_rate=0.3, seed=5)
    wire_cheat(cheat, 0, trace, yard, config)
    session = WatchmenSession(
        trace,
        game_map=yard,
        config=config,
        behaviours={0: cheat},
        latency=uniform_lan(len(trace.player_ids())),
    )
    started = time.perf_counter()
    report = session.run()
    elapsed = time.perf_counter() - started
    # Honest movement rates exactly 1.0 under both checks, so any rating
    # above ~2 is a real signal; the sub-envelope cheat produces small but
    # systematic reachability gaps (≈3u for a 1.2x multiplier).
    hits = [
        r
        for r in report.ratings
        if r.subject_id == 0 and r.check == "position" and r.rating >= 2.0
    ]
    false_hits = [
        r
        for r in report.ratings
        if r.subject_id != 0 and r.check == "position" and r.rating >= 2.0
    ]
    replays = sum(
        node.action_repetition_verifier.replays_run
        for node in session.nodes.values()
        if node.action_repetition_verifier is not None
    )
    return {
        "hits": len(hits),
        "false_hits": len(false_hits),
        "cheat_events": len(cheat.log.cheat_frames),
        "seconds": elapsed,
        "replays": replays,
    }


def test_ablation_verification_depth(benchmark, yard, session_trace,
                                     results_dir):
    def sweep():
        return {
            "sanity checks": run_depth(session_trace, yard, False),
            "action repetition": run_depth(session_trace, yard, True),
        }

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            name,
            str(o["hits"]),
            str(o["cheat_events"]),
            str(o["false_hits"]),
            f"{o['seconds']:.1f}s",
            str(o["replays"]),
        ]
        for name, o in outcomes.items()
    ]
    body = render_table(
        ["depth", "detections", "cheat events", "honest FPs",
         "wall time", "physics replays"],
        rows,
    )
    body += (
        "\n(a 1.2x speed hack hides inside the sanity check's tolerance; "
        "the replay check exposes it — at a measurable compute premium)\n"
    )
    publish(results_dir, "ablation_verification_depth",
            "Ablation — verification depth", body,
            params=SESSION_TRACE_PARAMS)

    sanity = outcomes["sanity checks"]
    replay = outcomes["action repetition"]
    assert replay["hits"] > sanity["hits"]
    assert replay["false_hits"] == 0
    assert replay["replays"] > 10_000  # the "higher costs" half
