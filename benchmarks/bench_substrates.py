"""Microbenchmarks: simulator frame rate, event engine, interest filtering.

These bound the cost of the substrates underneath every experiment — a
regression here silently slows the whole harness.
"""

from repro.game import DeathmatchSimulator, SimulationConfig, compute_sets
from repro.game.trace import GameTrace
from repro.net.events import EventQueue
from repro.net.latency import king_like
from repro.net.transport import DatagramNetwork, NetworkConfig


def test_simulator_frame_rate(benchmark, yard):
    simulator = DeathmatchSimulator(
        SimulationConfig(num_players=24, num_frames=1, seed=1), game_map=yard
    )
    trace = GameTrace(map_name=yard.name, num_players=24)
    frame_counter = iter(range(10**9))

    benchmark(lambda: simulator._step_frame(next(frame_counter), trace))


def test_interest_classification(benchmark, yard, bench_trace):
    snapshots = bench_trace.frames[200]
    observer = snapshots[0]
    benchmark(lambda: compute_sets(observer, snapshots, yard, 200))


def test_event_queue_throughput(benchmark):
    def churn():
        queue = EventQueue()
        for i in range(1000):
            queue.schedule(i * 1e-4, lambda: None)
        queue.run()

    benchmark(churn)


def test_network_send_deliver(benchmark):
    queue = EventQueue()
    network = DatagramNetwork(
        queue, king_like(16, seed=1), NetworkConfig(seed=1)
    )
    for node in range(16):
        network.register(node, lambda datagram: None)

    def burst():
        for i in range(100):
            network.send(i % 16, (i + 1) % 16, "payload", 120)
        queue.run()

    benchmark(burst)


def test_line_of_sight_query(benchmark, yard):
    from repro.game.vector import Vec3

    eye_a = Vec3(100.0, 50.0, 48.0)
    eye_b = Vec3(-900.0, 700.0, 112.0)
    benchmark(lambda: yard.line_of_sight(eye_a, eye_b))
