"""Figure 6: success rates of the verification mechanisms.

Regenerates all five bars — Position, Kill, Guidance, IS-sub, VS-sub —
with a cheater sending ~10 % invalid messages and FP capped at 5 %.
"""

from repro.analysis import figure6_experiment
from repro.analysis.report import render_detection

from conftest import SESSION_TRACE_PARAMS, publish


def test_fig6_detection(benchmark, yard, session_trace, results_dir):
    outcomes = benchmark.pedantic(
        figure6_experiment,
        args=(session_trace, yard),
        rounds=1,
        iterations=1,
    )
    body = render_detection(outcomes)
    body += (
        "\n\n(paper: all five verifications detect the injected cheats "
        "with high success at ≤5% false positives)\n"
    )
    publish(results_dir, "fig6_detection",
            "Figure 6 — verification success rates", body,
            params=SESSION_TRACE_PARAMS)

    by_check = {o.check: o for o in outcomes}
    assert set(by_check) == {"position", "kill", "guidance", "is-sub", "vs-sub"}
    for outcome in outcomes:
        # Thresholds are calibrated at the 5 % budget on the honest run;
        # the operating rate on the cheat run is a ~300-sample binomial
        # re-draw (σ ≈ 1.3 points), so allow one σ of drift.
        assert outcome.honest_flag_rate <= 0.065, outcome.check
        assert outcome.success_rate >= 0.5, outcome.check
    # The strongest detectors are the physics-grounded ones.
    assert by_check["position"].success_rate >= 0.75
    assert by_check["kill"].success_rate >= 0.75
