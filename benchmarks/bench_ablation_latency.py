"""Ablation: the Section VI latency optimizations.

Toggles (1) subscription prediction-ahead, (2) subscriber retention, and
(3) the relaxed first hop, and measures the update-age distribution and
subscription traffic for each variant.
"""

import pytest

from repro.core import WatchmenConfig, WatchmenSession
from repro.analysis.report import render_table
from repro.net.latency import king_like

from conftest import SESSION_TRACE_PARAMS, publish

VARIANTS = {
    "full (predict+retain)": {},
    "no prediction": {"predict_ahead": False},
    "short retention": {"subscription_retention_frames": 4},
    "relaxed first hop": {"relax_first_hop": True},
}


def run_variant(trace, yard, overrides):
    config = WatchmenConfig(**overrides)
    session = WatchmenSession(
        trace,
        game_map=yard,
        config=config,
        latency=king_like(len(trace.player_ids()), seed=9),
    )
    report = session.run()
    total = sum(report.age_histogram.values())
    mean_age = (
        sum(a * c for a, c in report.age_histogram.items()) / total
        if total
        else 0.0
    )
    return report, mean_age


def test_ablation_latency_optimizations(benchmark, yard, session_trace,
                                        results_dir):
    def sweep():
        return {
            name: run_variant(session_trace, yard, overrides)
            for name, overrides in VARIANTS.items()
        }

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, (report, mean_age) in outcomes.items():
        received = sum(report.age_histogram.values())
        rows.append(
            [
                name,
                f"{mean_age:.2f}",
                f"{report.stale_fraction(3):.2%}",
                f"{report.mean_upload_kbps:.0f}",
                str(report.messages_sent),
                str(received),
            ]
        )
    body = render_table(
        [
            "variant",
            "mean age (frames)",
            "stale ≥3",
            "up kbps",
            "messages",
            "updates recv",
        ],
        rows,
    )
    body += (
        "\n(short retention drops subscribers between renewals: receivers "
        "starve — the timeout must exceed the subscription round trip)\n"
    )
    publish(results_dir, "ablation_latency",
            "Ablation — Section VI latency optimizations", body,
            params=SESSION_TRACE_PARAMS)

    full_report, full_age = outcomes["full (predict+retain)"]
    relaxed_report, relaxed_age = outcomes["relaxed first hop"]
    short_report, _ = outcomes["short retention"]
    # Relaxing the first hop removes one proxy hop: strictly fresher.
    assert relaxed_age < full_age
    # Retention shorter than the subscription round trip starves receivers.
    assert sum(short_report.age_histogram.values()) < sum(
        full_report.age_histogram.values()
    )
    # Every variant still meets the FPS bound in this configuration.
    assert full_report.stale_fraction(3) == pytest.approx(0.0, abs=0.05)
