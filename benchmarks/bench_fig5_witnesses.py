"""Figure 5: levels of information about cheaters available to witnesses.

Regenerates the witness-availability curves (honest proxies, IS witnesses,
VS witnesses vs coalition size) plus the in-text honest-proxy probability.
"""

from repro.analysis import honest_proxy_probability, witness_experiment
from repro.analysis.report import render_witnesses

from conftest import BENCH_TRACE_PARAMS, publish

COALITION_SIZES = [1, 2, 4, 8, 12]


def test_fig5_witnesses(benchmark, yard, bench_trace, results_dir):
    results = benchmark.pedantic(
        witness_experiment,
        args=(bench_trace, yard, COALITION_SIZES),
        kwargs={"coalitions_per_size": 6, "frame_stride": 40},
        rounds=1,
        iterations=1,
    )
    body = render_witnesses(results)
    n = len(bench_trace.player_ids())
    body += "\n\nanalytic honest-proxy probability 1-(k-1)/(n-1):\n"
    for size in COALITION_SIZES:
        body += f"  k={size:>2}: {honest_proxy_probability(n, size):.2%}\n"
    body += (
        "\n(paper, 48 players: k=4 keeps an honest proxy 94% of the time "
        "and ~10 honest witnesses)\n"
    )
    publish(results_dir, "fig5_witnesses",
            "Figure 5 — witness availability under collusion", body,
            params={**BENCH_TRACE_PARAMS, "coalition_sizes": COALITION_SIZES})

    by_size = {r.coalition_size: r for r in results}
    # Solo cheaters always have an honest proxy; more colluders, fewer.
    assert by_size[1].avg_honest_proxies == 1.0
    assert by_size[12].avg_honest_proxies < by_size[1].avg_honest_proxies
    # Empirical proxy honesty tracks the analytic curve.
    for size in COALITION_SIZES:
        assert abs(
            by_size[size].avg_honest_proxies
            - honest_proxy_probability(n, size)
        ) < 0.12
    # Plenty of witnesses remain even with 12 colluders of 24 players.
    assert by_size[12].total_witnesses > 1.0
