"""Bandwidth scalability: Watchmen vs naive P2P vs centralized hosting.

Sweeps the player count and reports per-node upload, against the paper's
background numbers (centralized Quake III ≈ 120·n kbps; naive P2P grows
linearly per node / quadratically in total).
"""

from repro.analysis import scalability_experiment
from repro.analysis.report import render_scalability

from conftest import publish

PLAYER_COUNTS = [8, 16, 24, 32]


def test_scalability_bandwidth(benchmark, yard, results_dir):
    points = benchmark.pedantic(
        scalability_experiment,
        args=(PLAYER_COUNTS,),
        kwargs={"num_frames": 120, "game_map": yard},
        rounds=1,
        iterations=1,
    )
    body = render_scalability(points)
    body += (
        "\n(centralized server column is the 120·n kbps literature figure; "
        "Watchmen keeps per-node upload in broadband range as n grows)\n"
    )
    publish(results_dir, "scalability", "Bandwidth scalability sweep", body)

    small, large = points[0], points[-1]
    # Watchmen per-node growth is sub-linear vs naive P2P's linear growth.
    watchmen_growth = large.watchmen_mean_kbps / max(1e-9, small.watchmen_mean_kbps)
    naive_growth = large.naive_p2p_node_kbps / small.naive_p2p_node_kbps
    assert watchmen_growth < naive_growth
    for point in points:
        assert point.watchmen_max_kbps < point.client_server_kbps
