"""Bandwidth scalability: Watchmen vs naive P2P vs centralized hosting.

Sweeps the player count and reports per-node upload, against the paper's
background numbers (centralized Quake III ≈ 120·n kbps; naive P2P grows
linearly per node / quadratically in total).
"""

import time

from repro.analysis import scalability_experiment
from repro.analysis.report import render_scalability

from conftest import SMOKE, publish

PLAYER_COUNTS = [4, 8, 12] if SMOKE else [8, 16, 24, 32]
NUM_FRAMES = 60 if SMOKE else 120
SEED = 5


def test_scalability_bandwidth(benchmark, yard, results_dir):
    start = time.perf_counter()
    points = benchmark.pedantic(
        scalability_experiment,
        args=(PLAYER_COUNTS,),
        kwargs={"num_frames": NUM_FRAMES, "game_map": yard, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    wall = time.perf_counter() - start
    body = render_scalability(points)
    body += (
        "\n(centralized server column is the 120·n kbps literature figure; "
        "Watchmen keeps per-node upload in broadband range as n grows)\n"
    )
    # wall_seconds doubles as a gated cost metric: the bench-diff gate
    # flags runs whose end-to-end sweep slows down by more than 25 %.
    metrics = {"wall_seconds": wall}
    for point in points:
        metrics[f"watchmen_mean_kbps.n{point.num_players}"] = point.watchmen_mean_kbps
        metrics[f"watchmen_max_kbps.n{point.num_players}"] = point.watchmen_max_kbps
    publish(
        results_dir,
        "scalability",
        "Bandwidth scalability sweep",
        body,
        params={
            "seed": SEED,
            "players": PLAYER_COUNTS,
            "frames": NUM_FRAMES,
            "smoke": SMOKE,
        },
        metrics=metrics,
        wall_seconds=wall,
    )

    small, large = points[0], points[-1]
    # Watchmen per-node growth is sub-linear vs naive P2P's linear growth.
    watchmen_growth = large.watchmen_mean_kbps / max(1e-9, small.watchmen_mean_kbps)
    naive_growth = large.naive_p2p_node_kbps / small.naive_p2p_node_kbps
    assert watchmen_growth < naive_growth
    for point in points:
        assert point.watchmen_max_kbps < point.client_server_kbps
