"""Chaos matrix (robustness): recovery SLOs under injected faults.

Replays the same deterministic trace through the protocol with one fault
class per scenario — crash-stop, proxy kill, partition + heal, bursty
loss, flaky links — and gates on the recovery metrics the chaos harness
distils (see ``docs/ROBUSTNESS.md``):

- no scenario may falsely evict a live player (hard SLO: zero);
- failover-enabled crash scenarios must re-proxy within one proxy period;
- the failover-disabled contrast scenario must show the black hole the
  failover layer exists to bound.

The run is pinned to the CI chaos job's parameters (12 players, 240
frames, seed 7) regardless of ``REPRO_BENCH_SMOKE``, so the published
rows always line up with the chaos rows in ``benchmarks/baseline.json``.
"""

import pytest

from repro.analysis.report import render_table
from repro.core.config import PROXY_PERIOD_FRAMES
from repro.faults.chaos import run_chaos

from conftest import publish

pytestmark = pytest.mark.chaos

#: Must match the CI chaos job and the chaos rows in baseline.json.
CHAOS_PARAMS = {"players": 12, "frames": 240, "seed": 7}


def test_chaos_matrix(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: run_chaos(**CHAOS_PARAMS), rounds=1, iterations=1
    )

    body = render_table(
        ["scenario", "evict", "reproxy", "stale.dur", "stale.peak",
         "stale.aft", "lost"],
        [
            [
                result["scenario"],
                f"{result['metrics']['false_evictions']:.0f}",
                f"{result['metrics']['frames_to_reproxy']:.0f}",
                f"{result['metrics']['stale_frac_during']:.3f}",
                f"{result['metrics']['stale_frac_peak']:.3f}",
                f"{result['metrics']['stale_frac_after']:.3f}",
                f"{result['metrics']['messages_lost']:.0f}",
            ]
            for result in results
        ],
    )
    body += (
        "\n(evict must be 0 everywhere; reproxy must stay within one proxy "
        f"period ({PROXY_PERIOD_FRAMES} frames) wherever failover is on)\n"
    )
    publish(
        results_dir,
        "chaos_matrix",
        "Chaos — recovery SLOs under injected faults",
        body,
        params=CHAOS_PARAMS,
    )
    for result in results:
        publish(
            results_dir,
            f"chaos_{result['scenario']}",
            f"Chaos — {result['summary']}",
            "(metrics in the JSON artifact; summary in chaos_matrix.txt)",
            params=result["params"],
            metrics=result["metrics"],
        )

    by_name = {result["scenario"]: result["metrics"] for result in results}
    for name, metrics in by_name.items():
        assert metrics["false_evictions"] == 0, name
    for name in ("crash_10pct", "proxy_kill_midepoch"):
        assert 0 < by_name[name]["frames_to_reproxy"] <= PROXY_PERIOD_FRAMES
    # The contrast scenario never re-routes: its traffic black-holes until
    # the next scheduled handoff instead of failing over within a period.
    assert (
        by_name["proxy_kill_no_failover"]["frames_to_reproxy"]
        > PROXY_PERIOD_FRAMES
    )
