"""Chaos matrix (robustness): recovery SLOs under injected faults.

Replays the same deterministic trace through the protocol with one fault
class per scenario — crash-stop, proxy kill, partition + heal, bursty
loss, flaky links — and gates on the recovery metrics the chaos harness
distils (see ``docs/ROBUSTNESS.md``):

- no scenario may falsely evict a live player (hard SLO: zero);
- failover-enabled crash scenarios must re-proxy within one proxy period;
- the failover-disabled contrast scenario must show the black hole the
  failover layer exists to bound.

The run is pinned to the CI chaos job's parameters (12 players, 240
frames, seed 7) regardless of ``REPRO_BENCH_SMOKE``, so the published
rows always line up with the chaos rows in ``benchmarks/baseline.json``.
"""

import pytest

from repro.analysis.report import render_table
from repro.core.config import PROXY_PERIOD_FRAMES
from repro.faults.chaos import byzantine_scenarios, run_chaos

from conftest import publish

pytestmark = pytest.mark.chaos

#: Must match the CI chaos job and the chaos rows in baseline.json.
CHAOS_PARAMS = {"players": 12, "frames": 240, "seed": 7}

#: Extra seeds the Byzantine matrix sweeps: the honest-safety SLOs
#: (no honest quarantine, no false eviction) must hold on every seed,
#: not just the pinned one.
BYZ_SWEEP_SEEDS = (7, 11, 23)


def test_chaos_matrix(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: run_chaos(**CHAOS_PARAMS), rounds=1, iterations=1
    )

    body = render_table(
        ["scenario", "evict", "reproxy", "stale.dur", "stale.peak",
         "stale.aft", "lost"],
        [
            [
                result["scenario"],
                f"{result['metrics']['false_evictions']:.0f}",
                f"{result['metrics']['frames_to_reproxy']:.0f}",
                f"{result['metrics']['stale_frac_during']:.3f}",
                f"{result['metrics']['stale_frac_peak']:.3f}",
                f"{result['metrics']['stale_frac_after']:.3f}",
                f"{result['metrics']['messages_lost']:.0f}",
            ]
            for result in results
        ],
    )
    body += (
        "\n(evict must be 0 everywhere; reproxy must stay within one proxy "
        f"period ({PROXY_PERIOD_FRAMES} frames) wherever failover is on)\n"
    )
    publish(
        results_dir,
        "chaos_matrix",
        "Chaos — recovery SLOs under injected faults",
        body,
        params=CHAOS_PARAMS,
    )
    for result in results:
        publish(
            results_dir,
            f"chaos_{result['scenario']}",
            f"Chaos — {result['summary']}",
            "(metrics in the JSON artifact; summary in chaos_matrix.txt)",
            params=result["params"],
            metrics=result["metrics"],
        )

    by_name = {result["scenario"]: result["metrics"] for result in results}
    for name, metrics in by_name.items():
        assert metrics["false_evictions"] == 0, name
    for name in ("crash_10pct", "proxy_kill_midepoch"):
        assert 0 < by_name[name]["frames_to_reproxy"] <= PROXY_PERIOD_FRAMES
    # The contrast scenario never re-routes: its traffic black-holes until
    # the next scheduled handoff instead of failing over within a period.
    assert (
        by_name["proxy_kill_no_failover"]["frames_to_reproxy"]
        > PROXY_PERIOD_FRAMES
    )


def test_chaos_byzantine_matrix(benchmark, results_dir):
    def sweep():
        return {
            seed: run_chaos(
                players=CHAOS_PARAMS["players"],
                frames=CHAOS_PARAMS["frames"],
                seed=seed,
                scenarios=byzantine_scenarios(),
            )
            for seed in BYZ_SWEEP_SEEDS
        }

    by_seed = benchmark.pedantic(sweep, rounds=1, iterations=1)

    results = by_seed[CHAOS_PARAMS["seed"]]
    body = render_table(
        ["scenario", "detect", "equiv", "convict", "hon.quar", "evicted",
         "evict"],
        [
            [
                result["scenario"],
                f"{result['metrics']['byz_detection_frames']:.0f}",
                f"{result['metrics']['equivocations_detected']:.0f}",
                f"{result['metrics']['evidence_convictions']:.0f}",
                f"{result['metrics']['honest_quarantines']:.0f}",
                f"{result['metrics']['attacker_evicted']:.0f}",
                f"{result['metrics']['false_evictions']:.0f}",
            ]
            for result in results
        ],
    )
    body += (
        "\n(hon.quar and evict must be 0 on every seed; hardened rows must "
        "detect within the bound and the blind contrast must not detect)\n"
    )
    publish(
        results_dir,
        "chaos_byz_matrix",
        "Chaos — Byzantine attacks vs protocol hardening",
        body,
        params={**CHAOS_PARAMS, "sweep_seeds": list(BYZ_SWEEP_SEEDS)},
    )
    for result in results:
        publish(
            results_dir,
            f"chaos_{result['scenario']}",
            f"Chaos — {result['summary']}",
            "(metrics in the JSON artifact; summary in chaos_byz_matrix.txt)",
            params=result["params"],
            metrics=result["metrics"],
        )

    for seed, seed_results in by_seed.items():
        by_name = {r["scenario"]: r["metrics"] for r in seed_results}
        for name, metrics in by_name.items():
            # Honest safety on every seed: hardening never costs an honest
            # player his seat or his voice.
            assert metrics["false_evictions"] == 0, (seed, name)
            assert metrics["honest_quarantines"] == 0, (seed, name)
        # Hardened detection lands within the bound; the equivocator is
        # convicted and evicted from every honest membership view.
        assert by_name["byz_equivocation"]["equivocations_detected"] > 0, seed
        assert by_name["byz_equivocation"]["attacker_evicted"] == 1.0, seed
        assert (
            by_name["byz_equivocation"]["byz_detection_frames"]
            <= PROXY_PERIOD_FRAMES
        ), seed
        assert (
            by_name["byz_tamper_relay"]["byz_detection_frames"]
            <= PROXY_PERIOD_FRAMES
        ), seed
        assert (
            by_name["byz_flood"]["byz_detection_frames"] <= PROXY_PERIOD_FRAMES
        ), seed
        assert (
            by_name["byz_starve"]["byz_detection_frames"]
            <= 2 * PROXY_PERIOD_FRAMES
        ), seed
        # The blind contrast shows the attack landing: nothing detected,
        # nothing convicted, the attacker keeps his seat.
        blind = by_name["byz_equivocation_blind"]
        assert blind["equivocations_detected"] == 0, seed
        assert blind["attacker_evicted"] == 0.0, seed
