"""Figure 1: presence heatmaps — human vs NPC movement patterns.

Regenerates both panels: (a) human-like players, (b) waypoint NPCs, and
reports the hotspot-concentration statistic that motivates abandoning
fixed-radius AOI filtering.
"""

from repro.analysis import hotspot_concentration, presence_heatmap, render_ascii
from repro.game import generate_trace

from conftest import BENCH_TRACE_PARAMS, publish


def test_fig1_heatmaps(benchmark, yard, bench_trace, results_dir):
    npc_trace = generate_trace(
        num_players=24, num_frames=400, seed=2013, npc_fraction=1.0,
        game_map=yard,
    )

    def build():
        human = presence_heatmap(bench_trace, yard, grid=24)
        npc = presence_heatmap(npc_trace, yard, grid=24)
        return human, npc

    human, npc = benchmark(build)

    human_conc = hotspot_concentration(human, 0.10)
    npc_conc = hotspot_concentration(npc, 0.10)
    body = "\n".join(
        [
            "(a) Human movements (log-normalised presence):",
            render_ascii(human),
            "",
            "(b) NPC movements:",
            render_ascii(npc),
            "",
            f"presence in top 10% of cells — humans: {human_conc:.0%}, "
            f"NPCs: {npc_conc:.0%} (uniform would be 10%)",
        ]
    )
    publish(results_dir, "fig1_heatmap", "Figure 1 — presence heatmaps", body,
            params=BENCH_TRACE_PARAMS)

    assert human_conc > 0.4
    assert npc_conc > 0.4
