"""Ablation: interest-set size and vision-cone slack.

IS size 5 is the paper's attention-span default; this sweep shows the
bandwidth/exposure trade-off it buys, and what the cone slack costs.
"""

import math

from repro.analysis import exposure_experiment
from repro.analysis.exposure import result_matrix
from repro.analysis.report import render_table
from repro.core import WatchmenConfig, WatchmenSession
from repro.core.disclosure import ExposureCategory
from repro.game.interest import InterestConfig
from repro.net.latency import king_like

from conftest import SESSION_TRACE_PARAMS, publish

IS_SIZES = [2, 5, 10]


def test_ablation_interest_size(benchmark, yard, session_trace, results_dir):
    def sweep():
        outcomes = {}
        for size in IS_SIZES:
            interest = InterestConfig(interest_size=size)
            config = WatchmenConfig(interest=interest)
            session = WatchmenSession(
                session_trace,
                game_map=yard,
                config=config,
                latency=king_like(len(session_trace.player_ids()), seed=9),
            )
            report = session.run()
            from repro.analysis.exposure import default_models

            exposure = exposure_experiment(
                session_trace,
                yard,
                coalition_sizes=[4],
                models=default_models(session_trace, yard, interest=interest),
                coalitions_per_size=4,
                frame_stride=60,
            )
            matrix = result_matrix(exposure)
            outcomes[size] = (report, matrix["watchmen"][4])
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for size, (report, exposure_counts) in outcomes.items():
        rich = (
            exposure_counts[ExposureCategory.FREQ]
            + exposure_counts[ExposureCategory.FREQ_DR]
        )
        rows.append(
            [
                str(size),
                f"{report.mean_upload_kbps:.0f}",
                f"{rich:.1f}",
                f"{exposure_counts[ExposureCategory.INFREQ]:.1f}",
            ]
        )
    body = render_table(
        ["IS size", "up kbps", "freq-exposed players", "min-info players"],
        rows,
    )
    body += "\n(bigger IS = more bandwidth and more frequent-state exposure)\n"
    publish(results_dir, "ablation_interest",
            "Ablation — interest-set size", body,
            params={**SESSION_TRACE_PARAMS, "is_sizes": IS_SIZES})

    small_report = outcomes[IS_SIZES[0]][0]
    large_report = outcomes[IS_SIZES[-1]][0]
    assert small_report.mean_upload_kbps < large_report.mean_upload_kbps
