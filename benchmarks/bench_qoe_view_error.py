"""QoE: rendered-view error (the paper's definition of lag).

"lag, here defined as the difference between the game's state at the
player and the actual state" — sampled per pair as the distance between
what a node would render for a remote avatar (dead-reckoned freshest
information) and the avatar's true position.
"""

from repro.core import WatchmenConfig, WatchmenSession
from repro.analysis.report import render_table
from repro.net.latency import king_like, uniform_lan

from conftest import SESSION_TRACE_PARAMS, publish


def test_qoe_view_error(benchmark, yard, session_trace, results_dir):
    size = len(session_trace.player_ids())

    def sweep():
        outcomes = {}
        for name, latency in (
            ("LAN", uniform_lan(size, one_way_ms=0.5)),
            ("king-like", king_like(size, seed=9)),
            ("slow (90ms/hop)", uniform_lan(size, one_way_ms=90.0)),
        ):
            report = WatchmenSession(
                session_trace,
                game_map=yard,
                latency=latency,
                view_error_stride=10,
            ).run()
            outcomes[name] = report
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, report in outcomes.items():
        stats = report.view_error_stats()
        rows.append(
            [
                name,
                f"{stats['median']:.1f}",
                f"{stats['mean']:.0f}",
                f"{stats['p95']:.0f}",
            ]
        )
    body = render_table(
        ["network", "median view error (u)", "mean (u)", "p95 (u)"], rows
    )
    body += (
        "\n(median reflects IS/VS neighbours — what the player actually "
        "looks at; the p95 tail is the Others set, known only through 1 Hz "
        "positions by design)\n"
    )
    publish(results_dir, "qoe_view_error", "QoE — rendered view error", body,
            params=SESSION_TRACE_PARAMS)

    lan = outcomes["LAN"].view_error_stats()
    king = outcomes["king-like"].view_error_stats()
    slow = outcomes["slow (90ms/hop)"].view_error_stats()
    assert lan["median"] <= king["median"] <= slow["median"]
    assert king["median"] < 64.0  # within ~2 avatar widths at WAN latency
