"""Figure 7: distribution of the age of received updates.

Regenerates both series (King-like and PeerWise-like latency sets, 1 %
loss) and the paper's operating claim: messages 3+ frames old (≥150 ms)
count as loss, and they are rare.
"""

from repro.analysis import figure7_experiment
from repro.analysis.report import render_update_age

from conftest import SESSION_TRACE_PARAMS, publish


def test_fig7_update_age(benchmark, yard, session_trace, results_dir):
    results = benchmark.pedantic(
        figure7_experiment,
        args=(session_trace, yard),
        rounds=1,
        iterations=1,
    )
    body = render_update_age(results)
    body += (
        "\n(paper: with ~62/68 ms mean RTT and 1% loss, almost all updates "
        "arrive within 2 frames; ≥3 frames counts as loss and stays small)\n"
    )
    publish(results_dir, "fig7_update_age",
            "Figure 7 — age of received updates", body,
            params=SESSION_TRACE_PARAMS)

    for result in results:
        assert result.cdf_at(2) > 0.90, result.latency_name
        assert result.stale_fraction < 0.05, result.latency_name
