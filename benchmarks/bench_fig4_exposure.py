"""Figure 4: information about players available to colluding cheaters.

Regenerates the three stacked histograms (client/server, Donnybrook,
Watchmen) over coalition sizes, and checks the paper's headline numbers
for a coalition of four.
"""

from repro.analysis import exposure_experiment
from repro.analysis.exposure import result_matrix
from repro.analysis.report import render_exposure
from repro.core.disclosure import ExposureCategory

from conftest import BENCH_TRACE_PARAMS, publish

COALITION_SIZES = [1, 2, 4, 8, 12]


def test_fig4_exposure(benchmark, yard, bench_trace, results_dir):
    results = benchmark.pedantic(
        exposure_experiment,
        args=(bench_trace, yard, COALITION_SIZES),
        kwargs={"coalitions_per_size": 6, "frame_stride": 40},
        rounds=1,
        iterations=1,
    )
    body = render_exposure(results)
    matrix = result_matrix(results)

    honest = 24 - 4
    watchmen4 = matrix["watchmen"][4]
    donny4 = matrix["donnybrook"][4]
    minimum_info = watchmen4[ExposureCategory.INFREQ] / honest
    partial_info = (
        watchmen4[ExposureCategory.DR] + watchmen4[ExposureCategory.FREQ]
    ) / honest
    donny_dr_only = donny4[ExposureCategory.DR] / honest
    body += (
        f"\n\ncoalition of 4 (paper: Watchmen min-info ≈31%, partial ≈48%; "
        f"Donnybrook DR-only ≈65%):\n"
        f"  watchmen minimum info : {minimum_info:.0%}\n"
        f"  watchmen partial info : {partial_info:.0%}\n"
        f"  donnybrook DR-only    : {donny_dr_only:.0%}\n"
    )
    publish(results_dir, "fig4_exposure",
            "Figure 4 — coalition information disclosure", body,
            params={**BENCH_TRACE_PARAMS, "coalition_sizes": COALITION_SIZES})

    # Shape assertions: who wins and in which direction.
    for size in COALITION_SIZES:
        watchmen_rich = sum(
            matrix["watchmen"][size][c]
            for c in (
                ExposureCategory.COMPLETE,
                ExposureCategory.FREQ_DR,
                ExposureCategory.FREQ,
                ExposureCategory.DR,
            )
        )
        donny_rich = sum(
            matrix["donnybrook"][size][c]
            for c in (
                ExposureCategory.FREQ_DR,
                ExposureCategory.FREQ,
                ExposureCategory.DR,
            )
        )
        assert watchmen_rich < donny_rich
    assert minimum_info > 0.15
    assert donny_dr_only > 0.4
