"""Churn handling (Section VI): detection, agreement, schedule convergence.

A player unplugs mid-game; the heartbeat silence is detected, signed
removal proposals reach quorum, and every honest node swaps to the same
reduced proxy schedule at the same epoch — while the game keeps meeting
its latency budget.
"""

from repro.core import WatchmenSession
from repro.analysis.report import render_table
from repro.net.latency import king_like

from conftest import SESSION_TRACE_PARAMS, publish


def test_churn_agreement(benchmark, yard, session_trace, results_dir):
    players = session_trace.player_ids()
    departing = players[5]
    depart_frame = 60

    def run():
        session = WatchmenSession(
            session_trace,
            game_map=yard,
            latency=king_like(len(players), seed=9),
            departures={departing: depart_frame},
        )
        report = session.run()
        return session, report

    session, report = benchmark.pedantic(run, rounds=1, iterations=1)

    honest_nodes = [n for p, n in session.nodes.items() if p != departing]
    agreed = sum(1 for n in honest_nodes if departing in n.membership.removed)
    removal_frames = set()
    for node in honest_nodes:
        if departing not in node.schedule.roster:
            removal_frames.add(tuple(node.schedule.roster))

    first_flag = min(
        (
            r.frame
            for r in report.ratings
            if r.subject_id == departing and r.frame > depart_frame
            and r.rating >= 5.0
        ),
        default=None,
    )
    body = render_table(
        ["metric", "value"],
        [
            ["departure frame", str(depart_frame)],
            ["first silence flag", str(first_flag)],
            ["honest nodes agreeing on removal",
             f"{agreed}/{len(honest_nodes)}"],
            ["distinct post-removal rosters", str(len(removal_frames))],
            ["stale ≥3 after churn", f"{report.stale_fraction(3):.2%}"],
            ["honest players banned", str(len(report.banned - {departing}))],
        ],
    )
    body += (
        "\n(detection → proposal broadcast → quorum → removal at the next "
        "epoch boundary, identical at every honest node)\n"
    )
    publish(results_dir, "churn", "Churn — departure agreement round", body,
            params=SESSION_TRACE_PARAMS)

    assert agreed == len(honest_nodes)
    assert len(removal_frames) == 1
    assert report.banned - {departing} == set()
