"""Paper-scale validation: the 48-player headline numbers.

The paper's evaluation uses 48-player q3dm17 traces.  The default benches
run smaller rosters for wall-clock reasons; this bench runs the exposure
and witness analyses at the paper's exact scale and checks its two most
quotable numbers directly:

- a cheater colluding with 3 others keeps an honest proxy ~94 % of the
  time (1 − 3/47);
- a coalition of four holds minimum information (1 Hz positions only) for
  roughly a third of the honest players, and Donnybrook hands the same
  coalition dead-reckoning-or-better about everyone.
"""

import time

from repro.analysis import (
    exposure_experiment,
    honest_proxy_probability,
    witness_experiment,
)
from repro.analysis.exposure import result_matrix
from repro.analysis.report import render_exposure, render_witnesses
from repro.core.config import FRAME_SECONDS
from repro.core.disclosure import ExposureCategory
from repro.game import generate_trace

from conftest import publish


def test_paper_scale_48_players(benchmark, yard, results_dir):
    def run():
        trace = generate_trace(
            num_players=48, num_frames=240, seed=48, game_map=yard
        )
        exposure = exposure_experiment(
            trace,
            yard,
            coalition_sizes=[1, 4, 8],
            coalitions_per_size=4,
            frame_stride=60,
        )
        witnesses = witness_experiment(
            trace,
            yard,
            coalition_sizes=[1, 4, 8],
            coalitions_per_size=4,
            frame_stride=60,
        )
        return trace, exposure, witnesses

    trace, exposure, witnesses = benchmark.pedantic(run, rounds=1, iterations=1)

    matrix = result_matrix(exposure)
    honest = 48 - 4
    watchmen4 = matrix["watchmen"][4]
    donny4 = matrix["donnybrook"][4]
    min_info = watchmen4[ExposureCategory.INFREQ] / honest
    donny_informed = (
        donny4[ExposureCategory.DR]
        + donny4[ExposureCategory.FREQ]
        + donny4[ExposureCategory.FREQ_DR]
    ) / honest
    by_size = {w.coalition_size: w for w in witnesses}

    body = render_exposure(exposure)
    body += "\n\n" + render_witnesses(witnesses)
    body += (
        f"\npaper (48 players, coalition of 4):"
        f"\n  honest proxy 94%         -> measured "
        f"{by_size[4].avg_honest_proxies:.0%}"
        f" (analytic {honest_proxy_probability(48, 4):.0%})"
        f"\n  ~10 honest witnesses     -> measured "
        f"{by_size[4].total_witnesses:.1f}"
        f"\n  Watchmen min-info ~31%   -> measured {min_info:.0%}"
        f"\n  Donnybrook informed 100% -> measured {donny_informed:.0%}\n"
    )
    publish(results_dir, "paper_scale",
            "Paper scale — 48-player headline numbers", body,
            params={"seed": 48, "players": 48, "frames": 240})

    # The in-text 94 % claim, at the paper's own scale.
    assert abs(by_size[4].avg_honest_proxies - (1 - 3 / 47)) < 0.06
    # ~10 witnesses per cheater at 48 players.
    assert by_size[4].total_witnesses > 5.0
    # Watchmen minimum-information share in the paper's ballpark.
    assert 0.15 <= min_info <= 0.6
    # Donnybrook exposes everyone.
    assert donny_informed > 0.99


def test_paper_scale_realtime(yard, results_dir):
    """A full 48-player, 2-minute match must simulate faster than real time.

    The batched frame kernels exist so paper-scale experiments stop being
    the bottleneck: 48 players x 2400 frames covers 120 simulated seconds,
    and this gate requires the whole trace generation (bots, physics,
    combat, items) to finish in less wall time than it simulates.  Always
    runs at full scale — a smoke-sized roster would not test the claim.
    """
    players, frames = 48, 2400
    simulated = frames * FRAME_SECONDS

    start = time.perf_counter()
    trace = generate_trace(
        num_players=players, num_frames=frames, seed=7, game_map=yard
    )
    wall = time.perf_counter() - start
    ratio = wall / simulated

    assert trace.num_frames == frames
    body = (
        f"players={players} frames={frames} seed=7\n"
        f"simulated duration: {simulated:.1f}s\n"
        f"wall clock:         {wall:.1f}s\n"
        f"realtime ratio:     {ratio:.3f} (gate: < 1.0)\n"
    )
    publish(
        results_dir,
        "paper_scale_realtime",
        "Paper scale — 48-player match vs real time",
        body,
        params={"players": players, "frames": frames, "seed": 7},
        metrics={"realtime_ratio": ratio},
        wall_seconds=wall,
    )
    assert wall < simulated, (
        f"48-player match took {wall:.1f}s wall for {simulated:.1f}s simulated"
    )
