"""Hybrid architecture (Section VI): a trusted game server in the proxy pool.

Compares pure P2P Watchmen against the hybrid deployment where a game
server proxies every player — "providing the game lobby, extra bandwidth,
and becoming the proxy for some or all players" — on bandwidth,
responsiveness, and the proxy-exposure channel.
"""

from repro.core import WatchmenSession
from repro.analysis.report import render_table
from repro.net.latency import king_like

from conftest import SESSION_TRACE_PARAMS, publish


def test_hybrid_vs_pure_p2p(benchmark, yard, session_trace, results_dir):
    size = len(session_trace.player_ids())

    def sweep():
        pure = WatchmenSession(
            session_trace,
            game_map=yard,
            latency=king_like(size, seed=9),
        ).run()
        hybrid = WatchmenSession(
            session_trace,
            game_map=yard,
            latency=king_like(size + 1, seed=9),
            servers=1,
        ).run()
        weighted = WatchmenSession(
            session_trace,
            game_map=yard,
            latency=king_like(size + 1, seed=9),
            servers=1,
            server_only_proxies=False,
            server_weight=6,
        ).run()
        return pure, hybrid, weighted

    pure, hybrid, weighted = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def row(name, report):
        server_up = (
            f"{max(report.server_upload_kbps.values()):.0f}"
            if report.server_upload_kbps
            else "-"
        )
        return [
            name,
            f"{report.mean_upload_kbps:.0f}",
            f"{report.max_upload_kbps:.0f}",
            server_up,
            f"{report.stale_fraction(3):.2%}",
        ]

    body = render_table(
        ["deployment", "player mean kbps", "player max kbps",
         "server kbps", "stale ≥3"],
        [
            row("pure P2P", pure),
            row("server proxies all", hybrid),
            row("server weighted (6x)", weighted),
        ],
    )
    body += (
        "\n(with a trusted server as sole proxy, no player ever holds "
        "proxy-grade information about another — the Figure 4 'complete' "
        "channel closes — and player upload drops, at the cost of hosting "
        "the server's forwarding load)\n"
    )
    publish(results_dir, "hybrid", "Hybrid architecture comparison", body,
            params=SESSION_TRACE_PARAMS)

    # Players shed forwarding load onto the server.
    assert hybrid.mean_upload_kbps < pure.mean_upload_kbps
    assert max(hybrid.server_upload_kbps.values()) > pure.max_upload_kbps
    # Responsiveness unchanged.
    assert hybrid.stale_fraction(3) < 0.05
    assert weighted.stale_fraction(3) < 0.05
