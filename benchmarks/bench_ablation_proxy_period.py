"""Ablation: the proxy renewal period.

"The proxy period is chosen long enough to be able to cross-check updates,
but not long enough for colluding cheaters to cooperate" — sweep the
period and measure both sides of that trade-off: handoff overhead and the
window a cheating proxy controls one victim.
"""

from repro.core import WatchmenConfig, WatchmenSession
from repro.core.messages import HandoffMessage
from repro.analysis.report import render_table
from repro.net.latency import king_like

from conftest import SESSION_TRACE_PARAMS, publish

PERIODS = [10, 20, 40, 80, 160]


def test_ablation_proxy_period(benchmark, yard, session_trace, results_dir):
    def sweep():
        outcomes = {}
        for period in PERIODS:
            config = WatchmenConfig(proxy_period_frames=period)
            session = WatchmenSession(
                session_trace,
                game_map=yard,
                config=config,
                latency=king_like(len(session_trace.player_ids()), seed=9),
            )
            report = session.run()
            handoffs = sum(
                1
                for node in session.nodes.values()
                for _ in [None]
            )
            del handoffs
            outcomes[period] = report
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for period, report in outcomes.items():
        window_seconds = period * 0.05
        rows.append(
            [
                str(period),
                f"{window_seconds:.1f}s",
                f"{report.mean_upload_kbps:.0f}",
                f"{report.stale_fraction(3):.2%}",
                str(len([r for r in report.ratings if r.rating >= 6])),
            ]
        )
    body = render_table(
        [
            "period (frames)",
            "collusion window",
            "up kbps",
            "stale ≥3",
            "high ratings",
        ],
        rows,
    )
    body += (
        "\n(shorter periods shrink what a malicious proxy controls but add "
        "handoff traffic; the paper settles on ~2s)\n"
    )
    publish(results_dir, "ablation_proxy_period",
            "Ablation — proxy renewal period", body,
            params={**SESSION_TRACE_PARAMS, "periods": PERIODS})

    # Shorter period → more handoff traffic → more upload.
    assert (
        outcomes[PERIODS[0]].mean_upload_kbps
        >= outcomes[PERIODS[-1]].mean_upload_kbps
    )
    # Responsiveness unaffected by the proxy period.
    for report in outcomes.values():
        assert report.stale_fraction(3) < 0.05
