# Developer entry points for the Watchmen reproduction.
# `make precheck` is the one-command pre-push gate documented in README.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test fast lint lint-fix precheck bench chaos chaos-byz tapes \
	replay-verify model-check

test:
	$(PYTHON) -m pytest -x -q

fast:
	$(PYTHON) -m pytest -x -q -m "not slow and not chaos and not perf"

lint:
	$(PYTHON) -m repro lint --json -

lint-fix:
	$(PYTHON) -m repro lint --fix

# The pre-push check: static analysis (per-file rules narrowed to files
# that differ from origin/main, whole-program families always full-tree;
# falls back to a full scan outside a git clone), the analyzer's own test
# suite, then the chaos matrix at the CI job's parameters — the
# recovery-SLO gate (docs/ROBUSTNESS.md).
precheck:
	$(PYTHON) -m repro lint --changed-only --json - \
		&& $(PYTHON) -m pytest -m lint -q \
		&& $(PYTHON) -m repro chaos --players 12 --frames 240 --seed 7

bench:
	REPRO_BENCH_SMOKE=1 PYTHONPATH=src:benchmarks $(PYTHON) -m pytest \
		benchmarks/bench_scalability.py benchmarks/bench_crypto.py \
		benchmarks/bench_interest.py benchmarks/bench_tape.py \
		benchmarks/bench_wire.py benchmarks/bench_kernels.py \
		-q --benchmark-disable

# Regenerate the golden tape corpus (docs/REPLAY.md).  Recording is
# deterministic: on an unchanged protocol this rewrites identical bytes,
# so a dirty `git status` after running it means the wire behaviour
# changed and the corpus refresh belongs in that same commit.
tapes:
	$(PYTHON) -m repro tape record --preset normal --out tests/tapes/normal.tape
	$(PYTHON) -m repro tape record --preset chaos --out tests/tapes/chaos.tape
	$(PYTHON) -m repro tape record --preset byzantine --out tests/tapes/byzantine.tape
	$(PYTHON) -m repro tape record --preset cheater --out tests/tapes/cheater.tape

# The CI replay gate, locally: re-simulate every committed tape and fail
# on the first divergent frame.
replay-verify:
	$(PYTHON) -m repro tape verify tests/tapes/*.tape

# The protocol race detector (docs/MODEL_CHECKING.md): exhaustive
# bounded exploration of the scenario matrix gated on its invariants and
# on the committed `mc` baseline row, then the mutation self-test that
# proves the gate can fail.
model-check:
	$(PYTHON) -m repro lint --footprints footprints.json \
		&& $(PYTHON) -m repro mc --footprints footprints.json \
			--require-complete --counterexample-dir artifacts/mc \
			--json mc-report.json \
		&& $(PYTHON) -m repro bench-diff benchmarks/baseline.json \
			mc-report.json \
		&& $(PYTHON) scripts/mc_mutation_selftest.py

# The fault-injection matrix with its SLO gates plus the bench-diff
# regression gate against the committed chaos baseline rows.
chaos:
	$(PYTHON) -m repro chaos --players 12 --frames 240 --seed 7 \
		--out chaos.json \
		&& $(PYTHON) -m repro bench-diff benchmarks/baseline.json chaos.json

# Just the adversarial tier (docs/ROBUSTNESS.md, "Byzantine fault
# tier"): equivocation, tampering, flood, selective forwarding, ack
# withholding — gated on detection latency, zero honest quarantines and
# the attacker's eviction.  `make chaos` runs `--matrix all` (default)
# and already includes these rows.
chaos-byz:
	$(PYTHON) -m repro chaos --matrix byzantine \
		--players 12 --frames 240 --seed 7
