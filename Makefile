# Developer entry points for the Watchmen reproduction.
# `make precheck` is the one-command pre-push gate documented in README.md.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test fast lint lint-fix precheck bench

test:
	$(PYTHON) -m pytest -x -q

fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

lint:
	$(PYTHON) -m repro lint --json -

lint-fix:
	$(PYTHON) -m repro lint --fix

# The pre-push check: full static analysis (all rule families, JSON report
# to stdout) followed by the analyzer's own test suite.
precheck:
	$(PYTHON) -m repro lint --json - && $(PYTHON) -m pytest -m lint -q

bench:
	REPRO_BENCH_SMOKE=1 PYTHONPATH=src:benchmarks $(PYTHON) -m pytest \
		benchmarks/bench_scalability.py benchmarks/bench_crypto.py \
		-q --benchmark-disable
