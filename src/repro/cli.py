"""Command-line interface: simulate, replay, and regenerate experiments.

The paper's workflow — record a trace, replay it under different network
and proxy configurations, run the evaluation studies — as a CLI:

    python -m repro simulate --players 16 --frames 400 --out trace.jsonl
    python -m repro replay trace.jsonl --latency king --loss 0.01
    python -m repro experiment fig4 --players 16 --frames 300
    python -m repro experiment all
    python -m repro metrics --players 12 --frames 120 --json -
    python -m repro bench-diff benchmarks/baseline.json BENCH_core.json
    python -m repro lint --explain D102
    python -m repro chaos --players 16 --frames 400 --seed 7 --out chaos.json

Every experiment prints the same rows/series the corresponding paper
figure or table reports.  ``metrics`` runs a standard session with the
observability registry enabled and prints/exports the snapshot;
``bench-diff`` is the CI regression gate over two bench JSON artifacts;
``lint`` is the determinism / protocol-conformance static analyzer
(see :mod:`repro.lint` and ``docs/STATIC_ANALYSIS.md``); ``chaos`` runs
the fault-injection scenario matrix and enforces the recovery SLOs
(see :mod:`repro.faults` and ``docs/ROBUSTNESS.md``).

Exit codes: 0 success, 1 failure (e.g. a bench-diff regression or a new
lint violation), 2 usage errors (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.analysis import (
    cheat_matrix_experiment,
    churn_statistics,
    exposure_experiment,
    figure6_experiment,
    figure7_experiment,
    hotspot_concentration,
    presence_heatmap,
    render_ascii,
    scalability_experiment,
    witness_experiment,
)
from repro.analysis.report import (
    render_cheat_matrix,
    render_churn,
    render_detection,
    render_exposure,
    render_scalability,
    render_update_age,
    render_witnesses,
)
from repro import __version__
from repro.core import WatchmenSession
from repro.core.config import PROXY_PERIOD_FRAMES
from repro.faults.chaos import byzantine_scenarios, default_scenarios, run_chaos
from repro.lint.cli import add_lint_arguments, cmd_lint
from repro.mc.cli import add_mc_arguments, cmd_mc
from repro.replay.cli import add_tape_arguments, cmd_tape
from repro.game import GameTrace, generate_trace, make_corridors, make_longest_yard
from repro.net.latency import LatencyMatrix, king_like, peerwise_like, uniform_lan
from repro.net.transport import NetworkConfig
from repro.obs import (
    MetricsRegistry,
    bench_row,
    diff_rows,
    format_diff,
    load_bench_rows,
    write_bench_json,
)

__all__ = ["main", "build_parser"]

MAPS = {
    "longest-yard": make_longest_yard,
    "corridors": make_corridors,
}

EXPERIMENTS = (
    "fig1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "churn",
    "scalability",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Watchmen (ICDCS 2013) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="record a deathmatch trace")
    simulate.add_argument("--players", type=int, default=16)
    simulate.add_argument("--frames", type=int, default=400)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--map", choices=sorted(MAPS), default="longest-yard")
    simulate.add_argument("--npc-fraction", type=float, default=0.0)
    simulate.add_argument("--out", required=True, help="output JSONL path")

    replay = sub.add_parser("replay", help="replay a trace through Watchmen")
    replay.add_argument("trace", help="JSONL trace file")
    replay.add_argument("--map", choices=sorted(MAPS), default="longest-yard")
    replay.add_argument(
        "--latency", choices=("king", "peerwise", "lan"), default="king"
    )
    replay.add_argument("--loss", type=float, default=0.01)
    replay.add_argument("--servers", type=int, default=0)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper figure/table"
    )
    experiment.add_argument("name", choices=EXPERIMENTS + ("all",))
    experiment.add_argument("--players", type=int, default=16)
    experiment.add_argument("--frames", type=int, default=300)
    experiment.add_argument("--seed", type=int, default=7)
    experiment.add_argument("--map", choices=sorted(MAPS), default="longest-yard")

    metrics = sub.add_parser(
        "metrics",
        help="run a standard session with the observability registry "
        "enabled and print/export the snapshot",
    )
    metrics.add_argument("--players", type=int, default=12)
    metrics.add_argument("--frames", type=int, default=120)
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument("--map", choices=sorted(MAPS), default="longest-yard")
    metrics.add_argument(
        "--latency", choices=("king", "peerwise", "lan"), default="king"
    )
    metrics.add_argument(
        "--json",
        metavar="PATH",
        help="write the registry snapshot as JSON ('-' for stdout)",
    )

    diff = sub.add_parser(
        "bench-diff",
        help="compare two bench JSON artifacts; exit 1 on regressions "
        "beyond the threshold",
    )
    diff.add_argument("old", help="baseline artifact (JSON)")
    diff.add_argument("new", help="candidate artifact (JSON)")
    diff.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative increase that counts as a regression (default 0.25)",
    )
    diff.add_argument(
        "--include-wall",
        action="store_true",
        help="also gate on wall_seconds (machine-dependent; off by default)",
    )

    lint = sub.add_parser(
        "lint",
        help="determinism / protocol-conformance / typing static analysis",
    )
    add_lint_arguments(lint)

    tape = sub.add_parser(
        "tape",
        help="record/verify/inspect/diff deterministic match tapes "
        "(exit 1 on divergence, 2 on usage problems)",
    )
    add_tape_arguments(tape)

    mc = sub.add_parser(
        "mc",
        help="bounded interleaving model checker: explore delivery "
        "schedules of small protocol scenarios; exit 1 on an invariant "
        "violation (counterexample written as a verifiable tape)",
    )
    add_mc_arguments(mc)

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection scenario matrix and enforce the "
        "recovery SLOs; exit 1 on any violation",
    )
    chaos.add_argument("--players", type=int, default=16)
    chaos.add_argument("--frames", type=int, default=400)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--matrix",
        choices=["standard", "byzantine", "all"],
        default="all",
        help="which scenario matrix to run: the pure-fault scenarios, "
        "the adversarial (Byzantine) ones, or both (default)",
    )
    chaos.add_argument(
        "--out",
        metavar="PATH",
        help="write the repro.bench.v1 artifact here ('-' for stdout); "
        "output is byte-identical across runs of the same parameters",
    )
    return parser


def _latency_for(name: str, size: int, seed: int) -> LatencyMatrix:
    if name == "king":
        return king_like(size, seed=seed)
    if name == "peerwise":
        return peerwise_like(size, seed=seed)
    return uniform_lan(size)


def cmd_simulate(args: argparse.Namespace) -> int:
    game_map = MAPS[args.map]()
    trace = generate_trace(
        num_players=args.players,
        num_frames=args.frames,
        seed=args.seed,
        npc_fraction=args.npc_fraction,
        game_map=game_map,
    )
    trace.save_jsonl(args.out)
    print(
        f"recorded {args.players} players x {args.frames} frames on "
        f"{args.map}: {len(trace.shots)} shots, {len(trace.kills)} kills "
        f"-> {args.out}"
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    trace = GameTrace.load_jsonl(args.trace)
    game_map = MAPS[args.map]()
    size = len(trace.player_ids()) + args.servers
    session = WatchmenSession(
        trace,
        game_map=game_map,
        latency=_latency_for(args.latency, size, trace.seed),
        network_config=NetworkConfig(loss_rate=args.loss, seed=trace.seed),
        servers=args.servers,
    )
    report = session.run()
    print(f"players            : {report.num_players}")
    print(f"messages sent/lost : {report.messages_sent}/{report.messages_lost}")
    print(f"player upload      : mean {report.mean_upload_kbps:.0f} kbps, "
          f"max {report.max_upload_kbps:.0f} kbps")
    for server, kbps in report.server_upload_kbps.items():
        print(f"server {server} upload    : {kbps:.0f} kbps")
    print("update ages        : "
          + ", ".join(f"{a}f:{p:.1%}" for a, p in sorted(report.age_pdf().items())))
    print(f"stale (>=3 frames) : {report.stale_fraction(3):.2%}")
    print(f"banned             : {sorted(report.banned) or 'none'}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    game_map = MAPS[args.map]()
    trace = generate_trace(
        num_players=args.players,
        num_frames=args.frames,
        seed=args.seed,
        game_map=game_map,
    )
    names = EXPERIMENTS if args.name == "all" else (args.name,)
    for name in names:
        print(f"\n=== {name} ===")
        if name == "fig1":
            heatmap = presence_heatmap(trace, game_map, grid=20)
            print(render_ascii(heatmap))
            print(
                f"top-10%-cell presence: "
                f"{hotspot_concentration(heatmap, 0.10):.0%}"
            )
        elif name == "fig4":
            sizes = [1, 2, 4, max(2, args.players // 4)]
            print(render_exposure(
                exposure_experiment(trace, game_map, sorted(set(sizes)))
            ))
        elif name == "fig5":
            sizes = sorted({1, 2, 4, max(2, args.players // 4)})
            print(render_witnesses(
                witness_experiment(trace, game_map, sizes)
            ))
        elif name == "fig6":
            print(render_detection(figure6_experiment(trace, game_map)))
        elif name == "fig7":
            print(render_update_age(figure7_experiment(trace, game_map)))
        elif name == "table1":
            print(render_cheat_matrix(cheat_matrix_experiment(trace, game_map)))
        elif name == "churn":
            print(render_churn(churn_statistics(trace, game_map)))
        elif name == "scalability":
            counts = sorted({4, 8, args.players})
            print(render_scalability(
                scalability_experiment(counts, num_frames=120,
                                       game_map=game_map)
            ))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    registry = MetricsRegistry(enabled=True)
    game_map = MAPS[args.map]()
    trace = generate_trace(
        num_players=args.players,
        num_frames=args.frames,
        seed=args.seed,
        game_map=game_map,
        registry=registry,
    )
    session = WatchmenSession(
        trace,
        game_map=game_map,
        latency=_latency_for(args.latency, args.players, args.seed),
        registry=registry,
    )
    start = time.perf_counter()
    session.run()
    wall = time.perf_counter() - start
    registry.gauge("session.wall_seconds").set(wall)

    snapshot = registry.snapshot()
    if args.json:
        text = json.dumps(snapshot, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"snapshot -> {args.json}")
    if args.json != "-":
        _print_metrics_summary(snapshot, wall)
    return 0


def _print_metrics_summary(snapshot: dict, wall: float) -> None:
    histograms = snapshot["histograms"]
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    print(f"wall time          : {wall:.2f} s")
    frame = histograms.get("session.frame_seconds", {})
    if frame.get("count"):
        print(
            "frame time         : "
            f"p50 {frame['p50'] * 1000:.2f} ms, p95 {frame['p95'] * 1000:.2f} ms, "
            f"p99 {frame['p99'] * 1000:.2f} ms, max {frame['max'] * 1000:.2f} ms"
        )
    verify = histograms.get("node.verify_seconds", {})
    if verify.get("count"):
        print(
            "verify latency     : "
            f"p50 {verify['p50'] * 1e6:.1f} us, p99 {verify['p99'] * 1e6:.1f} us "
            f"over {verify['count']} checks"
        )
    print(
        "bandwidth          : "
        f"mean {gauges.get('net.upload_kbps.mean', 0.0):.0f} kbps, "
        f"max {gauges.get('net.upload_kbps.max', 0.0):.0f} kbps"
    )
    sent = {
        name.removeprefix("net.sent.").removesuffix(".count"): value
        for name, value in counters.items()
        if name.startswith("net.sent.") and name.endswith(".count")
    }
    if sent:
        print("messages by type   : " + ", ".join(
            f"{kind}:{count}" for kind, count in sorted(sent.items())
        ))


def cmd_bench_diff(args: argparse.Namespace) -> int:
    try:
        old_rows = load_bench_rows(args.old)
        new_rows = load_bench_rows(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"bench-diff: {error}", file=sys.stderr)
        return 2
    regressions, others = diff_rows(
        old_rows,
        new_rows,
        threshold=args.threshold,
        include_wall=args.include_wall,
    )
    print(format_diff(regressions, others, threshold=args.threshold))
    return 1 if regressions else 0


#: Pinned stamp for chaos artifacts: the run is deterministic, so the
#: artifact must be too (two identical runs emit identical bytes).
_CHAOS_EPOCH = "1970-01-01T00:00:00+00:00"


def chaos_gate_failures(results: list[dict]) -> list[str]:
    """Recovery-SLO violations across a chaos matrix (empty = pass).

    Hard gates (see ``docs/ROBUSTNESS.md``): no scenario may falsely
    evict a live player, and any failover-enabled scenario that crashed
    nodes must have re-proxied within one proxy period.
    """
    failures: list[str] = []
    for result in results:
        name = result["scenario"]
        metrics = result["metrics"]
        params = result["params"]
        if metrics["false_evictions"] > 0:
            failures.append(
                f"{name}: {metrics['false_evictions']:.0f} live players "
                "falsely evicted (SLO: 0)"
            )
        reproxy = metrics["frames_to_reproxy"]
        if params["failover"] and reproxy > PROXY_PERIOD_FRAMES:
            failures.append(
                f"{name}: frames_to_reproxy {reproxy:.0f} exceeds one "
                f"proxy period ({PROXY_PERIOD_FRAMES})"
            )
        # Byzantine gates (rows carrying byz metrics only).  Honest senders
        # must never be quarantined, hardened runs must detect the attack
        # within the bound, and the blind contrast must show the attack
        # *landing*: no detection, the attacker keeps his seat.
        if "honest_quarantines" in metrics and metrics["honest_quarantines"] > 0:
            failures.append(
                f"{name}: {metrics['honest_quarantines']:.0f} honest "
                "senders quarantined (SLO: 0)"
            )
        if "byz_detection_frames" in metrics:
            kind = params.get("byzantine", "")
            # Starvation needs a full silence threshold (2 s = one proxy
            # period) before the 1 Hz scan may even fire; direct
            # cryptographic/volume signals must land within one period.
            bound = (
                2 * PROXY_PERIOD_FRAMES
                if kind in ("selective_forward", "ack_withhold")
                else PROXY_PERIOD_FRAMES
            )
            if params.get("hardening"):
                if metrics["byz_detection_frames"] > bound:
                    failures.append(
                        f"{name}: byz_detection_frames "
                        f"{metrics['byz_detection_frames']:.0f} exceeds "
                        f"the detection bound ({bound})"
                    )
                if kind == "equivocation" and (
                    metrics["equivocations_detected"] == 0
                    or metrics["attacker_evicted"] != 1.0
                ):
                    failures.append(
                        f"{name}: equivocator not detected and evicted "
                        "under hardening"
                    )
            elif kind == "equivocation" and (
                metrics["equivocations_detected"] != 0
                or metrics["attacker_evicted"] != 0.0
            ):
                failures.append(
                    f"{name}: blind contrast should let the attack land "
                    "(no detection, no eviction)"
                )
    return failures


def cmd_chaos(args: argparse.Namespace) -> int:
    matrices = {
        "standard": default_scenarios(),
        "byzantine": byzantine_scenarios(),
        "all": default_scenarios() + byzantine_scenarios(),
    }
    results = run_chaos(
        players=args.players,
        frames=args.frames,
        seed=args.seed,
        scenarios=matrices[args.matrix],
    )
    rows = [
        bench_row(
            bench=f"chaos_{result['scenario']}",
            params=result["params"],
            metrics=result["metrics"],
            wall_seconds=0.0,  # pinned: artifact bytes must be reproducible
            timestamp=_CHAOS_EPOCH,
        )
        for result in results
    ]
    if args.out == "-":
        payload = {"schema": "repro.bench.v1", "generated": _CHAOS_EPOCH,
                   "rows": rows}
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.out:
        write_bench_json(args.out, rows, generated=_CHAOS_EPOCH)
        print(f"chaos artifact -> {args.out}")

    if args.out != "-":
        header = (
            f"{'scenario':<24} {'evict':>5} {'reproxy':>7} "
            f"{'stale.dur':>9} {'stale.aft':>9} {'p95.delta':>9}"
        )
        print(header)
        for result in results:
            metrics = result["metrics"]
            print(
                f"{result['scenario']:<24} "
                f"{metrics['false_evictions']:>5.0f} "
                f"{metrics['frames_to_reproxy']:>7.0f} "
                f"{metrics['stale_frac_during']:>9.3f} "
                f"{metrics['stale_frac_after']:>9.3f} "
                f"{metrics['view_error_p95_delta']:>9.1f}"
            )
        byz_rows = [r for r in results if "byz_detection_frames" in r["metrics"]]
        if byz_rows:
            print(
                f"{'scenario':<24} {'detect':>6} {'equiv':>6} "
                f"{'convict':>7} {'hon.quar':>8} {'evicted':>7}"
            )
            for result in byz_rows:
                metrics = result["metrics"]
                print(
                    f"{result['scenario']:<24} "
                    f"{metrics['byz_detection_frames']:>6.0f} "
                    f"{metrics['equivocations_detected']:>6.0f} "
                    f"{metrics['evidence_convictions']:>7.0f} "
                    f"{metrics['honest_quarantines']:>8.0f} "
                    f"{metrics['attacker_evicted']:>7.0f}"
                )

    failures = chaos_gate_failures(results)
    for failure in failures:
        print(f"SLO VIOLATION: {failure}", file=sys.stderr)
    if not failures and args.out != "-":
        print("all recovery SLOs met")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": cmd_simulate,
        "replay": cmd_replay,
        "experiment": cmd_experiment,
        "metrics": cmd_metrics,
        "bench-diff": cmd_bench_diff,
        "lint": cmd_lint,
        "tape": cmd_tape,
        "mc": cmd_mc,
        "chaos": cmd_chaos,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
