"""The dissemination-model interface shared by all three architectures.

A dissemination model answers one question per (observer, subject, frame):
*what class of information does the observer receive about the subject?*
(one of :class:`~repro.core.disclosure.InfoLevel`).  The exposure,
witness and bandwidth analyses are generic over this interface, so
Watchmen, Donnybrook and client/server are compared on identical footing —
exactly how Figure 4 is constructed.
"""

from __future__ import annotations

from typing import Protocol

from repro.game.avatar import AvatarSnapshot

__all__ = ["DisseminationModel"]


class DisseminationModel(Protocol):
    """Architecture-specific information-flow classification."""

    name: str

    def prepare_frame(
        self, frame: int, snapshots: dict[int, AvatarSnapshot]
    ) -> None:
        """Called once per frame before any :meth:`info_level` query."""
        ...

    def info_level(self, observer_id: int, subject_id: int) -> str:
        """The :class:`InfoLevel` the observer has about the subject."""
        ...
