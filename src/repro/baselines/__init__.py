"""Comparison architectures: optimal client/server and Donnybrook.

Both implement the :class:`DisseminationModel` interface — given a frame of
a trace, say which information level each observer has about each subject.
That is all the exposure (Fig. 4) and witness (Fig. 5) experiments need,
and the bandwidth model reuses the same classification.
"""

from repro.baselines.base import DisseminationModel
from repro.baselines.clientserver import ClientServerModel
from repro.baselines.donnybrook import DonnybrookModel
from repro.baselines.watchmen_model import WatchmenModel

__all__ = [
    "ClientServerModel",
    "DisseminationModel",
    "DonnybrookModel",
    "WatchmenModel",
]
