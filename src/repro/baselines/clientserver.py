"""The optimal client/server baseline.

"an optimal Client-Server case where players receive frequent updates for
avatars in their PVS and nothing for the rest" — the server, with global
knowledge, sends each player only what his potentially-visible set needs.
This "gives the minimum necessary information and thus serves as a
baseline" in Figure 4.

The PVS here is occlusion-culled visibility (line of sight within the
vision radius) — Quake III's PVS is geometry-based; actual view direction
does not matter because a player can spin instantly, so the server must
ship everything potentially visible.
"""

from __future__ import annotations

from repro.core.disclosure import InfoLevel
from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import GameMap, eye_position

__all__ = ["ClientServerModel"]


class ClientServerModel:
    """Server-filtered dissemination: frequent for PVS, nothing otherwise."""

    name = "client-server"

    def __init__(self, game_map: GameMap, pvs_radius: float = 2500.0) -> None:
        self.game_map = game_map
        self.pvs_radius = pvs_radius
        self._visible: dict[int, set[int]] = {}

    def prepare_frame(
        self, frame: int, snapshots: dict[int, AvatarSnapshot]
    ) -> None:
        del frame
        self._visible = {pid: set() for pid in snapshots}
        ids = sorted(snapshots)
        for i, a in enumerate(ids):
            snap_a = snapshots[a]
            for b in ids[i + 1 :]:
                snap_b = snapshots[b]
                if (
                    snap_a.position.distance_to(snap_b.position) <= self.pvs_radius
                    and self.game_map.line_of_sight(
                        eye_position(snap_a.position), eye_position(snap_b.position)
                    )
                ):
                    self._visible[a].add(b)
                    self._visible[b].add(a)

    def info_level(self, observer_id: int, subject_id: int) -> str:
        if observer_id == subject_id:
            raise ValueError("observer and subject must differ")
        if subject_id in self._visible.get(observer_id, ()):
            return InfoLevel.FREQUENT
        return InfoLevel.NOTHING
