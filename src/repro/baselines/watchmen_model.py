"""Watchmen as a dissemination model (for exposure/witness analyses).

The same IS/VS/Others classification the protocol nodes run, plus the
proxy dimension: whoever the verifiable schedule assigns as a player's
proxy holds *complete* information about him during that epoch — the
"information leakage caused by proxies" that Figure 4 shows Watchmen pays
for its verification power.
"""

from __future__ import annotations

from repro.core.disclosure import InfoLevel, watchmen_observer_level
from repro.core.proxy import ProxySchedule
from repro.game.avatar import AvatarSnapshot
from repro.game.gamemap import GameMap
from repro.game.interest import (
    InteractionRecency,
    InterestConfig,
    InterestSets,
    compute_all_sets,
)

__all__ = ["WatchmenModel"]


class WatchmenModel:
    """IS/VS/Others + proxy-grade exposure, per frame."""

    name = "watchmen"

    def __init__(
        self,
        game_map: GameMap,
        schedule: ProxySchedule,
        config: InterestConfig | None = None,
        recency: InteractionRecency | None = None,
    ) -> None:
        self.game_map = game_map
        self.schedule = schedule
        self.config = config or InterestConfig()
        self.recency = recency
        self._sets: dict[int, InterestSets] = {}
        self._epoch = 0

    def prepare_frame(
        self, frame: int, snapshots: dict[int, AvatarSnapshot]
    ) -> None:
        self._epoch = self.schedule.epoch_of_frame(frame)
        # Batched entry point: shares the per-frame symmetric LOS cache and
        # the per-observer hoisted state across the whole frame.  Identical
        # output to calling compute_sets per observer.
        self._sets = compute_all_sets(
            snapshots,
            self.game_map,
            frame,
            self.config,
            self.recency,
        )

    def sets_of(self, observer_id: int) -> InterestSets:
        return self._sets[observer_id]

    def proxy_of(self, subject_id: int) -> int:
        return self.schedule.proxy_of(subject_id, self._epoch)

    def info_level(self, observer_id: int, subject_id: int) -> str:
        if observer_id == subject_id:
            raise ValueError("observer and subject must differ")
        sets = self._sets.get(observer_id)
        if sets is None:
            return InfoLevel.INFREQUENT
        return watchmen_observer_level(
            observer_id,
            subject_id,
            sets.interest,
            sets.vision,
            self.proxy_of(subject_id),
        )
