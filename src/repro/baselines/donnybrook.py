"""Donnybrook re-implementation (the multi-resolution comparison point).

"Donnybrook ... uses the set of the top 5 avatars with respect to an
attention metric based on proximity, aim and interaction recency, called
interest set (IS).  A player typically receives frequent updates only
about avatars in his IS and infrequent so-called dead-reckoning updates
about other avatars."

The paper's authors implemented interest sets "according to Donnybrook,
since the code was not available" — we do the same, sharing the attention
metric with :mod:`repro.game.interest`.  Two Donnybrook-specific points:

- the IS is chosen from *all* players by attention (no visibility gate —
  that gate is a Watchmen addition);
- every non-IS player still sends dead-reckoning updates to everyone,
  which is why a coalition gets DR about ~everybody in Figure 4; real
  Donnybrook's forwarder pools only add exposure, so this is the paper's
  stated lower bound.
"""

from __future__ import annotations

import heapq

from repro.core.disclosure import InfoLevel
from repro.game.avatar import AvatarSnapshot
from repro.game.interest import InteractionRecency, InterestConfig, ObserverFrame

__all__ = ["DonnybrookModel"]


class DonnybrookModel:
    """Top-5-attention IS with dead reckoning to everyone else."""

    name = "donnybrook"

    def __init__(
        self,
        config: InterestConfig | None = None,
        recency: InteractionRecency | None = None,
    ) -> None:
        self.config = config or InterestConfig()
        self.recency = recency
        self._interest: dict[int, frozenset[int]] = {}

    def prepare_frame(
        self, frame: int, snapshots: dict[int, AvatarSnapshot]
    ) -> None:
        self._interest = {}
        for observer_id, observer in snapshots.items():
            # Hoist the observer's eye/aim state once per frame; nlargest is
            # documented to agree with sorted(..., reverse=True)[:n],
            # including stable tie order, so the IS is unchanged.
            oframe = ObserverFrame(observer, self.config)
            candidates = [
                other_id
                for other_id, other in snapshots.items()
                if other_id != observer_id and other.alive
            ]
            top = heapq.nlargest(
                self.config.interest_size,
                candidates,
                key=lambda oid: oframe.attention_score(
                    snapshots[oid], frame, self.recency
                ),
            )
            self._interest[observer_id] = frozenset(top)

    def interest_set(self, observer_id: int) -> frozenset[int]:
        return self._interest.get(observer_id, frozenset())

    def info_level(self, observer_id: int, subject_id: int) -> str:
        if observer_id == subject_id:
            raise ValueError("observer and subject must differ")
        if subject_id in self._interest.get(observer_id, ()):
            return InfoLevel.FREQUENT
        return InfoLevel.DEAD_RECKONING
