"""R rules: proxy-routing and envelope-authentication checks.

Section III-B of the paper: "all traffic of a player is sent through its
proxies" — the proxy both hides network identities and is the vantage
point every verification check hangs off.  A code path that hands a
payload straight to the transport bypasses signing-side verification and
re-opens network-level cheats (suppression, timestamp games) that the
proxy exists to catch.

* **R501** — a direct transport-sink call (``Transport.send``-shaped:
  attribute named ``send``/``_send_raw`` taking the 4-argument
  ``(src, dst, payload, size)`` shape) from ``core/node.py`` or
  ``game/*`` outside the one sanctioned egress point
  (``WatchmenNode._transmit_unfiltered``) and with no call edge into the
  proxy layer (``core/proxy.py``).
* **R502** — a dispatch handler that addresses a reply using a sender id
  read from the *payload* (``message.sender_id`` — attacker-controlled,
  spoofable) instead of the authenticated envelope source the dispatcher
  passes in (the ``src`` parameter, which the transport stamped and the
  signature check vouched for).
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.violations import Violation

__all__ = ["run_routing_rules", "SANCTIONED_EGRESS"]

#: Attribute names that look like the raw transport sink.
_SINK_ATTRS = frozenset({"send", "_send_raw"})

#: The (src, dst, payload, size) transport signature arity.
_SINK_ARITY = 4

#: The one function allowed to touch the raw transport: every message
#: funnels through it after signing + behaviour filtering, and its callers
#: route via the proxy schedule.
SANCTIONED_EGRESS = frozenset({"repro.core.node.WatchmenNode._transmit_unfiltered"})

_PROXY_MODULE_PREFIX = "repro.core.proxy."

#: Transmit wrappers a handler would reply through.
_TRANSMIT_NAMES = frozenset(
    {"_transmit", "_transmit_unfiltered", "_send_raw", "send"}
)

_HANDLER_EXACT = frozenset({"on_message", "_dispatch_message"})
_HANDLER_PREFIXES = ("_on_", "_handle_")


def _in_r501_scope(info: FunctionInfo) -> bool:
    return info.module == "repro.core.node" or info.module.startswith("repro.game.")


def _is_handler(info: FunctionInfo) -> bool:
    if info.module != "repro.core.node" and not info.module.startswith(
        ("repro.core.", "repro.game.")
    ):
        return False
    return info.name in _HANDLER_EXACT or info.name.startswith(_HANDLER_PREFIXES)


def _context(sources: dict[str, list[str]], path: str, lineno: int) -> str:
    lines = sources.get(path, [])
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


def run_routing_rules(
    graph: CallGraph, sources: dict[str, list[str]]
) -> list[Violation]:
    violations: list[Violation] = []
    for qname, info in sorted(graph.functions.items()):
        if _in_r501_scope(info):
            violations.extend(_check_r501(graph, info, sources))
        if _is_handler(info):
            violations.extend(_check_r502(info, sources))
    return violations


def _check_r501(
    graph: CallGraph, info: FunctionInfo, sources: dict[str, list[str]]
) -> list[Violation]:
    if info.qname in SANCTIONED_EGRESS:
        return []
    # Only exact edges count as evidence: a by-name guess to a same-named
    # method that happens to live in proxy.py must not vouch for routing.
    routes_via_proxy = any(
        callee.startswith(_PROXY_MODULE_PREFIX)
        for callee in graph.exact_callees(info.qname)
    )
    violations: list[Violation] = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _SINK_ATTRS:
            continue
        if len(node.args) + len(node.keywords) != _SINK_ARITY:
            continue  # not the (src, dst, payload, size) transport shape
        if routes_via_proxy:
            continue
        violations.append(
            Violation(
                rule="R501",
                path=info.path,
                line=node.lineno,
                message=(
                    f"direct transport send in {info.qname} bypasses the "
                    "proxy layer — all outgoing traffic must flow through "
                    "core/proxy.py (route via WatchmenNode._transmit)"
                ),
                context=_context(sources, info.path, node.lineno),
            )
        )
    return violations


def _payload_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Every non-self parameter: any of them may carry a spoofable payload."""
    args = node.args
    names = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    names.discard("self")
    names.discard("cls")
    return names


def _destination_argument(call: ast.Call) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg in ("destination", "dst"):
            return keyword.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


def _check_r502(
    info: FunctionInfo, sources: dict[str, list[str]]
) -> list[Violation]:
    params = _payload_params(info.node)
    violations: list[Violation] = []
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        name = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else node.func.id
            if isinstance(node.func, ast.Name)
            else None
        )
        if name not in _TRANSMIT_NAMES:
            continue
        destination = _destination_argument(node)
        if (
            isinstance(destination, ast.Attribute)
            and destination.attr == "sender_id"
            and isinstance(destination.value, ast.Name)
            and destination.value.id in params
        ):
            violations.append(
                Violation(
                    rule="R502",
                    path=info.path,
                    line=node.lineno,
                    message=(
                        f"handler {info.qname} replies to "
                        f"{destination.value.id}.sender_id from the payload; "
                        "use the authenticated envelope source (the "
                        "dispatcher's src parameter) — payload sender ids "
                        "are attacker-controlled"
                    ),
                    context=_context(sources, info.path, node.lineno),
                )
            )
    return violations
