"""The lint driver: collect files, run rule families, subtract the baseline.

Dependency-free by design (stdlib ``ast`` only): the analyzer must run in
CI before anything is installed, and must never disagree with itself
across environments.

Rule scoping:

* **T rules** run on every ``src/repro`` file scanned.
* **D rules** run only inside the deterministic packages
  (``src/repro/{core,game,crypto,net,cheats}``); ``repro.obs`` and the
  CLI legitimately read wall clocks.
* **P rules** run once per invocation over the messages/node/wire triple
  (paths configurable so tests can lint synthetic fixture trees).
* **F/R/C/S/M rules** are whole-program: regardless of which paths were
  requested, they analyze everything under ``<root>/src/repro`` (a call
  graph over a file subset would miss edges and lie; the S-family taint
  fixpoint additionally needs every exact call edge).  Every file is
  parsed exactly once — the scan pass and the whole-program pass share a
  cache keyed by resolved path.

Inline escape hatch: a source line containing ``repro-lint: ignore`` (or
``repro-lint: ignore[D102]`` to scope it) is exempt — use sparingly, with
a justifying comment; prefer fixing or baselining.  It applies to every
family, including whole-program findings.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.callgraph import ParsedModule, build_call_graph, module_name_for
from repro.lint.configdrift import run_configdrift_rules
from repro.lint.determinism import DETERMINISTIC_PACKAGES, run_determinism_rules
from repro.lint.flow import run_flow_rules
from repro.lint.footprint import FootprintTable, run_footprint_rules
from repro.lint.protocol import ProtocolSources, run_protocol_rules
from repro.lint.routing import run_routing_rules
from repro.lint.taint import TaintStats, run_taint_rules
from repro.lint.typing_rules import run_typing_rules
from repro.lint.violations import Violation, family_of

__all__ = ["LintConfig", "LintReport", "run_lint"]

_IGNORE_PATTERN = re.compile(
    r"repro-lint:\s*ignore(?:\[(?P<rules>[A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)\])?"
)


@dataclass(frozen=True, slots=True)
class LintConfig:
    """One lint invocation: where to look and what to compare against."""

    root: Path
    paths: tuple[Path, ...] = ()
    baseline_path: Path | None = None

    def scan_paths(self) -> tuple[Path, ...]:
        if self.paths:
            return self.paths
        return (self.root / "src" / "repro",)

    def program_root(self) -> Path:
        """Where the whole-program families (F/R/C) look."""
        return self.root / "src" / "repro"

    def protocol_sources(self) -> ProtocolSources:
        core = self.root / "src" / "repro" / "core"
        return ProtocolSources(
            messages_path=core / "messages.py",
            node_path=core / "node.py",
            wire_path=core / "wire.py",
        )


@dataclass(slots=True)
class LintReport:
    """What one run found, after baseline subtraction."""

    violations: list[Violation] = field(default_factory=list)
    all_violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0
    #: effort counters from the interprocedural taint pass (S rules),
    #: surfaced as the `lint_wall` bench row so CI can gate lint cost
    taint_stats: TaintStats = TaintStats(functions_analyzed=0, fixpoint_iterations=0)
    #: the M-family handler-footprint table (None when the whole-program
    #: pass did not run); exported via `repro lint --footprints` and
    #: consumed by the repro.mc partial-order reduction
    footprints: FootprintTable | None = None

    def counts_by_rule(self) -> dict[str, int]:
        return dict(Counter(v.rule for v in self.violations))

    def counts_by_family(self) -> dict[str, int]:
        return dict(Counter(family_of(v.rule) for v in self.violations))

    def render(self) -> str:
        lines = [v.render() for v in sorted(
            self.violations, key=lambda v: (v.path, v.line, v.rule)
        )]
        summary = (
            f"repro lint: {self.files_scanned} files, "
            f"{len(self.violations)} new violation(s), "
            f"{self.suppressed} baseline-suppressed"
        )
        if lines:
            by_rule = ", ".join(
                f"{rule}:{count}" for rule, count in sorted(self.counts_by_rule().items())
            )
            return "\n".join([*lines, summary + f" ({by_rule})"])
        return summary


def _collect_files(paths: tuple[Path, ...]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
    # de-duplicate while keeping order
    seen: set[Path] = set()
    unique: list[Path] = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _repro_parts(rel: str) -> tuple[str, ...] | None:
    """Path parts below ``src/repro``, or None when outside it."""
    parts = Path(rel).parts
    if len(parts) >= 2 and parts[0] == "src" and parts[1] == "repro":
        return parts[2:]
    return None


def _in_deterministic_scope(rel: str) -> bool:
    below = _repro_parts(rel)
    return below is not None and len(below) > 1 and below[0] in DETERMINISTIC_PACKAGES


def _inline_ignored(violation: Violation, source_lines: list[str]) -> bool:
    if not 1 <= violation.line <= len(source_lines):
        return False
    match = _IGNORE_PATTERN.search(source_lines[violation.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    return violation.rule in {r.strip() for r in rules.split(",")}


class _ParseCache:
    """Parse every file at most once per invocation."""

    def __init__(self, root: Path) -> None:
        self._root = root
        self._entries: dict[Path, tuple[str, ast.Module | None, list[str]]] = {}

    def parse(self, file: Path) -> tuple[str, ast.Module | None, list[str]]:
        """(rel, tree-or-None, source lines); tree is None on syntax error."""
        resolved = file.resolve()
        cached = self._entries.get(resolved)
        if cached is not None:
            return cached
        rel = _relpath(file, self._root)
        source = file.read_text(encoding="utf-8")
        lines = source.splitlines()
        tree: ast.Module | None
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError:
            tree = None
        entry = (rel, tree, lines)
        self._entries[resolved] = entry
        return entry

    def syntax_error(self, file: Path) -> SyntaxError | None:
        try:
            ast.parse(file.read_text(encoding="utf-8"), filename=str(file))
        except SyntaxError as error:
            return error
        return None


def _dedupe(violations: list[Violation]) -> list[Violation]:
    """Drop exact duplicates (same rule/path/line/message), keeping order.

    Guards against the same file being analyzed twice — e.g. passed both
    via a directory scan and as an explicit path under a different
    spelling or symlink — which would otherwise double-count against the
    baseline's multiplicity budget.
    """
    seen: set[tuple[str, str, int, str]] = set()
    unique: list[Violation] = []
    for violation in violations:
        key = (violation.rule, violation.path, violation.line, violation.message)
        if key not in seen:
            seen.add(key)
            unique.append(violation)
    return unique


def run_lint(config: LintConfig) -> LintReport:
    """Scan, cross-reference, subtract the baseline; never writes files."""
    report = LintReport()
    found: list[Violation] = []
    cache = _ParseCache(config.root)
    lines_by_rel: dict[str, list[str]] = {}

    for file in _collect_files(config.scan_paths()):
        rel, tree, source_lines = cache.parse(file)
        if _repro_parts(rel) is None and config.paths == ():
            continue
        lines_by_rel[rel] = source_lines
        report.files_scanned += 1
        if tree is None:
            error = cache.syntax_error(file)
            found.append(
                Violation(
                    rule="E000",
                    path=rel,
                    line=(error.lineno or 1) if error else 1,
                    message=(
                        f"file does not parse: {error.msg if error else 'unknown'}"
                    ),
                    context="",
                )
            )
            continue

        file_violations: list[Violation] = []
        file_violations.extend(run_typing_rules(rel, tree, source_lines))
        if _in_deterministic_scope(rel):
            file_violations.extend(run_determinism_rules(rel, tree, source_lines))
        found.extend(
            v for v in file_violations if not _inline_ignored(v, source_lines)
        )

    sources = config.protocol_sources()
    if sources.exists():
        protocol_violations = run_protocol_rules(
            sources, src_root=config.root / "src"
        )
        found.extend(
            Violation(
                rule=v.rule,
                path=_relpath(Path(v.path), config.root),
                line=v.line,
                message=v.message,
                context=v.context,
            )
            for v in protocol_violations
        )

    found.extend(_run_whole_program(config, cache, lines_by_rel, report))

    report.all_violations = _dedupe(found)
    baseline = (
        load_baseline(config.baseline_path)
        if config.baseline_path is not None
        else Counter()
    )
    report.violations, report.suppressed = apply_baseline(
        report.all_violations, baseline
    )
    return report


def _run_whole_program(
    config: LintConfig,
    cache: _ParseCache,
    lines_by_rel: dict[str, list[str]],
    report: LintReport,
) -> list[Violation]:
    """F/R/C/S/M families over the full ``<root>/src/repro`` tree."""
    program_root = config.program_root()
    if not program_root.is_dir():
        return []
    modules: list[ParsedModule] = []
    trees_by_rel: dict[str, ast.Module] = {}
    for file in sorted(program_root.rglob("*.py")):
        rel, tree, source_lines = cache.parse(file)
        if tree is None:
            continue  # E000 is reported by the scan pass when requested
        lines_by_rel.setdefault(rel, source_lines)
        trees_by_rel[rel] = tree
        module = module_name_for(rel)
        if module is not None:
            modules.append(ParsedModule(module=module, path=rel, tree=tree))

    graph = build_call_graph(modules)
    found: list[Violation] = []
    found.extend(run_flow_rules(graph, lines_by_rel))
    found.extend(run_routing_rules(graph, lines_by_rel))
    taint_violations, report.taint_stats = run_taint_rules(graph, lines_by_rel)
    found.extend(taint_violations)
    footprint_violations, report.footprints = run_footprint_rules(
        graph, lines_by_rel, trees_by_rel
    )
    found.extend(footprint_violations)
    found.extend(
        run_configdrift_rules(
            trees_by_rel,
            lines_by_rel,
            program_root / "core" / "config.py",
        )
    )
    return [
        v
        for v in found
        if not _inline_ignored(v, lines_by_rel.get(v.path, []))
    ]
