"""The lint driver: collect files, run rule families, subtract the baseline.

Dependency-free by design (stdlib ``ast`` only): the analyzer must run in
CI before anything is installed, and must never disagree with itself
across environments.

Per-file scoping:

* **T rules** run on every ``src/repro`` file scanned.
* **D rules** run only inside the deterministic packages
  (``src/repro/{core,game,crypto,net,cheats}``); ``repro.obs`` and the
  CLI legitimately read wall clocks.
* **P rules** run once per invocation over the messages/node/wire triple
  (paths configurable so tests can lint synthetic fixture trees).

Inline escape hatch: a source line containing ``repro-lint: ignore`` (or
``repro-lint: ignore[D102]`` to scope it) is exempt — use sparingly, with
a justifying comment; prefer fixing or baselining.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.determinism import DETERMINISTIC_PACKAGES, run_determinism_rules
from repro.lint.protocol import ProtocolSources, run_protocol_rules
from repro.lint.typing_rules import run_typing_rules
from repro.lint.violations import Violation, family_of

__all__ = ["LintConfig", "LintReport", "run_lint"]

_IGNORE_PATTERN = re.compile(
    r"repro-lint:\s*ignore(?:\[(?P<rules>[A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)\])?"
)


@dataclass(frozen=True, slots=True)
class LintConfig:
    """One lint invocation: where to look and what to compare against."""

    root: Path
    paths: tuple[Path, ...] = ()
    baseline_path: Path | None = None

    def scan_paths(self) -> tuple[Path, ...]:
        if self.paths:
            return self.paths
        return (self.root / "src" / "repro",)

    def protocol_sources(self) -> ProtocolSources:
        core = self.root / "src" / "repro" / "core"
        return ProtocolSources(
            messages_path=core / "messages.py",
            node_path=core / "node.py",
            wire_path=core / "wire.py",
        )


@dataclass(slots=True)
class LintReport:
    """What one run found, after baseline subtraction."""

    violations: list[Violation] = field(default_factory=list)
    all_violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0

    def counts_by_rule(self) -> dict[str, int]:
        return dict(Counter(v.rule for v in self.violations))

    def counts_by_family(self) -> dict[str, int]:
        return dict(Counter(family_of(v.rule) for v in self.violations))

    def render(self) -> str:
        lines = [v.render() for v in sorted(
            self.violations, key=lambda v: (v.path, v.line, v.rule)
        )]
        summary = (
            f"repro lint: {self.files_scanned} files, "
            f"{len(self.violations)} new violation(s), "
            f"{self.suppressed} baseline-suppressed"
        )
        if lines:
            by_rule = ", ".join(
                f"{rule}:{count}" for rule, count in sorted(self.counts_by_rule().items())
            )
            return "\n".join([*lines, summary + f" ({by_rule})"])
        return summary


def _collect_files(paths: tuple[Path, ...]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
    # de-duplicate while keeping order
    seen: set[Path] = set()
    unique: list[Path] = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _repro_parts(rel: str) -> tuple[str, ...] | None:
    """Path parts below ``src/repro``, or None when outside it."""
    parts = Path(rel).parts
    if len(parts) >= 2 and parts[0] == "src" and parts[1] == "repro":
        return parts[2:]
    return None


def _in_deterministic_scope(rel: str) -> bool:
    below = _repro_parts(rel)
    return below is not None and len(below) > 1 and below[0] in DETERMINISTIC_PACKAGES


def _inline_ignored(violation: Violation, source_lines: list[str]) -> bool:
    if not 1 <= violation.line <= len(source_lines):
        return False
    match = _IGNORE_PATTERN.search(source_lines[violation.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    return violation.rule in {r.strip() for r in rules.split(",")}


def run_lint(config: LintConfig) -> LintReport:
    """Scan, cross-reference, subtract the baseline; never writes files."""
    report = LintReport()
    found: list[Violation] = []

    for file in _collect_files(config.scan_paths()):
        rel = _relpath(file, config.root)
        if _repro_parts(rel) is None and config.paths == ():
            continue
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as error:
            found.append(
                Violation(
                    rule="E000",
                    path=rel,
                    line=error.lineno or 1,
                    message=f"file does not parse: {error.msg}",
                    context="",
                )
            )
            report.files_scanned += 1
            continue
        source_lines = source.splitlines()
        report.files_scanned += 1

        file_violations: list[Violation] = []
        file_violations.extend(run_typing_rules(rel, tree, source_lines))
        if _in_deterministic_scope(rel):
            file_violations.extend(run_determinism_rules(rel, tree, source_lines))
        found.extend(
            v for v in file_violations if not _inline_ignored(v, source_lines)
        )

    sources = config.protocol_sources()
    if sources.exists():
        protocol_violations = run_protocol_rules(
            sources, src_root=config.root / "src"
        )
        found.extend(
            Violation(
                rule=v.rule,
                path=_relpath(Path(v.path), config.root),
                line=v.line,
                message=v.message,
                context=v.context,
            )
            for v in protocol_violations
        )

    report.all_violations = list(found)
    baseline = (
        load_baseline(config.baseline_path)
        if config.baseline_path is not None
        else Counter()
    )
    report.violations, report.suppressed = apply_baseline(found, baseline)
    return report
