"""Per-function taint dataflow: gen/kill summaries for the S rules.

One :func:`analyze_function` call interprets a single function body against
an abstract environment mapping local names to sets of :class:`TaintTag`.
The interpreter is deliberately simple — the shape that stays debuggable
in a dependency-free linter:

* statements are processed in source order (nested blocks linearized by
  line number), repeated until the environment stabilizes (small pass
  cap), so a sanitizer call kills taint for everything textually after it
  and loop-carried assignments still converge;
* expressions *generate* taint (sources), *propagate* it (assignments,
  attribute chains, tuple unpacking, container literals, call arguments
  and results) or *kill* it (sanitizer/reducer/declassifier calls);
* a final reporting pass records sink hits, interprocedural call-outs
  (which arguments carry which tags into which exact callee) and the
  function's return tags.

Kind-specific propagation rules, chosen to match what the rules mean:

* ``payload`` and ``secret`` survive attribute access (``update.sender_id``
  is as attacker-controlled as ``update``); ``exact`` does not — reading a
  component (``snapshot.position``) is exactly the resolution reduction
  S703 wants to allow.  This is the documented "no container-element
  sensitivity" trade-off.
* Sanitizer calls kill ``payload`` on their ``Name`` arguments, but only
  when the call resolves on the *exact* tier — a by-name match to some
  other ``verify`` must not vouch (the R501 convention).
* Reducers (``position_only`` …) and declassifiers (``sign``) clean their
  *result* only; the input stays tainted.

The interprocedural fixpoint lives in :mod:`repro.lint.taint`; this module
never looks past one function except to read a callee's current return
tags through the ``return_tags_of`` callback.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping

from repro.lint.callgraph import CallGraph, FunctionInfo, bind_arguments

__all__ = [
    "PAYLOAD",
    "SECRET",
    "EXACT",
    "TaintTag",
    "TaintModel",
    "CallOut",
    "SinkHit",
    "FunctionDataflow",
    "analyze_function",
]

PAYLOAD = "payload"
SECRET = "secret"
EXACT = "exact"

#: Statement passes before the reporting pass; loop-carried taint needs 2,
#: the third catches pathological orderings without unbounded work.
_MAX_PASSES = 3

#: Witness chains longer than this stop growing (recursion guard); the
#: tag still propagates, only the recorded path is truncated.
_MAX_CHAIN = 12

TagSet = frozenset["TaintTag"]
_EMPTY: TagSet = frozenset()


@dataclass(frozen=True, slots=True)
class TaintTag:
    """One taint fact: what kind, where it entered, and the path so far."""

    kind: str
    origin: str  # qname of the function where the source was introduced
    origin_line: int
    origin_note: str  # human phrasing, e.g. "parameter 'message'"
    #: interprocedural hops: (caller qname, call-site line) from origin on
    chain: tuple[tuple[str, int], ...] = ()

    def identity(self) -> tuple[str, str, int]:
        """Fixpoint identity — chains are bookkeeping, not new facts."""
        return (self.kind, self.origin, self.origin_line)

    def hopped(self, caller: str, line: int) -> "TaintTag":
        if len(self.chain) >= _MAX_CHAIN:
            return self
        return replace(self, chain=(*self.chain, (caller, line)))


@dataclass(frozen=True, slots=True)
class TaintModel:
    """The source/sanitizer/sink tables one taint run analyzes against.

    Everything is plain data so tests can build synthetic models; the real
    one (built from the rule constants plus ``# repro-taint: sanitizer``
    markers in the tree) comes from :func:`repro.lint.taint.build_model`.
    """

    #: exact qnames whose call kills PAYLOAD on its arguments
    sanitizers: frozenset[str]
    #: bare callee names whose result is EXACT-clean (resolution reducers)
    reducers: frozenset[str]
    #: bare callee names whose result is SECRET-clean (e.g. ``sign``)
    declassifiers: frozenset[str]
    #: attribute names whose read yields SECRET (key/seed material)
    secret_attrs: frozenset[str]
    #: bare callee names whose result yields SECRET (e.g. ``key_for``)
    secret_calls: frozenset[str]
    #: bare callee names whose result yields PAYLOAD (wire decode)
    payload_calls: frozenset[str]
    #: attribute names whose read yields EXACT (full-state snapshots)
    exact_attrs: frozenset[str]
    #: container names whose element read (``[...]``/``.get``) yields EXACT
    exact_stores: frozenset[str]
    #: annotation type names that seed EXACT parameters
    exact_param_types: frozenset[str]
    #: bare callee names that transmit/encode (S702 sink)
    send_names: frozenset[str]
    #: message constructor names (S702 sink: secret into a payload field)
    message_ctors: frozenset[str]
    #: reduced-resolution ctor -> payload field that must not be EXACT
    reduced_ctor_fields: Mapping[str, str]
    #: bare callee names that mutate authoritative state (S701 sink)
    auth_calls: frozenset[str]
    #: attribute names of authoritative stores (S701 sink on writes)
    auth_stores: frozenset[str]
    #: name prefixes of dispatch handlers (S701 sink on tainted entry args)
    handler_prefixes: tuple[str, ...]
    #: module prefixes where SECRET sources/sinks are exempt (the crypto
    #: layer legitimately touches key material)
    secret_exempt_prefixes: tuple[str, ...]
    #: qnames never analyzed (sanitizers and reducers examine raw input
    #: by design; flagging their bodies would be noise)
    exempt: frozenset[str]

    def secret_active(self, module: str) -> bool:
        return not module.startswith(self.secret_exempt_prefixes)


@dataclass(frozen=True, slots=True)
class CallOut:
    """Tainted arguments bound into one exact callee at one call site."""

    callee: str
    line: int
    #: callee parameter name -> tags (chains already extended by the hop)
    param_tags: tuple[tuple[str, TagSet], ...]


@dataclass(frozen=True, slots=True)
class SinkHit:
    """One tainted value reaching one sink expression."""

    rule: str
    line: int
    tag: TaintTag
    sink_note: str


@dataclass(slots=True)
class FunctionDataflow:
    """Everything one function's analysis feeds back to the fixpoint."""

    return_tags: set[TaintTag] = field(default_factory=set)
    calls_out: list[CallOut] = field(default_factory=list)
    sinks: list[SinkHit] = field(default_factory=list)


def _terminal_name(expr: ast.expr) -> str | None:
    """``self.membership`` -> ``membership``; ``known`` -> ``known``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _without(tags: TagSet, kind: str) -> TagSet:
    return frozenset(tag for tag in tags if tag.kind != kind)


def _only(tags: TagSet, kind: str) -> TagSet:
    return frozenset(tag for tag in tags if tag.kind == kind)


class _Interpreter:
    """One function body, one environment, N passes plus a reporting pass."""

    def __init__(
        self,
        graph: CallGraph,
        model: TaintModel,
        info: FunctionInfo,
        entry: Mapping[str, TagSet],
        return_tags_of: Callable[[str], TagSet],
    ) -> None:
        self.graph = graph
        self.model = model
        self.info = info
        self.env: dict[str, TagSet] = {name: tags for name, tags in entry.items() if tags}
        self.return_tags_of = return_tags_of
        self.reporting = False
        self.result = FunctionDataflow()
        self._seen_sinks: set[tuple[str, int, tuple[str, str, int]]] = set()

    # -- driver ------------------------------------------------------------

    def run(self) -> FunctionDataflow:
        statements = self._linearized_statements()
        for _ in range(_MAX_PASSES):
            before = dict(self.env)
            for stmt in statements:
                self._transfer(stmt)
            if self.env == before:
                break
        self.reporting = True
        for stmt in statements:
            self._transfer(stmt)
        return self.result

    def _linearized_statements(self) -> list[ast.stmt]:
        """Body statements in source order, nested defs' bodies excluded."""
        skip: set[int] = set()
        for node in ast.walk(self.info.node):
            if node is self.info.node:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                skip.update(id(inner) for inner in ast.walk(node))
        statements = [
            node
            for node in ast.walk(self.info.node)
            if isinstance(node, ast.stmt)
            and node is not self.info.node
            and id(node) not in skip
        ]
        statements.sort(key=lambda node: (node.lineno, node.col_offset))
        return statements

    # -- statements --------------------------------------------------------

    def _transfer(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return):
            tags = self._eval(stmt.value) if stmt.value is not None else _EMPTY
            if self.reporting:
                self.result.return_tags.update(tags)
        elif isinstance(stmt, ast.Assign):
            tags = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, tags, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            tags = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = self.env.get(stmt.target.id, _EMPTY) | tags
                self._set(stmt.target.id, merged)
            else:
                self._check_store_sink(stmt.target, tags)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign(stmt.target, self._eval(stmt.iter), None)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tags = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tags, None)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)

    def _assign(
        self, target: ast.expr, tags: TagSet, value: ast.expr | None
    ) -> None:
        if isinstance(target, ast.Name):
            self._set(target.id, tags)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tags, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: Iterable[tuple[ast.expr, TagSet]]
            if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == len(
                target.elts
            ):
                elements = [
                    (t, self._eval(v)) for t, v in zip(target.elts, value.elts)
                ]
            else:
                elements = [(t, tags) for t in target.elts]
            for element, element_tags in elements:
                self._assign(element, element_tags, None)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._check_store_sink(target, tags)

    def _set(self, name: str, tags: TagSet) -> None:
        if tags:
            self.env[name] = tags
        else:
            self.env.pop(name, None)

    def _check_store_sink(self, target: ast.expr, tags: TagSet) -> None:
        """Writes into authoritative stores are S701 sinks for payload."""
        if not self.reporting:
            return
        store: str | None = None
        extra: TagSet = _EMPTY
        if isinstance(target, ast.Subscript):
            store = _terminal_name(target.value)
            extra = self._eval(target.slice)  # a payload-chosen key mutates too
        elif isinstance(target, ast.Attribute):
            store = target.attr
        if store in self.model.auth_stores:
            for tag in _only(tags | extra, PAYLOAD):
                self._sink(
                    "S701",
                    target.lineno,
                    tag,
                    f"write into authoritative store '{store}'",
                )

    # -- expressions -------------------------------------------------------

    def _eval(self, expr: ast.expr | None) -> TagSet:
        if expr is None or isinstance(expr, ast.Constant):
            return _EMPTY
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            combined = self._eval(expr.left) | self._eval(expr.right)
            return _without(combined, EXACT)  # arithmetic is already a reduction
        if isinstance(expr, ast.UnaryOp):
            return _without(self._eval(expr.operand), EXACT)
        if isinstance(expr, ast.BoolOp):
            tags: TagSet = _EMPTY
            for value in expr.values:
                tags |= self._eval(value)
            return tags
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comparator in expr.comparators:
                self._eval(comparator)
            return _EMPTY  # booleans: implicit flows are out of scope
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return self._eval(expr.body) | self._eval(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            tags = _EMPTY
            for element in expr.elts:
                tags |= self._eval(element)
            return tags
        if isinstance(expr, ast.Dict):
            tags = _EMPTY
            for key in expr.keys:
                if key is not None:
                    tags |= self._eval(key)
            for value in expr.values:
                tags |= self._eval(value)
            return tags
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.JoinedStr):
            tags = _EMPTY
            for value in expr.values:
                tags |= self._eval(value)
            return _without(tags, EXACT)
        if isinstance(expr, ast.FormattedValue):
            return _without(self._eval(expr.value), EXACT)
        if isinstance(expr, ast.NamedExpr):
            tags = self._eval(expr.value)
            self._assign(expr.target, tags, expr.value)
            return tags
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return self._eval_comprehension(expr)
        if isinstance(expr, ast.Lambda):
            return _EMPTY  # deferred body: out of the summary's scope
        if isinstance(expr, ast.Slice):
            self._eval(expr.lower)
            self._eval(expr.upper)
            self._eval(expr.step)
            return _EMPTY
        return _EMPTY

    def _eval_attribute(self, expr: ast.Attribute) -> TagSet:
        base = self._eval(expr.value)
        tags = _without(base, EXACT)  # component access reduces resolution
        if expr.attr in self.model.secret_attrs and self.model.secret_active(
            self.info.module
        ):
            tags |= frozenset(
                {
                    TaintTag(
                        kind=SECRET,
                        origin=self.info.qname,
                        origin_line=expr.lineno,
                        origin_note=f"read of secret attribute '.{expr.attr}'",
                    )
                }
            )
        if expr.attr in self.model.exact_attrs:
            tags |= frozenset(
                {
                    TaintTag(
                        kind=EXACT,
                        origin=self.info.qname,
                        origin_line=expr.lineno,
                        origin_note=f"exact-state read '.{expr.attr}'",
                    )
                }
            )
        return tags

    def _eval_subscript(self, expr: ast.Subscript) -> TagSet:
        tags = self._eval(expr.value)
        self._eval(expr.slice)  # for call effects inside the index
        if _terminal_name(expr.value) in self.model.exact_stores:
            tags |= frozenset(
                {
                    TaintTag(
                        kind=EXACT,
                        origin=self.info.qname,
                        origin_line=expr.lineno,
                        origin_note=(
                            f"exact-state read from "
                            f"'{_terminal_name(expr.value)}[...]'"
                        ),
                    )
                }
            )
        return tags

    def _eval_comprehension(
        self,
        expr: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp,
    ) -> TagSet:
        for comp in expr.generators:
            iter_tags = self._eval(comp.iter)
            self._assign(comp.target, iter_tags, None)
            for condition in comp.ifs:
                self._eval(condition)
        if isinstance(expr, ast.DictComp):
            return self._eval(expr.key) | self._eval(expr.value)
        return self._eval(expr.elt)

    # -- calls: the interesting case ---------------------------------------

    def _eval_call(self, call: ast.Call) -> TagSet:
        model = self.model
        name = _callee_name(call.func)
        receiver = (
            self._eval(call.func.value)
            if isinstance(call.func, ast.Attribute)
            else _EMPTY
        )
        argument_exprs = [*call.args, *(kw.value for kw in call.keywords)]
        argument_tags = [self._eval(arg) for arg in argument_exprs]
        combined = receiver
        for tags in argument_tags:
            combined |= tags

        exact, _by_name = self.graph.resolve_call_tiers(
            self.info.module, self.info.class_name, call
        )

        # Sanitizer: kills PAYLOAD on Name arguments for everything after
        # this statement.  Exact-tier resolution only — a by-name match to
        # some other `verify` must not vouch (R501 convention).
        if exact & model.sanitizers:
            for arg in call.args:
                if isinstance(arg, ast.Name) and arg.id in self.env:
                    self._set(arg.id, _without(self.env[arg.id], PAYLOAD))
            return _EMPTY

        if name in model.payload_calls:
            return combined | frozenset(
                {
                    TaintTag(
                        kind=PAYLOAD,
                        origin=self.info.qname,
                        origin_line=call.lineno,
                        origin_note=f"wire decode result of {name}()",
                    )
                }
            )
        if name in model.secret_calls and model.secret_active(self.info.module):
            return combined | frozenset(
                {
                    TaintTag(
                        kind=SECRET,
                        origin=self.info.qname,
                        origin_line=call.lineno,
                        origin_note=f"key material from {name}()",
                    )
                }
            )
        if (
            name == "get"
            and isinstance(call.func, ast.Attribute)
            and _terminal_name(call.func.value) in model.exact_stores
        ):
            return combined | frozenset(
                {
                    TaintTag(
                        kind=EXACT,
                        origin=self.info.qname,
                        origin_line=call.lineno,
                        origin_note=(
                            f"exact-state read from "
                            f"'{_terminal_name(call.func.value)}.get()'"
                        ),
                    )
                }
            )

        if name in model.reducers:
            return _without(combined, EXACT)
        if name in model.declassifiers:
            return _without(combined, SECRET)

        self._check_call_sinks(call, name, argument_exprs, argument_tags)

        # Interprocedural: exact edges into analyzed functions propagate
        # argument taint in (recorded as call-outs for the fixpoint) and
        # return taint out.  Everything else — by-name guesses, class
        # constructors, stdlib — conservatively forwards argument taint.
        result: TagSet = _EMPTY
        analyzed_all = bool(exact)
        for target in sorted(exact):
            callee = self.graph.functions.get(target)
            if callee is None or target in model.exempt:
                analyzed_all = False
                continue
            result |= self.return_tags_of(target)
            if self.reporting:
                bound = bind_arguments(callee, call)
                param_tags = tuple(
                    (param, hopped)
                    for param, arg_expr in sorted(bound.items())
                    if (
                        hopped := frozenset(
                            tag.hopped(self.info.qname, call.lineno)
                            for tag in self._eval(arg_expr)
                        )
                    )
                )
                if param_tags:
                    self.result.calls_out.append(
                        CallOut(callee=target, line=call.lineno, param_tags=param_tags)
                    )
        if not analyzed_all:
            result |= combined
        return result

    def _check_call_sinks(
        self,
        call: ast.Call,
        name: str | None,
        argument_exprs: list[ast.expr],
        argument_tags: list[TagSet],
    ) -> None:
        if not self.reporting or name is None:
            return
        model = self.model
        flat: TagSet = _EMPTY
        for tags in argument_tags:
            flat |= tags
        if name in model.send_names or name in model.message_ctors:
            sink_kind = "transmit/encode call" if name in model.send_names else (
                "message constructor"
            )
            for tag in _only(flat, SECRET):
                if model.secret_active(self.info.module):
                    self._sink(
                        "S702", call.lineno, tag, f"{sink_kind} {name}()"
                    )
        if name.startswith(model.handler_prefixes):
            for tag in _only(flat, PAYLOAD):
                self._sink(
                    "S701", call.lineno, tag, f"dispatch into handler {name}()"
                )
        if name in model.auth_calls:
            for tag in _only(flat, PAYLOAD):
                self._sink(
                    "S701",
                    call.lineno,
                    tag,
                    f"authoritative-state mutation {name}()",
                )
        field_name = model.reduced_ctor_fields.get(name)
        if field_name is not None:
            for keyword in call.keywords:
                if keyword.arg == field_name:
                    for tag in _only(self._eval(keyword.value), EXACT):
                        self._sink(
                            "S703",
                            call.lineno,
                            tag,
                            f"reduced-resolution field {name}.{field_name}",
                        )

    def _sink(self, rule: str, line: int, tag: TaintTag, note: str) -> None:
        key = (rule, line, tag.identity())
        if key in self._seen_sinks:
            return
        self._seen_sinks.add(key)
        self.result.sinks.append(SinkHit(rule=rule, line=line, tag=tag, sink_note=note))


def analyze_function(
    graph: CallGraph,
    model: TaintModel,
    info: FunctionInfo,
    entry: Mapping[str, TagSet],
    return_tags_of: Callable[[str], TagSet],
) -> FunctionDataflow:
    """Interpret one function body; see the module docstring for semantics."""
    return _Interpreter(graph, model, info, entry, return_tags_of).run()
