"""M rules: message-footprint extraction for the protocol race detector.

The Watchmen protocol is driven entirely by message handlers — the
``_on_*`` / ``_handle_*`` methods dispatch reaches after envelope
verification.  The M family extracts each handler's **footprint**:

* which ``MESSAGE_TYPES`` it *consumes* (the message-typed parameter);
* which types it *emits* (transitively, along exact call edges only —
  constructor calls, plus relays of the consumed message through a
  transmit primitive);
* which *authoritative stores* it writes (``membership``, subscriber
  ``table``, ``reputation``, ``known``, ``recency``, ``projectiles``).

Three rules fall out of the table:

* **M801** — a registered message type has no reachable handler: the
  registry admits a type the dispatch layer silently drops.
* **M802** — a handler emits a type that is *progress-bearing* (its own
  handler writes membership / subscription-table / reputation state) yet
  absent from ``ACKABLE_TYPES``: losing one fire-and-forget datagram
  would stall the protocol, the exact class of bug the ack/retry layer
  exists to prevent.
* **M803** — two handlers write the same authoritative store and the
  pair carries no commutativity annotation: their delivery order is
  observable, so the interleaving model checker (:mod:`repro.mc`) must
  explore both orders.  A reviewed ``# repro-mc: commutes[store]``
  marker on both ``def`` lines (or the comment line directly above, the
  ``repro-taint: sanitizer`` convention) records that the writes are
  order-insensitive — last-writer-wins keyed by a frame stamp, or
  idempotent — *or* that the order-sensitivity is explicitly covered by
  an ``repro.mc`` scenario.

The table itself is the static half of the race detector: it is emitted
as JSON (``repro lint --footprints``) and seeds the dynamic layer's
partial-order reduction — two deliveries to the same node commute only
when their handlers' write-sets share no unannotated store.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.flow import TRANSMIT_NAMES
from repro.lint.taint import RECEIVE_ENTRY_NAMES
from repro.lint.violations import Violation

__all__ = [
    "COMMUTES_MARKER",
    "HANDLER_PREFIXES",
    "PROGRESS_STORES",
    "STORE_ATTRS",
    "STORE_OF_CALL",
    "HandlerFootprint",
    "FootprintTable",
    "extract_footprints",
    "run_footprint_rules",
]

#: Marker asserting reviewed order-insensitivity of a handler's writes to
#: one store: ``# repro-mc: commutes[known]`` (comma-separated for more).
COMMUTES_MARKER = "repro-mc: commutes"

_COMMUTES_PATTERN = re.compile(r"repro-mc:\s*commutes\[(?P<stores>[A-Za-z_ ,]+)\]")

HANDLER_PREFIXES = ("_on_", "_handle_")

#: ``self.<attr>.<method>(...)`` receivers that are authoritative stores
#: (used to disambiguate generic mutator names like ``record``).
STORE_ATTRS = frozenset(
    {"membership", "table", "recency", "projectiles", "reputation"}
)

#: Mutator method names that imply a store write wherever they appear in
#: a handler's exact closure (the S-family authoritative-sink vocabulary).
#: Reads (``current_roster``, ``interest_subscribers``, …) do not count:
#: only writes make delivery order observable.  ``heard_from`` is
#: deliberately absent: it is a monotone max-merge on the last-heard
#: frame (plus a rescind of pending suspicion), so any delivery order
#: converges to the same state — counting it would make every handler a
#: ``membership`` writer and drown the race signal in false pairs.
STORE_OF_CALL = {
    "note_own_proposal": "membership",
    "record_proposal": "membership",
    "apply_removals": "membership",
    "add_interest": "table",
    "add_vision": "table",
    "import_sets": "table",
    "submit_rating": "reputation",
    "submit_tag": "reputation",
}

#: Generic mutator names resolved through their receiver attribute:
#: ``self.recency.record(...)`` writes ``recency``; a bare ``record(...)``
#: on an untracked receiver is ignored.
_RECEIVER_WRITES = frozenset({"record"})

#: Subscripted/assigned ``self.<name>`` attributes that are stores.
_ATTRIBUTE_STORES = frozenset({"known", "roster"})

#: Stores whose writes advance the protocol (evictions, subscriptions,
#: accountability).  ``known``/``recency``/``projectiles`` refresh with
#: the next periodic update, so losing one write is self-healing.
PROGRESS_STORES = frozenset({"membership", "table", "reputation"})


@dataclass(slots=True)
class HandlerFootprint:
    """One handler's message footprint (see the module docstring)."""

    qname: str
    path: str
    line: int
    consumes: tuple[str, ...]
    emits: tuple[str, ...] = ()
    writes: dict[str, int] = field(default_factory=dict)  # store -> first line
    commutes: tuple[str, ...] = ()

    def to_json(self) -> dict[str, Any]:
        return {
            "qname": self.qname,
            "path": self.path,
            "line": self.line,
            "consumes": list(self.consumes),
            "emits": list(self.emits),
            "writes": dict(sorted(self.writes.items())),
            "commutes": list(self.commutes),
        }


@dataclass(slots=True)
class FootprintTable:
    """The full handler-footprint table, JSON-exportable.

    ``by_type`` is the collapsed view the model checker consumes: for a
    message type, the union of its handlers' write-sets, and the subset
    of those stores that *every* writing handler annotated commutative.
    """

    message_types: tuple[str, ...]
    ackable_types: tuple[str, ...]
    handlers: dict[str, HandlerFootprint]

    def by_type(self) -> dict[str, dict[str, list[str]]]:
        collapsed: dict[str, dict[str, list[str]]] = {}
        for name in self.message_types:
            writes: set[str] = set()
            non_commuting: set[str] = set()
            for fp in self.handlers.values():
                if name not in fp.consumes:
                    continue
                for store in fp.writes:
                    writes.add(store)
                    if store not in fp.commutes:
                        non_commuting.add(store)
            collapsed[name] = {
                "writes": sorted(writes),
                "commutes": sorted(writes - non_commuting),
            }
        return collapsed

    def to_json(self) -> dict[str, Any]:
        return {
            "version": 1,
            "message_types": list(self.message_types),
            "ackable_types": list(self.ackable_types),
            "handlers": {
                qname: fp.to_json() for qname, fp in sorted(self.handlers.items())
            },
            "by_type": self.by_type(),
        }


def _annotation_name(annotation: ast.expr | None) -> str | None:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.rsplit(".", 1)[-1]
    return None


def _dict_str_keys(tree: ast.Module, name: str) -> tuple[str, ...] | None:
    """String keys of a module-level ``NAME = {...}`` / annotated assign."""
    for node in tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and target.id == name
            and isinstance(value, ast.Dict)
        ):
            keys = []
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.append(key.value)
            return tuple(keys)
    return None


def _tuple_names(tree: ast.Module, name: str) -> tuple[str, ...] | None:
    """Element names of a module-level ``NAME = (A, B, ...)`` assignment."""
    for node in tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and target.id == name
            and isinstance(value, (ast.Tuple, ast.List))
        ):
            names = []
            for element in value.elts:
                if isinstance(element, ast.Name):
                    names.append(element.id)
                elif isinstance(element, ast.Attribute):
                    names.append(element.attr)
            return tuple(names)
    return None


def _registries(
    trees_by_rel: dict[str, ast.Module],
) -> tuple[tuple[str, ...], tuple[str, ...], str, int]:
    """(message type names, ackable names, registry path, registry line)."""
    message_types: tuple[str, ...] = ()
    ackable: tuple[str, ...] = ()
    registry_path = ""
    registry_line = 1
    for rel in sorted(trees_by_rel):
        tree = trees_by_rel[rel]
        found = _dict_str_keys(tree, "MESSAGE_TYPES")
        if found is not None and not message_types:
            message_types = found
            registry_path = rel
            for node in ast.walk(tree):
                if (
                    isinstance(node, (ast.Assign, ast.AnnAssign))
                    and any(
                        isinstance(t, ast.Name) and t.id == "MESSAGE_TYPES"
                        for t in (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                    )
                ):
                    registry_line = node.lineno
        found_ackable = _tuple_names(tree, "ACKABLE_TYPES")
        if found_ackable is not None and not ackable:
            ackable = found_ackable
    return message_types, ackable, registry_path, registry_line


def _marker_commutes(info: FunctionInfo, sources: dict[str, list[str]]) -> tuple[str, ...]:
    """Stores annotated commutative on the def line or the comment block above."""
    lines = sources.get(info.path)
    if lines is None or not 1 <= info.lineno <= len(lines):
        return ()
    candidates = [lines[info.lineno - 1]]
    index = info.lineno - 2
    while index >= 0 and lines[index].lstrip().startswith("#"):
        candidates.append(lines[index])
        index -= 1
    stores: list[str] = []
    for line in candidates:
        match = _COMMUTES_PATTERN.search(line)
        if match is not None:
            stores.extend(
                s.strip() for s in match.group("stores").split(",") if s.strip()
            )
    return tuple(dict.fromkeys(stores))


def _dispatch_boundary(name: str) -> bool:
    """Functions the closure walk must not descend into.

    A handler's footprint is *its own* synchronous work.  Receive entry
    points and other handlers are reachable through local-loopback sends
    (``_transmit`` to self delivers synchronously), but that re-entry
    processes a *different* message — the emitted one, which the emits
    set already records; folding the whole dispatch ladder into every
    handler would make all footprints identical and the M803/POR
    independence relation vacuous.
    """
    return name in RECEIVE_ENTRY_NAMES or name.startswith(HANDLER_PREFIXES)


def _exact_closure(graph: CallGraph, start: str) -> list[str]:
    """``start`` plus everything reachable along exact edges, cut at
    dispatch boundaries (see :func:`_dispatch_boundary`)."""
    seen = {start}
    order = [start]
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for callee in sorted(graph.exact_callees(current)):
            if callee in seen or callee not in graph.functions:
                continue
            if _dispatch_boundary(graph.functions[callee].name):
                continue
            seen.add(callee)
            order.append(callee)
            queue.append(callee)
    return order


def _callee_chain(func: ast.expr) -> tuple[str | None, str | None]:
    """(receiver attribute, method name) of an attribute call, if any."""
    if not isinstance(func, ast.Attribute):
        return None, None
    method = func.attr
    receiver = func.value
    if isinstance(receiver, ast.Attribute):
        return receiver.attr, method
    if isinstance(receiver, ast.Name):
        return receiver.id, method
    return None, method


def _scan_function(
    info: FunctionInfo,
    message_types: frozenset[str],
) -> tuple[dict[str, int], set[str], set[str]]:
    """(store writes with first line, constructed types, forwarded types).

    A *forward* is a transmit call whose first argument is a parameter
    annotated with a message type — the function relays a message it
    received.  Tracking the forwarded type precisely (instead of assuming
    any transmit may re-emit the consumed type) matters to the model
    checker: a handler that merely *responds* with a different type (the
    removal-proposal defense bursts PositionUpdates) must not be treated
    as able to cascade new captures of its own type.  Forwards through a
    local rebinding are missed; constructed-type tracking covers rebuilt
    messages, and relays in this codebase pass the parameter directly.
    """
    writes: dict[str, int] = {}
    constructed: set[str] = set()
    forwards: set[str] = set()
    param_types: dict[str, str] = {}
    spec = info.node.args
    for arg in (*spec.posonlyargs, *spec.args, *spec.kwonlyargs):
        annotation = _annotation_name(arg.annotation)
        if annotation in message_types:
            param_types[arg.arg] = annotation

    def note(store: str, line: int) -> None:
        if store not in writes:
            writes[store] = line

    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            receiver, method = _callee_chain(node.func)
            callee = (
                node.func.id if isinstance(node.func, ast.Name) else method
            )
            if callee in message_types:
                constructed.add(callee)
            if callee in TRANSMIT_NAMES and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) and first.id in param_types:
                    forwards.add(param_types[first.id])
            if method in STORE_OF_CALL:
                note(STORE_OF_CALL[method], node.lineno)
            elif (
                method in _RECEIVER_WRITES
                and receiver in STORE_ATTRS
            ):
                note(receiver, node.lineno)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                base = target
                if isinstance(base, ast.Subscript):
                    base = base.value
                if (
                    isinstance(base, ast.Attribute)
                    and base.attr in _ATTRIBUTE_STORES
                ):
                    note(base.attr, node.lineno)
    return writes, constructed, forwards


def _handler_consumes(
    info: FunctionInfo, message_types: frozenset[str]
) -> tuple[str, ...]:
    spec = info.node.args
    consumed = []
    for arg in (*spec.posonlyargs, *spec.args, *spec.kwonlyargs):
        annotation = _annotation_name(arg.annotation)
        if annotation in message_types:
            consumed.append(annotation)
    return tuple(dict.fromkeys(consumed))


def extract_footprints(
    graph: CallGraph,
    sources: dict[str, list[str]],
    trees_by_rel: dict[str, ast.Module],
) -> FootprintTable:
    """Build the handler-footprint table for one analyzed tree."""
    message_types, ackable, _, _ = _registries(trees_by_rel)
    type_set = frozenset(message_types)
    handlers: dict[str, HandlerFootprint] = {}
    for qname in sorted(graph.functions):
        info = graph.functions[qname]
        if not info.name.startswith(HANDLER_PREFIXES):
            continue
        consumes = _handler_consumes(info, type_set)
        if not consumes:
            continue
        writes: dict[str, int] = {}
        emits: set[str] = set()
        for reached in _exact_closure(graph, qname):
            fn_writes, constructed, fn_forwards = _scan_function(
                graph.functions[reached], type_set
            )
            for store, line in fn_writes.items():
                writes.setdefault(store, line if reached == qname else info.lineno)
            emits.update(constructed)
            emits.update(fn_forwards)
        handlers[qname] = HandlerFootprint(
            qname=qname,
            path=info.path,
            line=info.lineno,
            consumes=consumes,
            emits=tuple(sorted(emits)),
            writes=writes,
            commutes=_marker_commutes(info, sources),
        )
    return FootprintTable(
        message_types=message_types,
        ackable_types=ackable,
        handlers=handlers,
    )


def _reachable_handlers(graph: CallGraph) -> frozenset[str]:
    """Handlers reachable from a receive entry point along exact edges.

    When the analyzed tree declares no receive entry at all (synthetic
    fixtures), every handler counts as reachable — M801 then only checks
    registry/handler agreement.
    """
    entries = [
        qname
        for qname, info in graph.functions.items()
        if info.name in RECEIVE_ENTRY_NAMES
    ]
    if not entries:
        return frozenset(graph.functions)
    seen: set[str] = set(entries)
    queue = deque(entries)
    while queue:
        current = queue.popleft()
        for callee in graph.exact_callees(current):
            if callee not in seen and callee in graph.functions:
                seen.add(callee)
                queue.append(callee)
    return frozenset(seen)


def run_footprint_rules(
    graph: CallGraph,
    sources: dict[str, list[str]],
    trees_by_rel: dict[str, ast.Module],
) -> tuple[list[Violation], FootprintTable]:
    """Run M801/M802/M803 and return the footprint table alongside."""
    table = extract_footprints(graph, sources, trees_by_rel)
    violations: list[Violation] = []
    if not table.message_types:
        return violations, table
    message_types, ackable, registry_path, registry_line = _registries(trees_by_rel)
    reachable = _reachable_handlers(graph)

    def context_of(path: str, line: int) -> str:
        lines = sources.get(path, [])
        return lines[line - 1].strip() if 1 <= line <= len(lines) else ""

    # M801: a registered type no reachable handler consumes.
    handled: set[str] = set()
    for qname, fp in table.handlers.items():
        if qname in reachable:
            handled.update(fp.consumes)
    for name in message_types:
        if name not in handled:
            violations.append(
                Violation(
                    rule="M801",
                    path=registry_path,
                    line=registry_line,
                    message=(
                        f"message type `{name}` is registered in MESSAGE_TYPES "
                        "but no reachable _on_*/_handle_* handler consumes it "
                        "— the dispatch layer silently drops it"
                    ),
                    context=name,
                )
            )

    # M802: a handler emits a progress-bearing type outside ACKABLE_TYPES.
    progress_types = {
        name
        for name, fp_view in table.by_type().items()
        if any(store in PROGRESS_STORES for store in fp_view["writes"])
    }
    ackable_set = set(ackable)
    for qname in sorted(table.handlers):
        fp = table.handlers[qname]
        for emitted in fp.emits:
            if emitted in progress_types and emitted not in ackable_set:
                violations.append(
                    Violation(
                        rule="M802",
                        path=fp.path,
                        line=fp.line,
                        message=(
                            f"handler emits `{emitted}`, whose consumer writes "
                            "authoritative protocol state, but the type is not "
                            "in ACKABLE_TYPES — one lost datagram stalls the "
                            "protocol with no retry"
                        ),
                        context=context_of(fp.path, fp.line),
                    )
                )

    # M803: an unannotated pair of handlers racing on one store.
    writers_by_store: dict[str, list[HandlerFootprint]] = {}
    for qname in sorted(table.handlers):
        fp = table.handlers[qname]
        for store in fp.writes:
            writers_by_store.setdefault(store, []).append(fp)
    for store in sorted(writers_by_store):
        writers = writers_by_store[store]
        for i, first in enumerate(writers):
            for second in writers[i + 1:]:
                if store in first.commutes and store in second.commutes:
                    continue
                unannotated = [
                    fp.qname
                    for fp in (first, second)
                    if store not in fp.commutes
                ]
                violations.append(
                    Violation(
                        rule="M803",
                        path=first.path,
                        line=first.line,
                        message=(
                            f"handlers `{first.qname.rsplit('.', 1)[-1]}` and "
                            f"`{second.qname.rsplit('.', 1)[-1]}` both write "
                            f"authoritative store `{store}` with no "
                            f"commutativity annotation on "
                            f"{', '.join(n.rsplit('.', 1)[-1] for n in unannotated)} "
                            f"— delivery order is observable; annotate "
                            f"`# {COMMUTES_MARKER}[{store}]` after review or "
                            "cover the interleaving with an repro.mc scenario"
                        ),
                        context=context_of(first.path, first.line),
                    )
                )
    return violations, table
