"""Violation records and the rule catalog for ``repro lint``.

Every rule has a stable identifier (``D101`` …), a one-line summary, and
a longer rationale printed by ``repro lint --explain RULE``.  Rules come
in three families:

* **D (determinism)** — the proxy schedule and frame-by-frame replay are
  only verifiable when every honest node computes the identical result;
  wall-clock reads and module-state randomness silently break that.
* **P (protocol conformance)** — every wire-message dataclass must be
  immutable, dispatchable, wire-codable and size-modelled; a gap means a
  message type that crashes (or worse, is silently dropped) at runtime.
* **T (typing)** — full annotations are the substrate the staged
  ``mypy --strict`` gate builds on.
* **F (information flow)** — whole-program checks (over the call graph)
  that full-state data only flows to subscription-checked audiences and
  that reduced-resolution tiers never receive exact state.
* **R (routing)** — whole-program checks that all traffic leaves through
  the proxy layer and replies address the authenticated envelope source.
* **S (taint)** — interprocedural dataflow over the call graph: network
  payloads must pass signature verification before touching authoritative
  state, secrets must never flow to a send, and exact state must be
  reduced before entering a low-resolution tier.
* **C (config drift)** — paper constants are imported from
  ``core/config.py``, never re-stated as literals.
* **M (message footprints)** — whole-program extraction of each
  ``_on_*``/``_handle_*`` handler's footprint (consumed/emitted message
  types, authoritative-store writes): registered types must have a
  reachable handler, progress-bearing emissions must be ackable, and
  handler pairs racing on one store need a reviewed commutativity
  annotation; the table seeds the ``repro.mc`` model checker's
  partial-order reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Violation", "RuleInfo", "RULE_CATALOG", "family_of"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a rule tripped at a location."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    #: the stripped source line, used for line-drift-stable fingerprints
    context: str = ""

    def fingerprint(self) -> tuple[str, str, str]:
        """Identity that survives unrelated line-number drift."""
        return (self.rule, self.path, self.context)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True, slots=True)
class RuleInfo:
    """Catalog entry: summary for reports, rationale for ``--explain``."""

    rule: str
    summary: str
    rationale: str
    scope: str = "src/repro"
    examples: tuple[str, ...] = field(default_factory=tuple)


def family_of(rule: str) -> str:
    """``D101`` -> ``D`` (determinism), etc."""
    return rule[:1]


_CATALOG_ENTRIES = (
    RuleInfo(
        rule="D101",
        summary="wall-clock read inside deterministic code",
        rationale=(
            "Calls to time.time()/time.monotonic()/time.perf_counter()/"
            "time.process_time() and datetime.now()/utcnow()/today() read the "
            "host's clock, which differs across nodes and across replays.  "
            "Watchmen verification replays a peer's state machine and must "
            "reach bit-identical results, so all timing must come from the "
            "frame counter (config.frame_seconds * frame) or the event-queue "
            "clock.  Wall-clock reads are allowed only in the observability "
            "layer (repro.obs) and the CLI, which never feed protocol state."
        ),
        scope="src/repro/{core,game,crypto,net,cheats,replay}",
        examples=(
            "flags:  stamp = time.time()",
            "flags:  now = datetime.now()",
            "ok:     t = frame * config.frame_seconds",
        ),
    ),
    RuleInfo(
        rule="D102",
        summary="module-state random (import random / random.<fn>())",
        rationale=(
            "The random module's top-level functions share one hidden global "
            "Mersenne state; any library or test that touches it reorders "
            "every later draw, so two nodes replaying the same trace diverge. "
            "Everything must flow through an explicitly seeded "
            "random.Random(seed) instance that is owned and injected "
            "(simulator.py seeds one per controller, transport.py one per "
            "network).  The rule therefore bans `import random` itself in "
            "deterministic packages: import the class, not the module "
            "(`from random import Random`), so no module-state call can "
            "creep in."
        ),
        scope="src/repro/{core,game,crypto,net,cheats,replay}",
        examples=(
            "flags:  import random",
            "flags:  from random import choice",
            "ok:     from random import Random; rng = Random(seed)",
        ),
    ),
    RuleInfo(
        rule="D103",
        summary="float equality comparison (== / != with a float literal)",
        rationale=(
            "Two floating-point pipelines that differ only in summation order "
            "produce values that are equal-ish, not equal; an == against a "
            "non-zero float literal therefore makes control flow depend on "
            "rounding noise and breaks replay verification.  Compare against "
            "an epsilon (abs(a - b) <= eps) or use math.isclose.  Comparisons "
            "against literal 0.0 are exempt: exact-zero guards (division, "
            "zero-length vectors) are deterministic and idiomatic."
        ),
        scope="src/repro/{core,game,crypto,net,cheats,replay}",
        examples=(
            "flags:  if distance == 1.5:",
            "ok:     if denom == 0.0:",
            "ok:     if abs(distance - 1.5) <= 1e-9:",
        ),
    ),
    RuleInfo(
        rule="D104",
        summary="file I/O outside the allowlisted persistence boundaries",
        rationale=(
            "Deterministic code that opens, reads, or writes files couples a "
            "replay to host filesystem state the tape cannot capture, and "
            "gives protocol logic a side channel the verifier never sees.  "
            "Persistence is confined to the explicit boundary modules named "
            "in repro.lint.determinism.FILE_IO_ALLOWLIST (the trace "
            "serializer and the tape format/CLI); adding a file there is a "
            "reviewed decision, and inline ignores are deliberately not "
            "honoured for new I/O sites."
        ),
        scope="src/repro/{core,game,crypto,net,cheats,replay}",
        examples=(
            "flags:  with open(path) as handle:",
            "flags:  Path(out).write_text(report)",
            "ok:     rows = trace.to_json_rows()  # pure; caller persists",
        ),
    ),
    RuleInfo(
        rule="P201",
        summary="message dataclass not frozen=True, slots=True",
        rationale=(
            "Wire messages are signed at send time and verified at every "
            "hop; a mutable message lets code (or a cheat module) alter a "
            "field after signing, silently invalidating the signature model. "
            "frozen=True makes the dataclass hashable and tamper-evident in "
            "process; slots=True rejects stray attribute injection and keeps "
            "the per-message memory footprint flat at scale.  Every member "
            "of the GameMessage union must declare both."
        ),
        scope="core/messages.py (+ imported message definitions)",
        examples=(
            "flags:  @dataclass\\nclass KillClaim: ...",
            "ok:     @dataclass(frozen=True, slots=True)\\nclass KillClaim: ...",
        ),
    ),
    RuleInfo(
        rule="P202",
        summary="message type without a _dispatch_message handler branch",
        rationale=(
            "WatchmenNode._dispatch_message is the single demultiplexer for "
            "every delivered payload.  A GameMessage union member with no "
            "isinstance branch there is accepted by the type checker, "
            "signed, transmitted, metered — and then silently dropped on "
            "receipt, which reads exactly like the packet-suppression cheats "
            "the protocol exists to catch.  Add an explicit branch (and "
            "handler) for every member."
        ),
        scope="core/messages.py x core/node.py",
        examples=(
            "flags:  GameMessage member `PingProbe` with no isinstance(message, PingProbe)",
        ),
    ),
    RuleInfo(
        rule="P203",
        summary="message type without a wire codec registration",
        rationale=(
            "core/wire.py's MESSAGE_TYPES registry is the serialization "
            "boundary: encode_message/decode_message only round-trip types "
            "registered there.  An unregistered member works in-process (the "
            "simulated network passes Python objects) but would fail the "
            "moment traffic crosses a real socket or a trace is persisted, "
            "so the gap must be closed when the type is introduced, not "
            "when deployment finds it."
        ),
        scope="core/messages.py x core/wire.py",
        examples=(
            "flags:  GameMessage member `PingProbe` missing from wire.MESSAGE_TYPES",
        ),
    ),
    RuleInfo(
        rule="P204",
        summary="message type without a message_size_bits size model",
        rationale=(
            "Bandwidth is a headline result of the paper; message_size_bits "
            "is the single size oracle the transport charges.  A union "
            "member missing from its isinstance chain raises TypeError on "
            "the first send — at runtime, in whatever experiment first "
            "emits it.  The static check moves that failure to CI."
        ),
        scope="core/messages.py (message_size_bits)",
        examples=(
            "flags:  GameMessage member `PingProbe` not sized in message_size_bits",
        ),
    ),
    RuleInfo(
        rule="P205",
        summary="ACKABLE_TYPES registry inconsistent with the message union",
        rationale=(
            "Reliable delivery acks exactly the message kinds listed in "
            "messages.ACKABLE_TYPES.  A name there that is not a "
            "GameMessage union member is either a typo or a type the "
            "dispatcher will never see; AckMessage itself inside the "
            "registry would make every ack generate another ack, an "
            "infinite loop; and a repo that declares the registry without "
            "putting AckMessage in the union has a reliability layer whose "
            "control message cannot be dispatched, encoded, or sized.  The "
            "registry is only meaningful when all three agree."
        ),
        scope="core/messages.py (ACKABLE_TYPES x GameMessage)",
        examples=(
            "flags:  ACKABLE_TYPES = (KillClaim, AckMessage)",
            "flags:  ACKABLE_TYPES naming a class outside the GameMessage union",
            "ok:     ACKABLE_TYPES = (SubscriptionRequest, KillClaim, ...)",
        ),
    ),
    RuleInfo(
        rule="P206",
        summary="MESSAGE_TAGS out of lockstep with MESSAGE_TYPES",
        rationale=(
            "The binary codec frames every message with the one-byte tag "
            "MESSAGE_TAGS assigns to its type name.  The table is "
            "append-only protocol surface: recorded tapes store raw tag "
            "bytes, so a registered type with no tag cannot be framed, a "
            "tag for an unregistered name is dead surface that will be "
            "reused by accident, a duplicate tag makes decode ambiguous, "
            "and a tag outside 0..255 cannot be emitted as a single byte "
            "at all.  The table and MESSAGE_TYPES must list exactly the "
            "same names, with unique single-byte integer tags."
        ),
        scope="core/wire.py (MESSAGE_TAGS x MESSAGE_TYPES)",
        examples=(
            "flags:  MESSAGE_TYPES entry `PingProbe` missing from MESSAGE_TAGS",
            "flags:  two names sharing tag 7",
            "ok:     one unique 0..255 tag per registered type name",
        ),
    ),
    RuleInfo(
        rule="T301",
        summary="function missing parameter or return annotations",
        rationale=(
            "Full annotations are what lets mypy --strict verify the "
            "protocol statically (message payloads, codec field types, "
            "handler signatures).  Every function in src/repro must "
            "annotate every parameter (self/cls exempt) and its return "
            "type; __init__ returns None explicitly.  New modules should "
            "be added to the strict set in pyproject.toml as they land."
        ),
        scope="src/repro",
        examples=(
            "flags:  def upload(self, size): ...",
            "ok:     def upload(self, size: int) -> float: ...",
        ),
    ),
    RuleInfo(
        rule="F401",
        summary="full-state message sent without a subscription/interest gate",
        rationale=(
            "Watchmen's information asymmetry: IS-tier full-state updates "
            "(StateUpdate) may only reach peers admitted by the vision-based "
            "subscription check.  The rule finds every transmit-primitive "
            "call whose message argument is full-state-typed and requires "
            "the enclosing function to either consult a gate itself (any "
            "function of core/subscriptions.py, game/interest.py, or the "
            "ProxySchedule lookups) or be dominated by one — i.e. be "
            "unreachable from the tree's API surface except through a "
            "gate-calling function.  An ungated send is the maphack/ESP "
            "information-exposure cheat in first-party form.  The call "
            "graph cannot see dynamic dispatch or callables passed as "
            "values; route sends through the named primitives."
        ),
        scope="src/repro/{core,game} (whole-program, via callgraph.py)",
        examples=(
            "flags:  self._send_raw(me, peer, StateUpdate(...), size)  # no gate",
            "ok:     for s in table.interest_subscribers(frame): self._transmit(update, s)",
        ),
    ),
    RuleInfo(
        rule="F402",
        summary="reduced-resolution message built from unreduced exact state",
        rationale=(
            "VS and Others tiers get dead-reckoned guidance and 1 Hz "
            "position-only snapshots precisely so low-trust peers never "
            "hold exact position/velocity of players outside their IS.  A "
            "PositionUpdate.snapshot or GuidanceMessage.prediction built "
            "from a raw snapshot (instead of position_only()/"
            "predict_linear()/simulate_guidance() or a helper that "
            "transitively applies one) leaks exact state to the very tier "
            "the reduction exists to protect against."
        ),
        scope="src/repro/{core,game} (whole-program, via callgraph.py)",
        examples=(
            "flags:  PositionUpdate(..., snapshot=snapshot)",
            "ok:     PositionUpdate(..., snapshot=snapshot.position_only())",
            "ok:     GuidanceMessage(..., prediction=self._guidance_prediction(f, s))",
        ),
    ),
    RuleInfo(
        rule="R501",
        summary="transport send that does not traverse the proxy layer",
        rationale=(
            "Section III-B: all of a player's traffic flows through its "
            "proxies — that is what hides network identities and gives "
            "verification its vantage point.  The rule flags any "
            "4-argument (src, dst, payload, size) send-shaped call from "
            "core/node.py or game/* unless it is the sanctioned egress "
            "point (WatchmenNode._transmit_unfiltered) or the enclosing "
            "function has a call edge into core/proxy.py.  Everything "
            "else must go through WatchmenNode._transmit, which signs, "
            "applies the behaviour filter, and routes via the proxy "
            "schedule."
        ),
        scope="core/node.py + src/repro/game (whole-program)",
        examples=(
            "flags:  self._send_raw(self.player_id, peer, msg, size)  # in a handler",
            "ok:     self._transmit(message, destination)",
        ),
    ),
    RuleInfo(
        rule="R502",
        summary="handler replies to a payload sender id, not the envelope",
        rationale=(
            "The dispatcher hands every handler the authenticated envelope "
            "source (the transport-stamped src whose signature was just "
            "verified) alongside the payload.  message.sender_id inside "
            "the payload is attacker-controlled — the paper defeats "
            "spoofing exactly because a forged sender_id fails signature "
            "verification at the *receiver*; replying to the payload field "
            "instead lets a spoofer redirect protocol traffic (subscription "
            "confirms, handoffs) to a victim.  Reply to the src parameter."
        ),
        scope="dispatch handlers (_on_*/_handle_*/_dispatch_message/on_message)",
        examples=(
            "flags:  self._transmit(reply, message.sender_id)",
            "ok:     self._transmit(reply, src)",
        ),
    ),
    RuleInfo(
        rule="S701",
        summary="unsanitized network payload reaches an authoritative sink",
        rationale=(
            "The paper's whole trust model is one invariant: nothing a peer "
            "sent may influence authoritative state (the known/roster "
            "stores, membership proposals, subscription sets, reputation) "
            "or be dispatched to a handler until its envelope has passed "
            "signature verification.  The rule seeds taint at the receive "
            "entry points (message-typed parameters of on_message/receive/"
            "deliver and wire-decode results) and propagates it through "
            "assignments, attribute chains and exact call edges to a "
            "fixpoint; a verification call (_verify_envelope, "
            "signer.verify, verify_route, a verifiable-PRNG draw, or any "
            "function carrying the `# repro-taint: sanitizer` marker) "
            "kills the taint for everything after it.  Unlike the "
            "syntactic F/R rules this survives refactors that move "
            "dispatch away from verification — the violation message "
            "carries the full interprocedural witness path.  By-name call "
            "edges neither propagate taint nor grant sanitizer credit "
            "(the R501 evidence convention)."
        ),
        scope="src/repro/{core,game} sinks (whole-program propagation)",
        examples=(
            "flags:  on_message -> _dispatch_message -> _on_state_update "
            "with the _verify_envelope call deleted",
            "ok:     accepted = self._verify_envelope(src, message) "
            "before dispatch",
        ),
    ),
    RuleInfo(
        rule="S702",
        summary="secret key material flows to a send/encode sink",
        rationale=(
            "HMAC keys, the registry master seed and Schnorr secrets exist "
            "only to sign; any flow into a transmit primitive, the wire "
            "codec, or a message constructor field hands impersonation "
            "ability to every subscriber.  Taint enters at key_for() "
            "results and secret-attribute reads (.secret, .master_seed, "
            "._keys), survives derivation (bytes arithmetic, f-strings, "
            "container packing), and is cleared only by sign() — whose "
            "output is a MAC, deliberately one-way.  The crypto package "
            "itself is exempt: touching key material is its job; the rule "
            "polices everyone it lends keys to."
        ),
        scope="everything outside repro.crypto (whole-program propagation)",
        examples=(
            "flags:  self._transmit(DebugBlob(data=self.signer.registry"
            ".key_for(pid)), dst)",
            "ok:     envelope = self.signer.sign(self.player_id, message)",
        ),
    ),
    RuleInfo(
        rule="S703",
        summary="exact state reaches a reduced-resolution payload via dataflow",
        rationale=(
            "F402 checks the constructor expression syntactically; S703 "
            "generalizes it to dataflow: an AvatarSnapshot-typed value (or "
            "a read from the known store / a .snapshot field) is tracked "
            "through locals, tuples and exact call edges, and flagged if "
            "it lands in PositionUpdate.snapshot or "
            "GuidanceMessage.prediction unreduced.  Resolution reducers "
            "(position_only, predict_linear, simulate_guidance, quantize) "
            "clean their result, as does any component read "
            "(snapshot.position) — extracting a field IS the reduction.  "
            "This catches the helper-indirection case F402 cannot: "
            "build(s) -> PositionUpdate(snapshot=s) called with a raw "
            "snapshot."
        ),
        scope="src/repro/{core,game} sinks (whole-program propagation)",
        examples=(
            "flags:  def fan_out(s: AvatarSnapshot): return "
            "PositionUpdate(..., snapshot=s)",
            "ok:     PositionUpdate(..., snapshot=snapshot.position_only())",
        ),
    ),
    RuleInfo(
        rule="M801",
        summary="registered message type with no reachable handler",
        rationale=(
            "Every name in wire.MESSAGE_TYPES is decodable off the wire, so "
            "every name must also be consumed by an _on_*/_handle_* handler "
            "reachable (along exact call edges) from a receive entry point "
            "(on_message/receive/deliver/handle_datagram).  A type without "
            "one decodes fine and then falls through the dispatch chain's "
            "isinstance ladder — a silently dropped protocol message, the "
            "runtime twin of P202's missing-dispatch check.  Handlers are "
            "matched by their message-typed parameter annotation, so "
            "renaming a handler without updating the dispatch keeps "
            "flagging."
        ),
        scope="whole program (registry x handler footprints)",
        examples=(
            "flags:  MESSAGE_TYPES = {..., 'Ping': Ping}  # no _on_ping",
            "ok:     def _on_ping(self, msg: Ping) -> None: ...",
        ),
    ),
    RuleInfo(
        rule="M802",
        summary="progress-bearing message emitted outside ACKABLE_TYPES",
        rationale=(
            "A message type whose handler writes membership, subscriber-"
            "table or reputation state advances the protocol: losing one "
            "such datagram stalls an eviction round, orphans a "
            "subscription, or drops a kill judgement, and nothing "
            "re-sends it organically.  The ack/retry layer exists for "
            "exactly these low-rate critical messages, so any handler "
            "emitting such a type that is absent from ACKABLE_TYPES is "
            "relying on a lossless network.  Periodic state (known/"
            "recency/projectiles) is exempt — the next heartbeat repairs "
            "it, which is why StateUpdate stays fire-and-forget per the "
            "paper."
        ),
        scope="whole program (handler emissions x ACKABLE_TYPES)",
        examples=(
            "flags:  handler emits RemovalProposal; ACKABLE_TYPES omits it",
            "ok:     ACKABLE_TYPES = (..., RemovalProposal, ...)",
        ),
    ),
    RuleInfo(
        rule="M803",
        summary="two handlers race on one authoritative store, unannotated",
        rationale=(
            "When two handlers write the same authoritative store "
            "(membership, subscriber table, known, recency, reputation, "
            "projectiles), the node's state depends on their delivery "
            "order — precisely the nondeterminism a real (non-simulated) "
            "transport will introduce.  Each such pair must either be "
            "reviewed as order-insensitive (last-writer-wins keyed by "
            "frame stamp, idempotent mutation) and annotated with "
            "`# repro-mc: commutes[store]` on both def lines, or be "
            "covered by a repro.mc interleaving scenario.  The annotation "
            "also feeds the model checker's partial-order reduction: "
            "annotated pairs are not permuted, which is what keeps "
            "exhaustive exploration tractable."
        ),
        scope="whole program (handler write-sets)",
        examples=(
            "flags:  _on_a and _on_b both write self.known, no marker",
            "ok:     # repro-mc: commutes[known]  (on both def lines)",
        ),
    ),
    RuleInfo(
        rule="C601",
        summary="numeric literal duplicating a paper constant from core/config.py",
        rationale=(
            "core/config.py is the single source of the paper's magic "
            "numbers (50 ms frame, IS size 5, 40-frame proxy period, ±60° "
            "vision cone, 1 Hz tiers).  A re-stated literal keeps working "
            "until an experiment overrides the config and the copy "
            "silently diverges — the two halves of the protocol then run "
            "different papers.  The rule matches name AND value (a "
            "parameter default, dataclass field, or keyword argument whose "
            "name maps to a known constant and whose literal equals it), "
            "so same-value-different-meaning literals and deliberate "
            "overrides are not flagged.  `repro lint --fix` rewrites "
            "flagged literals to the imported constant and adds the "
            "import."
        ),
        scope="src/repro/{core,game,net}",
        examples=(
            "flags:  def position_at(self, frame: int, frame_seconds: float = 0.05):",
            "ok:     def position_at(self, frame: int, frame_seconds: float = FRAME_SECONDS):",
            "ok:     fall_damage_per_speed: float = 0.05  # same value, different meaning",
        ),
    ),
)

RULE_CATALOG: dict[str, RuleInfo] = {info.rule: info for info in _CATALOG_ENTRIES}
