"""P-family rules: the GameMessage union cross-referenced against its world.

A message type is only *done* when four artifacts agree:

1. its dataclass is ``frozen=True, slots=True``            (P201)
2. ``WatchmenNode._dispatch_message`` has a branch for it  (P202)
3. ``core/wire.py`` registers it in ``MESSAGE_TYPES``      (P203)
4. ``message_size_bits`` sizes it                          (P204)

P205 additionally cross-checks the reliable-delivery registry: every
name in ``ACKABLE_TYPES`` must be a union member, and ``AckMessage``
must be in the union but never in the registry (an ack that is itself
ackable would ack forever).  The rule is skipped entirely when the
module declares no ``ACKABLE_TYPES``.

P206 keeps the binary framing honest: ``wire.MESSAGE_TAGS`` must name
exactly the types ``MESSAGE_TYPES`` registers, with one unique integer
tag in 0..255 per name (the codec emits the tag as a single byte, and
committed tapes store it — drift or reuse orphans recorded traffic).
Skipped when the wire module declares no ``MESSAGE_TAGS``.

These are whole-repo checks, not per-file scans: the engine hands this
module the parsed ASTs of ``core/messages.py``, ``core/node.py`` and
``core/wire.py`` (paths are configurable so rule tests can run against
synthetic fixture trees).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.lint.violations import Violation

__all__ = ["ProtocolSources", "run_protocol_rules", "union_member_names"]


@dataclass(frozen=True, slots=True)
class ProtocolSources:
    """The three files the conformance rules cross-reference."""

    messages_path: Path
    node_path: Path
    wire_path: Path

    def exists(self) -> bool:
        return (
            self.messages_path.is_file()
            and self.node_path.is_file()
            and self.wire_path.is_file()
        )


def _parse(path: Path) -> ast.Module:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


def union_member_names(messages_tree: ast.Module, union_name: str = "GameMessage") -> list[str]:
    """Member class names of ``GameMessage = Union[...]`` (or A | B | ...)."""
    for node in messages_tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == union_name for t in targets
        ):
            continue
        assert value is not None
        return _union_members(value)
    return []


def _union_members(value: ast.expr) -> list[str]:
    # Union[A, B, ...] form
    if isinstance(value, ast.Subscript):
        inner = value.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return [e.id for e in elements if isinstance(e, ast.Name)]
    # A | B | C form
    names: list[str] = []

    def walk_or(node: ast.expr) -> None:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            walk_or(node.left)
            walk_or(node.right)
        elif isinstance(node, ast.Name):
            names.append(node.id)

    walk_or(value)
    return names


def _imported_module_of(messages_tree: ast.Module, name: str) -> str | None:
    """Which module a name was imported from (``from X import name``)."""
    for node in messages_tree.body:
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if (alias.asname or alias.name) == name:
                    return node.module
    return None


def _module_to_path(module: str, src_root: Path) -> Path | None:
    """``repro.core.membership`` -> ``<src_root>/repro/core/membership.py``."""
    candidate = src_root.joinpath(*module.split(".")).with_suffix(".py")
    return candidate if candidate.is_file() else None


def _find_classdef(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dataclass_flags(classdef: ast.ClassDef) -> tuple[bool, bool, bool]:
    """(is_dataclass, frozen, slots) from the decorator list."""
    for decorator in classdef.decorator_list:
        call = decorator if isinstance(decorator, ast.Call) else None
        target = call.func if call else decorator
        dotted = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if dotted != "dataclass":
            continue
        frozen = slots = False
        if call is not None:
            for keyword in call.keywords:
                if keyword.arg == "frozen" and isinstance(keyword.value, ast.Constant):
                    frozen = keyword.value.value is True
                if keyword.arg == "slots" and isinstance(keyword.value, ast.Constant):
                    slots = keyword.value.value is True
        return True, frozen, slots
    return False, False, False


def _isinstance_targets(func: ast.FunctionDef, subject: str | None = None) -> set[str]:
    """Class names X appearing as isinstance(<subject>, X) inside ``func``."""
    names: set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        if subject is not None:
            arg0 = node.args[0]
            if not (isinstance(arg0, ast.Name) and arg0.id == subject):
                continue
        arg1 = node.args[1]
        elements = arg1.elts if isinstance(arg1, ast.Tuple) else [arg1]
        names.update(e.id for e in elements if isinstance(e, ast.Name))
    return names


def _find_function(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    """A (possibly method) function def anywhere in the module."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _registry_names(wire_tree: ast.Module, registry_name: str = "MESSAGE_TYPES") -> set[str]:
    """Type names registered in wire.py's MESSAGE_TYPES dict literal."""
    for node in wire_tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == registry_name for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return set()
        names: set[str] = set()
        for key, val in zip(value.keys, value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                names.add(key.value)
            elif isinstance(val, ast.Name):
                names.add(val.id)
        return names
    return set()


def _dict_literal_assignment(
    tree: ast.Module, name: str
) -> tuple[list[tuple[ast.expr, ast.expr]], int] | None:
    """(key, value) expression pairs of ``name = {...}``, plus its line.

    Returns None when no such assignment exists (the rule that reads it
    must then skip — fixture trees predate the table), and an empty pair
    list when the assignment is not a dict literal.
    """
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == name for t in targets):
            continue
        assert value is not None
        if not isinstance(value, ast.Dict):
            return [], node.lineno
        return [
            (key, val)
            for key, val in zip(value.keys, value.values)
            if key is not None
        ], node.lineno
    return None


def _tuple_assignment(
    tree: ast.Module, name: str
) -> tuple[list[str], int] | None:
    """Names in a module-level ``name = (A, B, ...)`` tuple, plus its line.

    Returns None when no such assignment exists (the rule that reads it
    must then skip — older fixture trees predate the registry).
    """
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == name for t in targets):
            continue
        assert value is not None
        if not isinstance(value, ast.Tuple):
            return [], node.lineno
        return (
            [e.id for e in value.elts if isinstance(e, ast.Name)],
            node.lineno,
        )
    return None


def run_protocol_rules(sources: ProtocolSources, src_root: Path) -> list[Violation]:
    """All P-family checks across the messages/node/wire triple."""
    messages_tree = _parse(sources.messages_path)
    node_tree = _parse(sources.node_path)
    wire_tree = _parse(sources.wire_path)

    members = union_member_names(messages_tree)
    violations: list[Violation] = []
    rel_messages = sources.messages_path.as_posix()

    if not members:
        violations.append(
            Violation(
                rule="P202",
                path=rel_messages,
                line=1,
                message="no GameMessage union found in messages module",
                context="GameMessage",
            )
        )
        return violations

    # P201 — frozen/slots on every member's dataclass, wherever defined.
    for member in members:
        classdef = _find_classdef(messages_tree, member)
        defined_in = sources.messages_path
        tree = messages_tree
        if classdef is None:
            module = _imported_module_of(messages_tree, member)
            path = _module_to_path(module, src_root) if module else None
            if path is not None:
                tree = _parse(path)
                classdef = _find_classdef(tree, member)
                defined_in = path
        if classdef is None:
            violations.append(
                Violation(
                    rule="P201",
                    path=rel_messages,
                    line=1,
                    message=f"cannot locate class definition of union member `{member}`",
                    context=member,
                )
            )
            continue
        is_dc, frozen, slots = _dataclass_flags(classdef)
        if not (is_dc and frozen and slots):
            missing = (
                "not a dataclass"
                if not is_dc
                else "missing "
                + ", ".join(
                    flag
                    for flag, present in (("frozen=True", frozen), ("slots=True", slots))
                    if not present
                )
            )
            violations.append(
                Violation(
                    rule="P201",
                    path=defined_in.as_posix(),
                    line=classdef.lineno,
                    message=f"message `{member}` {missing}; wire messages must be immutable",
                    context=member,
                )
            )

    # P202 — a dispatch branch per member.
    dispatch = _find_function(node_tree, "_dispatch_message")
    if dispatch is None:
        violations.append(
            Violation(
                rule="P202",
                path=sources.node_path.as_posix(),
                line=1,
                message="node module has no _dispatch_message function",
                context="_dispatch_message",
            )
        )
    else:
        handled = _isinstance_targets(dispatch, subject="message")
        for member in members:
            if member not in handled:
                violations.append(
                    Violation(
                        rule="P202",
                        path=sources.node_path.as_posix(),
                        line=dispatch.lineno,
                        message=(
                            f"message `{member}` has no isinstance branch in "
                            "_dispatch_message; it would be silently dropped"
                        ),
                        context=member,
                    )
                )

    # P203 — a codec registration per member.
    registered = _registry_names(wire_tree)
    for member in members:
        if member not in registered:
            violations.append(
                Violation(
                    rule="P203",
                    path=sources.wire_path.as_posix(),
                    line=1,
                    message=(
                        f"message `{member}` is not registered in wire.MESSAGE_TYPES; "
                        "encode/decode round-trip is impossible"
                    ),
                    context=member,
                )
            )

    # P206 — the binary tag table tracks the codec registry in lockstep.
    rel_wire = sources.wire_path.as_posix()
    tags = _dict_literal_assignment(wire_tree, "MESSAGE_TAGS")
    if tags is not None and registered:
        pairs, lineno = tags
        tagged: dict[str, ast.expr] = {}
        for key, val in pairs:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                tagged[key.value] = val
        for name in sorted(registered - set(tagged)):
            violations.append(
                Violation(
                    rule="P206",
                    path=rel_wire,
                    line=lineno,
                    message=(
                        f"registered message `{name}` has no entry in "
                        "MESSAGE_TAGS; the binary codec cannot frame it"
                    ),
                    context=name,
                )
            )
        for name in sorted(set(tagged) - registered):
            violations.append(
                Violation(
                    rule="P206",
                    path=rel_wire,
                    line=lineno,
                    message=(
                        f"MESSAGE_TAGS entry `{name}` is not registered in "
                        "MESSAGE_TYPES; a dead tag invites accidental reuse"
                    ),
                    context=name,
                )
            )
        seen_tags: dict[int, str] = {}
        for name, val in tagged.items():
            if not (
                isinstance(val, ast.Constant)
                and type(val.value) is int
                and 0 <= val.value <= 255
            ):
                violations.append(
                    Violation(
                        rule="P206",
                        path=rel_wire,
                        line=val.lineno,
                        message=(
                            f"tag for `{name}` must be an integer literal in "
                            "0..255; the codec emits it as a single byte"
                        ),
                        context=name,
                    )
                )
                continue
            holder = seen_tags.setdefault(val.value, name)
            if holder != name:
                violations.append(
                    Violation(
                        rule="P206",
                        path=rel_wire,
                        line=val.lineno,
                        message=(
                            f"tag {val.value} is assigned to both `{holder}` "
                            f"and `{name}`; decode would be ambiguous"
                        ),
                        context=name,
                    )
                )

    # P204 — a size-model branch per member.
    sizer = _find_function(messages_tree, "message_size_bits")
    if sizer is None:
        violations.append(
            Violation(
                rule="P204",
                path=rel_messages,
                line=1,
                message="messages module has no message_size_bits function",
                context="message_size_bits",
            )
        )
    else:
        sized = _isinstance_targets(sizer)
        for member in members:
            if member not in sized:
                violations.append(
                    Violation(
                        rule="P204",
                        path=rel_messages,
                        line=sizer.lineno,
                        message=(
                            f"message `{member}` is not sized by message_size_bits; "
                            "first send would raise TypeError"
                        ),
                        context=member,
                    )
                )

    # P205 — the reliable-delivery registry agrees with the union.
    ackable = _tuple_assignment(messages_tree, "ACKABLE_TYPES")
    if ackable is not None:
        names, lineno = ackable
        for name in names:
            if name == "AckMessage":
                violations.append(
                    Violation(
                        rule="P205",
                        path=rel_messages,
                        line=lineno,
                        message=(
                            "AckMessage must not be in ACKABLE_TYPES: "
                            "acking an ack would loop forever"
                        ),
                        context="AckMessage",
                    )
                )
            elif name not in members:
                violations.append(
                    Violation(
                        rule="P205",
                        path=rel_messages,
                        line=lineno,
                        message=(
                            f"ACKABLE_TYPES entry `{name}` is not a "
                            "GameMessage union member; it can never be "
                            "dispatched, let alone acked"
                        ),
                        context=name,
                    )
                )
        if "AckMessage" not in members:
            violations.append(
                Violation(
                    rule="P205",
                    path=rel_messages,
                    line=lineno,
                    message=(
                        "module declares ACKABLE_TYPES but AckMessage is "
                        "not in the GameMessage union; the reliability "
                        "layer's own control message would be undeliverable"
                    ),
                    context="AckMessage",
                )
            )

    return violations
