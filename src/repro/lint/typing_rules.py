"""T-family rules: annotation completeness (the substrate of the mypy gate).

T301 is the structural half of the typing story: every function must
annotate every parameter and its return type so that ``mypy --strict``
(staged per-module in pyproject.toml) has something to check.  The rule is
purely syntactic — it does not judge whether the annotations are *right*;
that is mypy's job in CI.
"""

from __future__ import annotations

import ast

from repro.lint.violations import Violation

__all__ = ["run_typing_rules", "check_annotations"]

#: first parameters that never need annotations
_IMPLICIT_FIRST = {"self", "cls"}


def _line(source_lines: list[str], lineno: int) -> str:
    if 1 <= lineno <= len(source_lines):
        return source_lines[lineno - 1].strip()
    return ""


def _missing_parts(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    ordered = args.posonlyargs + args.args
    missing: list[str] = []
    for index, arg in enumerate(ordered):
        if index == 0 and arg.arg in _IMPLICIT_FIRST:
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    missing.extend(a.arg for a in args.kwonlyargs if a.annotation is None)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if func.returns is None:
        missing.append("return")
    return missing


def check_annotations(path: str, tree: ast.AST, source_lines: list[str]) -> list[Violation]:
    """T301: parameters or return type without annotations."""
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        missing = _missing_parts(node)
        if not missing:
            continue
        violations.append(
            Violation(
                rule="T301",
                path=path,
                line=node.lineno,
                message=(
                    f"`{node.name}` missing annotations: " + ", ".join(missing)
                ),
                context=f"def {node.name}",
            )
        )
    return violations


def run_typing_rules(path: str, tree: ast.AST, source_lines: list[str]) -> list[Violation]:
    """All T-family checks for one already-parsed file."""
    return check_annotations(path, tree, source_lines)
