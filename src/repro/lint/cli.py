"""``repro lint`` / ``python -m repro.lint`` — the analyzer's front end.

Exit codes mirror ``repro bench-diff``: 0 clean, 1 new violations,
2 usage errors (unknown rule, missing path, malformed baseline).

``--changed-only`` keeps the pre-commit loop fast as whole-program passes
accumulate: the per-file families (D/T) scan only files that differ from
``git merge-base HEAD origin/main`` (plus untracked files) — the fork
point, so upstream churn never widens the scan — while the cross-file and
whole-program families (P, F/R/C/S) still analyze the full tree — a call
graph over a subset would miss edges and lie.  When nothing under
``src/repro`` changed at all, the run short-circuits clean.  Fallback
semantics: outside a git work tree, or when ``origin/main`` is unknown
(fresh clone without the remote, detached CI checkout), the flag degrades
to a full scan — the safe direction — and says so on stderr.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

from repro.lint.baseline import write_baseline
from repro.lint.engine import LintConfig, LintReport, run_lint
from repro.lint.violations import RULE_CATALOG, family_of

__all__ = ["add_lint_arguments", "build_parser", "cmd_lint", "main"]

DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared between the standalone parser and the ``repro`` subcommand."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: <root>/src/repro)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (baseline + protocol files resolve under it)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline suppression file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every violation, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print a rule's rationale (e.g. --explain D102) and exit",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write violation counts as a repro.bench.v1 artifact "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule with its one-line summary and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        dest="output_format",
        help="violation output format: plain text (default) or GitHub "
        "Actions ::error annotations",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite C601 config-drift literals to their named constants "
        "(adds the core/config.py import) and exit",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        dest="changed_only",
        help="scan only files changed since the merge-base with "
        "origin/main (whole-program families still analyze the full "
        "tree); falls back to a full scan outside a git repo",
    )
    parser.add_argument(
        "--footprints",
        metavar="PATH",
        help="export the M-family handler footprint table as JSON "
        "('-' for stdout); the model checker seeds its partial-order "
        "reduction from this table",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism / protocol-conformance / typing static analysis",
    )
    add_lint_arguments(parser)
    return parser


def _explain(rule: str) -> int:
    info = RULE_CATALOG.get(rule.upper())
    if info is None:
        known = ", ".join(sorted(RULE_CATALOG))
        print(f"repro lint: unknown rule {rule!r} (known: {known})", file=sys.stderr)
        return 2
    print(f"{info.rule} — {info.summary}")
    print(f"scope: {info.scope}")
    print()
    print(info.rationale)
    if info.examples:
        print()
        for example in info.examples:
            print(f"  {example}")
    return 0


def _list_rules() -> int:
    for rule in sorted(RULE_CATALOG):
        info = RULE_CATALOG[rule]
        print(f"{rule}  {info.summary}")
    return 0


def _cmd_fix(root: Path) -> int:
    """Apply the C601 autofixer in place; returns a process exit code."""
    import ast

    from repro.lint.configdrift import (
        apply_fixes,
        extract_constants,
        find_drift_sites,
    )

    program_root = root / "src" / "repro"
    if not program_root.is_dir():
        print(f"repro lint: no src/repro under {root}", file=sys.stderr)
        return 2
    constants = extract_constants(program_root / "core" / "config.py")
    files: dict[str, ast.Module] = {}
    sources: dict[str, str] = {}
    for file in sorted(program_root.rglob("*.py")):
        rel = file.resolve().relative_to(root.resolve()).as_posix()
        source = file.read_text(encoding="utf-8")
        try:
            files[rel] = ast.parse(source)
        except SyntaxError:
            continue
        sources[rel] = source
    sites = find_drift_sites(files, constants)
    if not sites:
        print("repro lint --fix: nothing to rewrite")
        return 0
    for rel, new_source in sorted(apply_fixes(sites, sources).items()):
        (root / rel).write_text(new_source, encoding="utf-8")
        count = sum(1 for s in sites if s.path == rel)
        print(f"fixed {rel}: {count} literal(s) -> named constants")
    print(f"repro lint --fix: rewrote {len(sites)} literal(s)")
    return 0


def _git_lines(root: Path, *args: str) -> list[str] | None:
    """Run one git command under ``root``; None on any failure."""
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return [line.strip() for line in proc.stdout.splitlines() if line.strip()]


def changed_paths(root: Path) -> list[Path] | None:
    """Files under ``src/repro`` that this branch touched.

    Returns None when the diff cannot be computed (not a git work tree,
    or ``origin/main`` unknown) — the caller falls back to a full scan.
    The diff base is ``git merge-base HEAD origin/main``, not
    ``origin/main`` itself: diffing against the remote tip would count
    every file *other people* changed upstream since this branch forked,
    turning the fast pre-commit loop into a near-full scan on any busy
    repo.  The list combines ``git diff --name-only <base>`` (committed,
    staged and unstaged edits) with untracked files, so a brand-new
    module is linted before its first ``git add``.
    """
    if _git_lines(root, "rev-parse", "--is-inside-work-tree") is None:
        return None
    base_lines = _git_lines(root, "merge-base", "HEAD", "origin/main")
    if not base_lines:
        return None
    diffed = _git_lines(root, "diff", "--name-only", base_lines[0])
    if diffed is None:
        return None
    untracked = (
        _git_lines(root, "ls-files", "--others", "--exclude-standard") or []
    )
    changed: list[Path] = []
    seen: set[str] = set()
    for rel in [*diffed, *untracked]:
        if rel in seen:
            continue
        seen.add(rel)
        if not rel.endswith(".py") or not rel.startswith("src/repro/"):
            continue
        path = root / rel
        if path.is_file():  # deletions need no scan
            changed.append(path)
    return sorted(changed)


def _github_annotations(report: LintReport) -> str:
    lines = [
        f"::error file={v.path},line={v.line}::{v.rule} {v.message}"
        for v in sorted(
            report.violations, key=lambda v: (v.path, v.line, v.rule)
        )
    ]
    summary = (
        f"repro lint: {report.files_scanned} files, "
        f"{len(report.violations)} new violation(s), "
        f"{report.suppressed} baseline-suppressed"
    )
    return "\n".join([*lines, summary])


def _write_json_artifact(
    report: LintReport, path: str, wall_seconds: float | None = None
) -> None:
    # Deferred import: keeps `python -m repro.lint --explain ...` usable
    # even if the obs layer grows heavier dependencies someday.
    from repro.obs.emit import bench_row, write_bench_json

    metrics: dict[str, float] = {
        "violations.total": float(len(report.violations)),
        "violations.suppressed": float(report.suppressed),
        "files.scanned": float(report.files_scanned),
    }
    families = {family_of(rule) for rule in RULE_CATALOG}
    counts_by_family = report.counts_by_family()
    for family in sorted(families):
        metrics[f"violations.{family}"] = float(counts_by_family.get(family, 0))
    for rule, count in sorted(report.counts_by_rule().items()):
        metrics[f"violations.{rule}"] = float(count)
    if wall_seconds is not None:
        metrics["wall_seconds"] = wall_seconds
    rows = [bench_row(bench="lint", params={}, metrics=metrics)]
    # The gated cost row: baseline.json carries a `lint_wall` entry, so a
    # taint-pass blowup (wall time or fixpoint effort) fails bench-diff.
    if wall_seconds is not None:
        rows.append(
            bench_row(
                bench="lint_wall",
                params={},
                metrics={
                    "wall_seconds": wall_seconds,
                    "functions_analyzed": float(
                        report.taint_stats.functions_analyzed
                    ),
                    "fixpoint_iterations": float(
                        report.taint_stats.fixpoint_iterations
                    ),
                },
            )
        )
    if path == "-":
        import json

        print(json.dumps({"schema": "repro.bench.v1", "rows": rows}, indent=2,
                         sort_keys=True))
    else:
        write_bench_json(path, rows)


def cmd_lint(args: argparse.Namespace) -> int:
    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()

    root = Path(args.root)
    if not root.is_dir():
        print(f"repro lint: root is not a directory: {root}", file=sys.stderr)
        return 2
    if getattr(args, "fix", False):
        return _cmd_fix(root)
    baseline_path: Path | None
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"repro lint: baseline not found: {baseline_path}", file=sys.stderr)
            return 2
    else:
        default = root / DEFAULT_BASELINE
        baseline_path = default if default.is_file() else None

    paths = tuple(Path(p) for p in args.paths)
    if getattr(args, "changed_only", False):
        if paths:
            print(
                "repro lint: --changed-only and explicit paths are mutually "
                "exclusive",
                file=sys.stderr,
            )
            return 2
        changed = changed_paths(root)
        if changed is None:
            print(
                "repro lint: --changed-only needs a git work tree with "
                "origin/main; falling back to a full scan",
                file=sys.stderr,
            )
        elif not changed:
            print(
                "repro lint --changed-only: nothing under src/repro differs "
                "from origin/main"
            )
            if args.json:
                _write_json_artifact(LintReport(), args.json, wall_seconds=0.0)
            return 0
        else:
            paths = tuple(changed)

    config = LintConfig(
        root=root,
        paths=paths,
        baseline_path=baseline_path,
    )
    started = time.perf_counter()
    try:
        report = run_lint(config)
    except (FileNotFoundError, ValueError) as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    wall_seconds = time.perf_counter() - started

    if args.write_baseline:
        target = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
        write_baseline(target, report.all_violations)
        print(
            f"baseline: {len(report.all_violations)} violation(s) recorded "
            f"-> {target}"
        )
        return 0

    if getattr(args, "footprints", None):
        import json

        if report.footprints is None:
            print(
                "repro lint: no footprint table was produced (whole-program "
                "pass did not run)",
                file=sys.stderr,
            )
            return 2
        payload = json.dumps(
            report.footprints.to_json(), indent=2, sort_keys=True
        )
        if args.footprints == "-":
            print(payload)
        else:
            Path(args.footprints).write_text(payload + "\n", encoding="utf-8")

    if args.json:
        _write_json_artifact(report, args.json, wall_seconds=wall_seconds)
    if getattr(args, "output_format", "text") == "github":
        print(_github_annotations(report))
    else:
        print(report.render())
    return 1 if report.violations else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return cmd_lint(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
