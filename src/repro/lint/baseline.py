"""Baseline suppression: pre-existing violations are visible but allowed.

The committed baseline file records the fingerprints of violations that
predate a rule (or a rule's tightening).  ``repro lint`` subtracts the
baseline from its findings, so CI fails only on *new* violations, while
``--write-baseline`` regenerates the file — which must only ever shrink
in review.

Fingerprints are ``(rule, path, context)`` with a multiplicity count, so
unrelated edits that shift line numbers do not invalidate the baseline,
but adding a *second* identical violation on the same source line text
does fail the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.lint.violations import Violation

__all__ = [
    "BASELINE_SCHEMA",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "ratchet_regressions",
]

BASELINE_SCHEMA = "repro.lint-baseline.v1"


def load_baseline(path: Path) -> Counter[tuple[str, str, str]]:
    """Fingerprint -> allowed multiplicity; empty when the file is absent."""
    if not path.is_file():
        return Counter()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: malformed baseline JSON ({error})") from error
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: not a {BASELINE_SCHEMA} baseline file")
    entries = data.get("suppressions", [])
    baseline: Counter[tuple[str, str, str]] = Counter()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: baseline entry is not an object: {entry!r}")
        try:
            fingerprint = (entry["rule"], entry["path"], entry["context"])
        except KeyError as error:
            raise ValueError(f"{path}: baseline entry missing {error}") from error
        baseline[fingerprint] += int(entry.get("count", 1))
    return baseline


def write_baseline(path: Path, violations: list[Violation]) -> None:
    """Serialize current findings as the new baseline (sorted, counted)."""
    counts: Counter[tuple[str, str, str]] = Counter(
        v.fingerprint() for v in violations
    )
    suppressions = [
        {"rule": rule, "path": file_path, "context": context, "count": count}
        for (rule, file_path, context), count in sorted(counts.items())
    ]
    payload = {"schema": BASELINE_SCHEMA, "suppressions": suppressions}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    violations: list[Violation], baseline: Counter[tuple[str, str, str]]
) -> tuple[list[Violation], int]:
    """(new violations, how many findings the baseline suppressed).

    Each baseline entry absorbs up to ``count`` findings with the same
    fingerprint; anything beyond that is new and reported.
    """
    budget = Counter(baseline)
    fresh: list[Violation] = []
    suppressed = 0
    for violation in violations:
        fingerprint = violation.fingerprint()
        if budget[fingerprint] > 0:
            budget[fingerprint] -= 1
            suppressed += 1
        else:
            fresh.append(violation)
    return fresh, suppressed


def ratchet_regressions(old_path: Path, new_path: Path) -> list[str]:
    """Shrink-only gate: entries ``new`` has beyond ``old``, rendered.

    The baseline may lose entries (violations fixed) and may never gain
    any — neither new fingerprints nor a higher count for an existing
    one.  Returns a human-readable line per regression; empty means the
    ratchet holds.
    """
    old = load_baseline(old_path)
    new = load_baseline(new_path)
    regressions: list[str] = []
    for fingerprint, count in sorted(new.items()):
        allowed = old.get(fingerprint, 0)
        if count > allowed:
            rule, path, context = fingerprint
            regressions.append(
                f"{rule} {path} ({count} > {allowed} allowed): {context!r}"
            )
    return regressions


def _ratchet_main(argv: list[str] | None = None) -> int:
    """``python -m repro.lint.baseline OLD NEW`` — exit 1 on regression."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro.lint.baseline",
        description="fail if NEW baseline gained entries relative to OLD",
    )
    parser.add_argument("old", type=Path, help="reference baseline (e.g. origin/main)")
    parser.add_argument("new", type=Path, help="candidate baseline (working tree)")
    args = parser.parse_args(argv)
    try:
        regressions = ratchet_regressions(args.old, args.new)
    except ValueError as error:
        print(f"lint-baseline ratchet: {error}", file=sys.stderr)
        return 2
    if regressions:
        print("lint-baseline ratchet: baseline grew (it may only shrink):")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("lint-baseline ratchet: ok (no new suppressions)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(_ratchet_main())
