"""F rules: information-flow checks over the call graph.

Watchmen's core security property is *information asymmetry*: full-state
(IS-tier) data may only reach peers the vision-based subscription check
admitted, and everyone else gets reduced-resolution data (dead-reckoned
guidance, 1 Hz position-only snapshots).  A refactor that sends a
``StateUpdate`` to an unchecked audience, or stuffs an exact snapshot into
a guidance/position message, re-opens exactly the information-exposure
cheats of the paper's Table I — silently, because the code still runs.

* **F401** — a full-state message reaches a transmit primitive inside a
  function that neither consults a subscription/interest gate itself nor
  is dominated by one (i.e. it is reachable from the analyzed tree's API
  surface without passing through any gate-calling function).
* **F402** — a reduced-resolution message (``PositionUpdate`` /
  ``GuidanceMessage``) is built with a payload that did not pass through a
  dead-reckoning / quantization helper, leaking exact state to low-trust
  tiers.
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.violations import Violation

__all__ = ["run_flow_rules", "FULL_STATE_TYPES", "REDUCTION_HELPERS"]

#: Message types carrying full (IS-tier) state.
FULL_STATE_TYPES = frozenset({"StateUpdate", "FullUpdate"})

#: The transmit primitives a message can physically leave a node through.
TRANSMIT_NAMES = frozenset({"_transmit", "_transmit_unfiltered", "_send_raw", "send"})

#: Reduced-resolution message type -> the payload field that must be reduced.
REDUCED_MESSAGES = {"PositionUpdate": "snapshot", "GuidanceMessage": "prediction"}

#: Helpers that lower resolution before data leaves the IS tier.
REDUCTION_HELPERS = frozenset(
    {"position_only", "predict_linear", "simulate_guidance", "quantize", "quantized"}
)

#: Modules whose functions count as subscription/interest gates.
_GATE_MODULE_PREFIXES = ("repro.core.subscriptions.", "repro.game.interest.")
_GATE_CLASS_PREFIX = "repro.core.proxy.ProxySchedule."

#: Modules the F rules inspect (the protocol + game surface; the wire codec
#: and the message definitions themselves construct messages generically).
_SCOPE_PREFIXES = ("repro.core.", "repro.game.")
_SCOPE_EXCLUDED = ("repro.core.wire", "repro.core.messages", "repro.core.config")


def _in_scope(info: FunctionInfo) -> bool:
    if info.module in _SCOPE_EXCLUDED:
        return False
    return info.module.startswith(_SCOPE_PREFIXES) or info.module in (
        "repro.core",
        "repro.game",
    )


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _annotation_name(annotation: ast.expr | None) -> str | None:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.rsplit(".", 1)[-1]
    return None


def _full_state_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if _annotation_name(arg.annotation) in FULL_STATE_TYPES:
            names.add(arg.arg)
    return names


def _gate_qnames(graph: CallGraph) -> frozenset[str]:
    return frozenset(
        qname
        for qname in graph.functions
        if qname.startswith(_GATE_MODULE_PREFIXES)
        or qname.startswith(_GATE_CLASS_PREFIX)
    )


#: Raw 4-arg primitives (``src, destination, message, size``) carry the
#: payload in the third slot; the filtered ``_transmit`` wrappers lead with it.
_RAW_PRIMITIVES = frozenset({"_send_raw", "send"})


def _message_argument(call: ast.Call, callee: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == "message":
            return keyword.value
    index = 2 if callee in _RAW_PRIMITIVES else 0
    if len(call.args) > index:
        return call.args[index]
    return None


def _source_context(info: FunctionInfo, lines: list[str], lineno: int) -> str:
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


def run_flow_rules(
    graph: CallGraph, sources: dict[str, list[str]]
) -> list[Violation]:
    """Run F401/F402 over every in-scope function.

    ``sources`` maps repo-relative path -> source lines (for fingerprint
    context).
    """
    violations: list[Violation] = []
    gates = _gate_qnames(graph)
    gated = frozenset(
        qname for qname in graph.functions if graph.callees(qname) & gates
    )
    # Dominance approximation: anything NOT reachable from the API surface
    # while avoiding gate-calling functions is only ever entered through a
    # gate, so an ungated send inside it is still audience-checked upstream.
    exposed = graph.reachable_avoiding(graph.roots(), blocked=gated)

    reduction_qnames = frozenset(
        qname
        for qname, info in graph.functions.items()
        if info.name in REDUCTION_HELPERS
    )

    for qname, info in sorted(graph.functions.items()):
        if not _in_scope(info):
            continue
        lines = sources.get(info.path, [])
        violations.extend(
            _check_function_f401(graph, info, gated, exposed, lines)
        )
        violations.extend(
            _check_function_f402(graph, info, reduction_qnames, lines)
        )
    return violations


def _check_function_f401(
    graph: CallGraph,
    info: FunctionInfo,
    gated: frozenset[str],
    exposed: frozenset[str],
    lines: list[str],
) -> list[Violation]:
    full_state_vars = _full_state_params(info.node)
    violations: list[Violation] = []
    # Pass 1 (flow-insensitive, over-approximate): every name ever bound to
    # a full-state constructor counts, regardless of statement order.
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            ctor = _callee_name(node.value.func)
            if ctor in FULL_STATE_TYPES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        full_state_vars.add(target.id)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        callee = _callee_name(node.func)
        if callee not in TRANSMIT_NAMES:
            continue
        message = _message_argument(node, callee)
        if message is None:
            continue
        is_full_state = False
        if isinstance(message, ast.Call):
            is_full_state = _callee_name(message.func) in FULL_STATE_TYPES
        elif isinstance(message, ast.Name):
            is_full_state = message.id in full_state_vars
        if not is_full_state:
            continue
        if info.qname in gated:
            continue  # the sending function consults a subscription gate
        if info.qname not in exposed:
            continue  # only reachable through gate-calling callers
        violations.append(
            Violation(
                rule="F401",
                path=info.path,
                line=node.lineno,
                message=(
                    f"full-state message sent by {info.qname} without a "
                    "subscription/interest-set check on the path "
                    "(core/subscriptions.py or game/interest.py)"
                ),
                context=_source_context(info, lines, node.lineno),
            )
        )
    return violations


def _is_reduced_expr(
    graph: CallGraph,
    info: FunctionInfo,
    expr: ast.expr,
    reduced_vars: set[str],
    reduction_qnames: frozenset[str],
) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in reduced_vars
    if not isinstance(expr, ast.Call):
        return False
    name = _callee_name(expr.func)
    if name in REDUCTION_HELPERS:
        return True
    # A call into a function that itself (transitively) applies a
    # reduction helper — e.g. self._guidance_prediction -> predict_linear.
    for candidate in graph.resolve_call(info.module, info.class_name, expr):
        if candidate in reduction_qnames or graph.transitively_reaches(
            candidate, reduction_qnames
        ):
            return True
    return False


def _check_function_f402(
    graph: CallGraph,
    info: FunctionInfo,
    reduction_qnames: frozenset[str],
    lines: list[str],
) -> list[Violation]:
    violations: list[Violation] = []
    reduced_vars: set[str] = set()
    # Pass 1: names bound to reduced expressions (flow-insensitive).
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _is_reduced_expr(
                graph, info, node.value, reduced_vars, reduction_qnames
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        reduced_vars.add(target.id)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        ctor = _callee_name(node.func)
        payload_field = REDUCED_MESSAGES.get(ctor or "")
        if payload_field is None:
            continue
        payload = next(
            (kw.value for kw in node.keywords if kw.arg == payload_field), None
        )
        if payload is None:
            continue  # positional/absent: out of this rule's precision
        if _is_reduced_expr(graph, info, payload, reduced_vars, reduction_qnames):
            continue
        violations.append(
            Violation(
                rule="F402",
                path=info.path,
                line=node.lineno,
                message=(
                    f"{ctor}.{payload_field} built in {info.qname} without a "
                    "dead-reckoning/quantization helper "
                    f"({', '.join(sorted(REDUCTION_HELPERS))}) — exact state "
                    "would leak to a reduced-resolution tier"
                ),
                context=_source_context(info, lines, node.lineno),
            )
        )
    return violations
