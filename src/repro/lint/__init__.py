"""repro.lint — determinism & protocol-conformance static analysis.

The analyzer behind ``repro lint`` / ``python -m repro.lint``.  Pure
stdlib (``ast``); see ``docs/STATIC_ANALYSIS.md`` for the rule catalog
and the suppression workflow.
"""

from __future__ import annotations

from repro.lint.baseline import (
    BASELINE_SCHEMA,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import LintConfig, LintReport, run_lint
from repro.lint.violations import RULE_CATALOG, RuleInfo, Violation, family_of

__all__ = [
    "BASELINE_SCHEMA",
    "LintConfig",
    "LintReport",
    "RULE_CATALOG",
    "RuleInfo",
    "Violation",
    "apply_baseline",
    "family_of",
    "load_baseline",
    "run_lint",
    "write_baseline",
]
