"""S rules: trust-boundary taint analysis over the call graph.

The Watchmen invariant the S family guards (paper §III): nothing a peer
sent may influence authoritative state, membership, kill accounting or
reputation until its envelope has been verified — and key material must
never flow toward a send.  F401/F402 and R501/R502 check single functions
syntactically; the S rules track the *data* interprocedurally, so moving
dispatch one function away from verification (the exact refactor the
binary-codec and async-transport roadmap items will perform) no longer
slips through.

* **S701** — an unsanitized network payload (a ``GameMessage`` entering a
  receive entry point, or a wire-decode result) reaches an authoritative
  sink: a state-store write (``known``/``roster``), a membership/
  reputation/subscription mutation, or a ``_on_*``/``_handle_*`` dispatch
  handler — on some path with no ``_verify_envelope``/signature check.
* **S702** — secret material (signing keys, registry seeds) reaches a
  send/encode call or a message constructor.
* **S703** — exact full-resolution state reaches a reduced-resolution
  payload field (the dataflow generalization of F402).

Mechanics: :mod:`repro.lint.summaries` interprets one function at a time
(gen/kill over assignments, attribute chains, tuple unpacking, call
arguments/returns); this module seeds the trust-boundary sources, then
runs a worklist fixpoint pushing argument taint along **exact** call
edges (by-name edges are evidence-tier and propagate nothing, the R501
convention) and pulling return taint back.  Every finding carries the
full interprocedural witness path.

Sanitizers are recognized by qname (the built-in registry below) or by a
``# repro-taint: sanitizer`` marker comment on the ``def`` line — the
reviewed way to teach the analysis about a new verification primitive.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.flow import REDUCED_MESSAGES, REDUCTION_HELPERS, TRANSMIT_NAMES
from repro.lint.summaries import (
    EXACT,
    PAYLOAD,
    SECRET,
    SinkHit,
    TagSet,
    TaintModel,
    TaintTag,
    analyze_function,
)
from repro.lint.violations import Violation

__all__ = [
    "SANITIZER_QNAMES",
    "SANITIZER_MARKER",
    "RECEIVE_ENTRY_NAMES",
    "TaintStats",
    "build_model",
    "run_taint_rules",
]

#: Built-in verification primitives whose (exact-tier) call kills payload
#: taint on its arguments.  Extend in source with the marker comment, not
#: here: ``def verify_thing(...):  # repro-taint: sanitizer``.
SANITIZER_QNAMES = frozenset(
    {
        "repro.core.node.WatchmenNode._verify_envelope",
        "repro.crypto.signatures.HmacSigner.verify",
        "repro.crypto.signatures.SchnorrSigner.verify",
        "repro.core.proxy.ProxySchedule.verify_route",
        "repro.core.proxy.ProxySchedule.verify_proxy",
        "repro.crypto.prng.draw_uint",
        "repro.crypto.prng.VerifiablePrng.next_uint",
        "repro.crypto.prng.VerifiablePrng.uint_at",
        "repro.crypto.prng.VerifiablePrng.next_below",
        "repro.crypto.prng.VerifiablePrng.below_at",
    }
)

#: Marker comment that promotes a function to sanitizer status when it
#: appears on the ``def`` line (see docs/STATIC_ANALYSIS.md).
SANITIZER_MARKER = "repro-taint: sanitizer"

#: Function names that accept traffic off the wire; their message-typed
#: parameters are the payload trust boundary.
RECEIVE_ENTRY_NAMES = frozenset({"on_message", "receive", "deliver", "handle_datagram"})

_SECRET_ATTRS = frozenset({"secret", "master_seed", "_key", "_keys"})
_SECRET_CALLS = frozenset({"key_for"})
_PAYLOAD_CALLS = frozenset({"decode_message", "decode_message_bytes"})
#: Encode primitives: handing a secret to the wire codec is a send.
_ENCODE_CALLS = frozenset({"encode_message", "encode_message_bytes"})
_EXACT_ATTRS = frozenset({"snapshot", "last_snapshot"})
_EXACT_STORES = frozenset({"known"})
_EXACT_PARAM_TYPES = frozenset({"AvatarSnapshot"})
_DECLASSIFIERS = frozenset({"sign"})
_AUTH_CALLS = frozenset(
    {
        "heard_from",
        "note_own_proposal",
        "record_proposal",
        "apply_removals",
        "add_interest",
        "add_vision",
        "import_sets",
        "submit_rating",
        "submit_tag",
        "report",
        "record_frame",
    }
)
_AUTH_STORES = frozenset({"known", "roster"})
_HANDLER_PREFIXES = ("_on_", "_handle_")
_SECRET_EXEMPT_PREFIXES = ("repro.crypto",)

#: Findings are reported for the protocol + game surface, mirroring the F
#: rules; propagation still crosses the whole tree.
_SCOPE_PREFIXES = ("repro.core.", "repro.game.")
_SCOPE_EXCLUDED = ("repro.core.wire", "repro.core.messages", "repro.core.config")

#: Worklist visits per function before the fixpoint bails out; generous —
#: real convergence is 2–3 visits per function on this tree.
_VISITS_PER_FUNCTION = 20


@dataclass(frozen=True, slots=True)
class TaintStats:
    """Fixpoint effort counters, surfaced in the ``lint_wall`` bench row."""

    functions_analyzed: int
    fixpoint_iterations: int


def _annotation_name(annotation: ast.expr | None) -> str | None:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.rsplit(".", 1)[-1]
    return None


def _marker_sanitizers(
    graph: CallGraph, sources: dict[str, list[str]]
) -> frozenset[str]:
    """Functions marked as sanitizers in source.

    The marker counts on the ``def`` line itself or on a comment line
    directly above it (long signatures leave no room on the def line).
    """
    marked: set[str] = set()
    for qname, info in graph.functions.items():
        lines = sources.get(info.path)
        if lines is None or not 1 <= info.lineno <= len(lines):
            continue
        candidates = [lines[info.lineno - 1]]
        if info.lineno >= 2 and lines[info.lineno - 2].lstrip().startswith("#"):
            candidates.append(lines[info.lineno - 2])
        if any(SANITIZER_MARKER in line for line in candidates):
            marked.add(qname)
    return frozenset(marked)


def build_model(graph: CallGraph, sources: dict[str, list[str]]) -> TaintModel:
    """The concrete source/sanitizer/sink tables for this tree."""
    sanitizers = SANITIZER_QNAMES | _marker_sanitizers(graph, sources)
    reducer_qnames = frozenset(
        qname
        for qname, info in graph.functions.items()
        if info.name in REDUCTION_HELPERS
    )
    message_ctors = graph.classes_in("repro.core.messages")
    return TaintModel(
        sanitizers=sanitizers,
        reducers=REDUCTION_HELPERS,
        declassifiers=_DECLASSIFIERS,
        secret_attrs=_SECRET_ATTRS,
        secret_calls=_SECRET_CALLS,
        payload_calls=_PAYLOAD_CALLS,
        exact_attrs=_EXACT_ATTRS,
        exact_stores=_EXACT_STORES,
        exact_param_types=_EXACT_PARAM_TYPES,
        send_names=TRANSMIT_NAMES | _ENCODE_CALLS,
        message_ctors=message_ctors,
        reduced_ctor_fields=dict(REDUCED_MESSAGES),
        auth_calls=_AUTH_CALLS,
        auth_stores=_AUTH_STORES,
        handler_prefixes=_HANDLER_PREFIXES,
        secret_exempt_prefixes=_SECRET_EXEMPT_PREFIXES,
        exempt=sanitizers | reducer_qnames,
    )


def _seed_entries(
    graph: CallGraph, model: TaintModel
) -> dict[str, dict[str, TagSet]]:
    """Trust-boundary parameters: payload at receive entries, exact state.

    ``payload`` seeds only functions *named* like receive entry points —
    handlers get their taint interprocedurally (through an unsanitized
    dispatch chain), which is exactly the property S701 checks.  ``exact``
    seeds every ``AvatarSnapshot``-typed parameter: exactness is a fact
    about the value, not about who passed it.
    """
    payload_types = frozenset({"GameMessage"}) | model.message_ctors
    entries: dict[str, dict[str, TagSet]] = {}
    for qname, info in graph.functions.items():
        if qname in model.exempt:
            continue
        params: dict[str, TagSet] = {}
        spec = info.node.args
        for arg in (*spec.posonlyargs, *spec.args, *spec.kwonlyargs):
            annotation = _annotation_name(arg.annotation)
            if info.name in RECEIVE_ENTRY_NAMES and annotation in payload_types:
                params[arg.arg] = frozenset(
                    {
                        TaintTag(
                            kind=PAYLOAD,
                            origin=qname,
                            origin_line=arg.lineno,
                            origin_note=(
                                f"network payload parameter '{arg.arg}'"
                            ),
                        )
                    }
                )
            elif annotation in model.exact_param_types:
                params[arg.arg] = frozenset(
                    {
                        TaintTag(
                            kind=EXACT,
                            origin=qname,
                            origin_line=arg.lineno,
                            origin_note=f"exact-state parameter '{arg.arg}'",
                        )
                    }
                )
        if params:
            entries[qname] = params
    return entries


def _merge_tags(existing: TagSet, incoming: TagSet) -> tuple[TagSet, bool]:
    """Union by tag identity; the first-arriving chain is kept (shortest)."""
    have = {tag.identity() for tag in existing}
    fresh = frozenset(tag for tag in incoming if tag.identity() not in have)
    if not fresh:
        return existing, False
    return existing | fresh, True


def _in_scope(module: str) -> bool:
    if module in _SCOPE_EXCLUDED:
        return False
    return module.startswith(_SCOPE_PREFIXES) or module in ("repro.core", "repro.game")


def _short(qname: str) -> str:
    return qname[len("repro."):] if qname.startswith("repro.") else qname


_RULE_BLURBS = {
    "S701": "unsanitized network payload reaches an authoritative sink "
    "(no signature/envelope verification on this path)",
    "S702": "secret key material flows to a wire-visible sink",
    "S703": "exact full-resolution state flows into a reduced-resolution payload",
}


def _witness(hit: SinkHit, info: FunctionInfo) -> str:
    """Human-readable interprocedural path: source, hops, sink."""
    tag = hit.tag
    steps = [f"{tag.origin_note} in {_short(tag.origin)}:{tag.origin_line}"]
    steps.extend(
        f"passed on by {_short(caller)}:{line}" for caller, line in tag.chain
    )
    steps.append(f"{hit.sink_note} in {_short(info.qname)}:{hit.line}")
    return " -> ".join(steps)


def _render(
    graph: CallGraph,
    sinks_by_function: dict[str, list[SinkHit]],
    sources: dict[str, list[str]],
    model: TaintModel,
) -> list[Violation]:
    best: dict[tuple[str, str, int], tuple[tuple[int, str, int], SinkHit, FunctionInfo]] = {}
    for qname, hits in sinks_by_function.items():
        info = graph.functions[qname]
        for hit in hits:
            if hit.rule in ("S701", "S703") and not _in_scope(info.module):
                continue
            if hit.rule == "S702" and not model.secret_active(info.module):
                continue
            key = (hit.rule, info.path, hit.line)
            rank = (len(hit.tag.chain), hit.tag.origin, hit.tag.origin_line)
            current = best.get(key)
            if current is None or rank < current[0]:
                best[key] = (rank, hit, info)
    violations: list[Violation] = []
    for (rule, path, line), (_, hit, info) in sorted(best.items()):
        lines = sources.get(path, [])
        context = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
        violations.append(
            Violation(
                rule=rule,
                path=path,
                line=line,
                message=f"{_RULE_BLURBS[rule]}; taint path: {_witness(hit, info)}",
                context=context,
            )
        )
    return violations


def run_taint_rules(
    graph: CallGraph, sources: dict[str, list[str]]
) -> tuple[list[Violation], TaintStats]:
    """Run S701/S702/S703 to fixpoint over the whole program.

    ``sources`` maps repo-relative path -> source lines (marker scan and
    fingerprint context, as for the other whole-program families).
    """
    model = build_model(graph, sources)
    entries = _seed_entries(graph, model)
    returns: dict[str, TagSet] = {}
    empty: TagSet = frozenset()

    def return_tags_of(qname: str) -> TagSet:
        return returns.get(qname, empty)

    pending = deque(sorted(graph.functions))
    queued = set(pending)
    sinks_by_function: dict[str, list[SinkHit]] = {}
    analyzed: set[str] = set()
    iterations = 0
    cap = _VISITS_PER_FUNCTION * max(1, len(graph.functions))

    while pending and iterations < cap:
        qname = pending.popleft()
        queued.discard(qname)
        if qname in model.exempt:
            continue
        info = graph.functions[qname]
        iterations += 1
        analyzed.add(qname)
        result = analyze_function(
            graph, model, info, entries.get(qname, {}), return_tags_of
        )
        sinks_by_function[qname] = result.sinks

        for call_out in result.calls_out:
            if call_out.callee in model.exempt:
                continue
            target_entry = entries.setdefault(call_out.callee, {})
            changed = False
            for param, tags in call_out.param_tags:
                merged, grew = _merge_tags(target_entry.get(param, empty), tags)
                if grew:
                    target_entry[param] = merged
                    changed = True
            if changed and call_out.callee not in queued:
                pending.append(call_out.callee)
                queued.add(call_out.callee)

        merged_returns, grew = _merge_tags(
            returns.get(qname, empty), frozenset(result.return_tags)
        )
        if grew:
            returns[qname] = merged_returns
            for caller in sorted(graph.callers(qname)):
                if caller not in queued and caller not in model.exempt:
                    pending.append(caller)
                    queued.add(caller)

    violations = _render(graph, sinks_by_function, sources, model)
    return violations, TaintStats(
        functions_analyzed=len(analyzed), fixpoint_iterations=iterations
    )
