"""D-family rules: nondeterminism that breaks replay verification.

All rules are per-file AST scans over the deterministic packages
(``src/repro/{core,game,crypto,net,cheats,replay}``); the observability
layer and the CLI are deliberately out of scope (they read wall clocks on
purpose and never feed protocol state).
"""

from __future__ import annotations

import ast

from repro.lint.violations import Violation

__all__ = [
    "DETERMINISTIC_PACKAGES",
    "FILE_IO_ALLOWLIST",
    "check_wall_clock",
    "check_module_random",
    "check_float_equality",
    "check_file_io",
    "run_determinism_rules",
]

#: Sub-packages of repro whose code must replay bit-identically.
DETERMINISTIC_PACKAGES = ("core", "game", "crypto", "net", "cheats", "replay")

#: Files allowed to touch the filesystem despite living in deterministic
#: scope: the explicit persistence boundaries.  Everything else in scope
#: must stay pure so a replayed run cannot observe host filesystem state.
#: Additions here are a reviewed decision, not an inline ignore.
FILE_IO_ALLOWLIST = frozenset(
    {
        "src/repro/game/trace.py",  # trace JSONL save/load
        "src/repro/replay/tape.py",  # .tape read/write
        "src/repro/replay/cli.py",  # tape CLI output + divergence reports
    }
)

#: Method names whose call is a filesystem read/write wherever it appears
#: (Path methods and the io.open family share them).
_FILE_IO_ATTRS = {
    "open",
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
    "unlink",
    "mkdir",
    "rename",
}

#: Functions whose call reads the host clock.
_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: random.Random / random.SystemRandom are explicit-state classes; every
#: other public name on the module draws from the hidden global state.
_RANDOM_CLASS_NAMES = {"Random", "SystemRandom"}


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _line(source_lines: list[str], lineno: int) -> str:
    if 1 <= lineno <= len(source_lines):
        return source_lines[lineno - 1].strip()
    return ""


def check_wall_clock(path: str, tree: ast.AST, source_lines: list[str]) -> list[Violation]:
    """D101: time.time()/datetime.now() style host-clock reads."""
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head = dotted.split(".")
        # matches time.time(), datetime.now(), datetime.datetime.now() ...
        tail = tuple(head[-2:]) if len(head) >= 2 else None
        if tail in _WALL_CLOCK_CALLS:
            violations.append(
                Violation(
                    rule="D101",
                    path=path,
                    line=node.lineno,
                    message=(
                        f"wall-clock read `{dotted}()` in deterministic code; "
                        "derive time from the frame counter or event queue"
                    ),
                    context=_line(source_lines, node.lineno),
                )
            )
    return violations


def check_module_random(path: str, tree: ast.AST, source_lines: list[str]) -> list[Violation]:
    """D102: `import random` / `from random import <module-state fn>`."""
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    violations.append(
                        Violation(
                            rule="D102",
                            path=path,
                            line=node.lineno,
                            message=(
                                "`import random` exposes the module's hidden "
                                "global state; use `from random import Random` "
                                "and inject a seeded instance"
                            ),
                            context=_line(source_lines, node.lineno),
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module != "random" or node.level:
                continue
            for alias in node.names:
                if alias.name not in _RANDOM_CLASS_NAMES:
                    violations.append(
                        Violation(
                            rule="D102",
                            path=path,
                            line=node.lineno,
                            message=(
                                f"`from random import {alias.name}` draws from "
                                "module-global state; import Random and seed "
                                "an instance instead"
                            ),
                            context=_line(source_lines, node.lineno),
                        )
                    )
    return violations


def check_float_equality(path: str, tree: ast.AST, source_lines: list[str]) -> list[Violation]:
    """D103: == / != against a non-zero float literal."""

    def is_nonzero_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value != 0.0
        )

    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if is_nonzero_float_literal(left) or is_nonzero_float_literal(right):
                violations.append(
                    Violation(
                        rule="D103",
                        path=path,
                        line=node.lineno,
                        message=(
                            "exact equality against a float literal depends on "
                            "rounding noise; compare with an epsilon or "
                            "math.isclose (== 0.0 guards are exempt)"
                        ),
                        context=_line(source_lines, node.lineno),
                    )
                )
    return violations


def check_file_io(path: str, tree: ast.AST, source_lines: list[str]) -> list[Violation]:
    """D104: filesystem access outside the allowlisted persistence files.

    Protocol code that reads or writes the host filesystem makes a replay
    depend on machine state the tape cannot capture.  Persistence lives
    only in the files named in :data:`FILE_IO_ALLOWLIST` — extending that
    list is an explicit, reviewed decision (no inline ignores).
    """
    if path in FILE_IO_ALLOWLIST:
        return []
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name: str | None = None
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            name = "open"
        elif isinstance(node.func, ast.Attribute) and node.func.attr in _FILE_IO_ATTRS:
            name = node.func.attr
        if name is None:
            continue
        violations.append(
            Violation(
                rule="D104",
                path=path,
                line=node.lineno,
                message=(
                    f"file I/O `{name}()` in deterministic code; persistence "
                    "belongs in an allowlisted boundary module (see "
                    "repro.lint.determinism.FILE_IO_ALLOWLIST)"
                ),
                context=_line(source_lines, node.lineno),
            )
        )
    return violations


def run_determinism_rules(
    path: str, tree: ast.AST, source_lines: list[str]
) -> list[Violation]:
    """All D-family checks for one already-parsed file."""
    violations: list[Violation] = []
    violations.extend(check_wall_clock(path, tree, source_lines))
    violations.extend(check_module_random(path, tree, source_lines))
    violations.extend(check_float_equality(path, tree, source_lines))
    violations.extend(check_file_io(path, tree, source_lines))
    return violations
