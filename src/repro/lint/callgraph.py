"""Module-qualified call graph over ``src/repro`` for whole-program rules.

The F (information-flow) and R (routing) families need to answer questions
no per-file pass can: *does the function containing this send ever consult
the subscription tables?* / *can this function be reached without passing
through the proxy layer?*  This module builds the supporting structure
from already-parsed ASTs:

* every module-level function and class method becomes a node, keyed by
  its qualified name (``repro.core.node.WatchmenNode._transmit``);
* every ``ast.Call`` inside a function body becomes one or more edges.

Call resolution is deliberately conservative, in three tiers:

1. **Exact** — bare names resolve through the module's own definitions and
   its ``import``/``from … import`` table; ``self.method(...)`` resolves
   through the enclosing class; ``self.attr.method(...)`` resolves when
   ``__init__`` (or a class-level annotation) pins ``attr`` to a known
   class — e.g. ``self.signer = signer`` with ``signer: HmacSigner``.
2. **By name** (CHA-lite) — an attribute call ``obj.frobnicate(...)``
   whose receiver type is unknown resolves to *every* known function named
   ``frobnicate``.  This over-approximates (extra edges, never missing
   ones), which is the safe direction for "is there a gate on this path"
   questions.
3. **Unresolved** — calls into the stdlib or other unknowns produce no
   edge.

Known blind spots (see docs/STATIC_ANALYSIS.md): dynamic dispatch through
``getattr``/dicts of callables, monkeypatching at runtime, and callables
passed as values (``send=self.network.send``) are invisible to the graph.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "FunctionInfo",
    "ParsedModule",
    "CallGraph",
    "CallSite",
    "bind_arguments",
    "build_call_graph",
    "module_name_for",
]


@dataclass(frozen=True, slots=True)
class ParsedModule:
    """One source module handed to the graph builder."""

    module: str  # dotted name, e.g. "repro.core.node"
    path: str  # repo-relative posix path
    tree: ast.Module


@dataclass(frozen=True, slots=True)
class FunctionInfo:
    """One call-graph node: a module-level function or a class method."""

    qname: str
    module: str
    name: str
    class_name: str | None
    path: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True, slots=True)
class CallSite:
    """One ``ast.Call`` inside a function body, with its resolved targets.

    ``exact`` carries tier-1 resolutions (evidence-grade); ``by_name``
    carries the CHA-lite same-name guesses.  The original ``ast.Call`` is
    retained so consumers (the taint pass, return-value edges) can bind
    arguments and read the result position.
    """

    caller: str
    line: int
    call: ast.Call
    exact: frozenset[str]
    by_name: frozenset[str]


@dataclass(slots=True)
class _ModuleScope:
    """Per-module name-resolution context collected in phase 1."""

    module: str
    #: local name -> dotted target ("from x import y" and "import x as z")
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level function names defined here
    functions: set[str] = field(default_factory=set)
    #: class name -> its method names
    classes: dict[str, set[str]] = field(default_factory=dict)
    #: class name -> {self attribute -> dotted class qname of its type}
    self_attr_types: dict[str, dict[str, str]] = field(default_factory=dict)


def module_name_for(rel_path: str) -> str | None:
    """``src/repro/core/node.py`` -> ``repro.core.node`` (None if outside)."""
    parts = rel_path.split("/")
    if len(parts) < 2 or parts[0] != "src" or not parts[-1].endswith(".py"):
        return None
    dotted = parts[1:]
    dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) if dotted else None


def _record_imports(scope: _ModuleScope, tree: ast.Module) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                scope.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are not used in this tree
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                scope.imports[local] = f"{node.module}.{alias.name}"


class CallGraph:
    """Functions + resolved call edges, with the traversals the rules need."""

    def __init__(
        self,
        functions: dict[str, FunctionInfo],
        callees: dict[str, frozenset[str]],
        exact_callees: dict[str, frozenset[str]] | None = None,
    ) -> None:
        self.functions = functions
        self._callees = callees
        self._exact_callees = exact_callees or {}
        self._callers: dict[str, set[str]] = {}
        for caller, targets in callees.items():
            for target in targets:
                self._callers.setdefault(target, set()).add(caller)
        self._by_name: dict[str, set[str]] = {}
        for qname, info in functions.items():
            self._by_name.setdefault(info.name, set()).add(qname)
        self._scopes: dict[str, _ModuleScope] = {}
        self._call_sites: dict[str, tuple[CallSite, ...]] = {}

    # -- queries -----------------------------------------------------------

    def callees(self, qname: str) -> frozenset[str]:
        return self._callees.get(qname, frozenset())

    def exact_callees(self, qname: str) -> frozenset[str]:
        """Only tier-1 (import/local/self) edges — no by-name guesses.

        Use this when an edge serves as *evidence* that a path property
        holds (e.g. R501's "routes through the proxy layer"): a by-name
        edge to a same-named method elsewhere must not vouch for anything.
        """
        return self._exact_callees.get(qname, frozenset())

    def callers(self, qname: str) -> frozenset[str]:
        return frozenset(self._callers.get(qname, set()))

    def named(self, name: str) -> frozenset[str]:
        """Every known function with this bare name (any module/class)."""
        return frozenset(self._by_name.get(name, set()))

    def classes_in(self, module: str) -> frozenset[str]:
        """Class names defined at the top level of one analyzed module."""
        scope = self._scopes.get(module)
        return frozenset(scope.classes) if scope is not None else frozenset()

    def call_sites(self, qname: str) -> tuple[CallSite, ...]:
        """Every ``ast.Call`` in the function body, with per-site targets.

        Unlike :meth:`callees`/:meth:`exact_callees` (which flatten a body
        to edge *sets*), call sites keep the AST node, so consumers can
        bind arguments to callee parameters and treat the call result as a
        return-value edge — what the taint pass needs.
        """
        return self._call_sites.get(qname, ())

    def roots(self) -> frozenset[str]:
        """Functions nothing in the analyzed tree calls — the API surface."""
        return frozenset(
            qname for qname in self.functions if not self._callers.get(qname)
        )

    def transitively_reaches(self, start: str, targets: frozenset[str]) -> bool:
        """Is any of ``targets`` reachable from ``start`` along call edges?"""
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for callee in self._callees.get(current, ()):
                if callee in targets:
                    return True
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return False

    def reachable_avoiding(
        self, roots: Iterable[str], blocked: frozenset[str]
    ) -> frozenset[str]:
        """Functions reachable from ``roots`` without entering ``blocked``.

        The F401 dominance approximation: a function *not* in this set is
        only ever reached through a blocked (gate-calling) function.
        """
        seen: set[str] = set()
        queue = deque(root for root in roots if root not in blocked)
        seen.update(queue)
        while queue:
            current = queue.popleft()
            for callee in self._callees.get(current, ()):
                if callee in blocked or callee in seen:
                    continue
                seen.add(callee)
                queue.append(callee)
        return frozenset(seen)

    # -- call-site resolution (shared with the rule modules) ---------------

    def resolve_call(
        self, module: str, class_name: str | None, call: ast.Call
    ) -> frozenset[str]:
        """Candidate callee qnames for one ``ast.Call`` (may be empty)."""
        scope = self._scopes.get(module)
        if scope is None:
            return frozenset()
        exact, fallback = self._resolve(scope, class_name, call.func)
        return exact | fallback

    def resolve_call_tiers(
        self, module: str, class_name: str | None, call: ast.Call
    ) -> tuple[frozenset[str], frozenset[str]]:
        """(exact, by-name) targets for one ``ast.Call``, kept separate.

        The taint pass propagates only along the exact tier (the R501
        convention: a same-name guess must not carry evidence), so it
        needs the split that :meth:`resolve_call` flattens.
        """
        scope = self._scopes.get(module)
        if scope is None:
            return frozenset(), frozenset()
        return self._resolve(scope, class_name, call.func)

    def _resolve(
        self, scope: _ModuleScope, class_name: str | None, func: ast.expr
    ) -> tuple[frozenset[str], frozenset[str]]:
        """(exact targets, by-name guesses) for one callee expression."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in scope.functions:
                return frozenset({f"{scope.module}.{name}"}), frozenset()
            target = scope.imports.get(name)
            if target is not None:
                if target in self.functions:
                    return frozenset({target}), frozenset()
                # Class constructor or a function outside the tree: keep
                # the raw target (rules match on prefixes) plus same-name
                # functions as a fallback.
                return frozenset({target}), self.named(name)
            return frozenset(), self.named(name)
        if isinstance(func, ast.Attribute):
            attr = func.attr
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == "self" and class_name is not None:
                    methods = scope.classes.get(class_name, set())
                    if attr in methods:
                        return (
                            frozenset({f"{scope.module}.{class_name}.{attr}"}),
                            frozenset(),
                        )
                target = scope.imports.get(value.id)
                if target is not None:
                    qname = f"{target}.{attr}"
                    if qname in self.functions:
                        return frozenset({qname}), frozenset()
                    return frozenset({qname}), self.named(attr)
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and class_name is not None
            ):
                # self.<attr>.<method>(...) where __init__/class annotations
                # pin <attr> to a known class: an evidence-grade edge.
                attr_types = scope.self_attr_types.get(class_name, {})
                type_qname = attr_types.get(value.attr)
                if type_qname is not None:
                    qname = f"{type_qname}.{attr}"
                    if qname in self.functions:
                        return frozenset({qname}), frozenset()
            return frozenset(), self.named(attr)
        return frozenset(), frozenset()


def _annotation_type_name(annotation: ast.expr | None) -> str | None:
    """The class name an annotation pins, unwrapping ``X | None``/strings."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.rsplit(".", 1)[-1]
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            if isinstance(side, ast.Constant) and side.value is None:
                continue
            name = _annotation_type_name(side)
            if name is not None:
                return name
    return None


def _resolve_type_name(scope: _ModuleScope, name: str | None) -> str | None:
    """Type name -> dotted class qname via local classes, then imports."""
    if name is None:
        return None
    if name in scope.classes:
        return f"{scope.module}.{name}"
    return scope.imports.get(name)


def _collect_self_attr_types(scope: _ModuleScope, tree: ast.Module) -> None:
    """Phase-1.5: pin ``self.<attr>`` types per class where code declares them.

    Three declaration forms count: a class-body ``AnnAssign`` (dataclass
    field), ``self.x: T = ...`` anywhere in a method, and the ``__init__``
    idioms ``self.x = <annotated param>`` / ``self.x = KnownClass(...)``.
    """
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        attrs = scope.self_attr_types.setdefault(node.name, {})
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                resolved = _resolve_type_name(
                    scope, _annotation_type_name(item.annotation)
                )
                if resolved is not None:
                    attrs[item.target.id] = resolved
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            param_types: dict[str, str | None] = {
                arg.arg: _annotation_type_name(arg.annotation)
                for arg in (
                    *method.args.posonlyargs,
                    *method.args.args,
                    *method.args.kwonlyargs,
                )
            }
            for stmt in ast.walk(method):
                target: ast.expr | None = None
                value: ast.expr | None = None
                annotation: ast.expr | None = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value, annotation = stmt.target, stmt.value, stmt.annotation
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                resolved = _resolve_type_name(scope, _annotation_type_name(annotation))
                if resolved is None and isinstance(value, ast.Name):
                    resolved = _resolve_type_name(scope, param_types.get(value.id))
                if (
                    resolved is None
                    and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                ):
                    resolved = _resolve_type_name(scope, value.func.id)
                if resolved is not None:
                    attrs.setdefault(target.attr, resolved)


def bind_arguments(callee: FunctionInfo, call: ast.Call) -> dict[str, ast.expr]:
    """Map a call site's arguments onto the callee's parameter names.

    Positional args fill the callee's positional parameters in order
    (``self``/``cls`` skipped for methods); keywords match by name.
    ``*args``/``**kwargs`` forwarding is out of scope — binding stops at
    the first ``Starred`` argument, the conservative direction for taint
    (a dropped binding can only under-propagate a by-star call, and those
    do not occur on the protocol paths the S rules guard).
    """
    spec = callee.node.args
    params = [arg.arg for arg in (*spec.posonlyargs, *spec.args)]
    if callee.class_name is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    bound: dict[str, ast.expr] = {}
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(params):
            bound[params[index]] = arg
    keyword_names = set(params) | {arg.arg for arg in spec.kwonlyargs}
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in keyword_names:
            bound[keyword.arg] = keyword.value
    return bound


def _collect_functions(
    parsed: ParsedModule, scope: _ModuleScope
) -> list[FunctionInfo]:
    infos: list[FunctionInfo] = []
    for node in parsed.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.functions.add(node.name)
            infos.append(
                FunctionInfo(
                    qname=f"{parsed.module}.{node.name}",
                    module=parsed.module,
                    name=node.name,
                    class_name=None,
                    path=parsed.path,
                    lineno=node.lineno,
                    node=node,
                )
            )
        elif isinstance(node, ast.ClassDef):
            methods = scope.classes.setdefault(node.name, set())
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(item.name)
                    infos.append(
                        FunctionInfo(
                            qname=f"{parsed.module}.{node.name}.{item.name}",
                            module=parsed.module,
                            name=item.name,
                            class_name=node.name,
                            path=parsed.path,
                            lineno=item.lineno,
                            node=item,
                        )
                    )
    return infos


def build_call_graph(modules: Iterable[ParsedModule]) -> CallGraph:
    """Two-phase construction: collect every definition, then resolve calls."""
    scopes: dict[str, _ModuleScope] = {}
    functions: dict[str, FunctionInfo] = {}
    per_module: list[tuple[ParsedModule, list[FunctionInfo]]] = []

    for parsed in modules:
        scope = _ModuleScope(module=parsed.module)
        _record_imports(scope, parsed.tree)
        infos = _collect_functions(parsed, scope)
        scopes[parsed.module] = scope
        for info in infos:
            functions[info.qname] = info
        per_module.append((parsed, infos))

    for parsed, _ in per_module:
        _collect_self_attr_types(scopes[parsed.module], parsed.tree)

    graph = CallGraph(functions, {})
    graph._scopes = scopes

    callees: dict[str, frozenset[str]] = {}
    exact_callees: dict[str, frozenset[str]] = {}
    call_sites: dict[str, tuple[CallSite, ...]] = {}
    for parsed, infos in per_module:
        scope = scopes[parsed.module]
        for info in infos:
            exact_targets: set[str] = set()
            all_targets: set[str] = set()
            sites: list[CallSite] = []
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    exact, fallback = graph._resolve(
                        scope, info.class_name, node.func
                    )
                    exact_targets.update(exact)
                    all_targets.update(exact)
                    all_targets.update(fallback)
                    sites.append(
                        CallSite(
                            caller=info.qname,
                            line=node.lineno,
                            call=node,
                            exact=exact,
                            by_name=fallback,
                        )
                    )
            exact_targets.discard(info.qname)  # self-recursion adds nothing
            all_targets.discard(info.qname)
            if all_targets:
                callees[info.qname] = frozenset(all_targets)
            if exact_targets:
                exact_callees[info.qname] = frozenset(exact_targets)
            if sites:
                call_sites[info.qname] = tuple(
                    sorted(sites, key=lambda site: (site.line, site.call.col_offset))
                )

    # Rebuild with the real edge set (CallGraph precomputes callers).
    result = CallGraph(functions, callees, exact_callees)
    result._scopes = scopes
    result._call_sites = call_sites
    return result
