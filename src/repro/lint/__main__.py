"""``python -m repro.lint`` entry point."""

from __future__ import annotations

import os
import sys

from repro.lint.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
