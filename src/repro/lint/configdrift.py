"""C rules: paper-constant drift detection (C601) and its ``--fix`` rewriter.

``core/config.py`` is the single source of truth for the paper's magic
numbers (50 ms frame, IS size 5, 40-frame proxy period, ±60° vision cone,
1 Hz tiers…).  A literal ``0.05`` or ``40`` re-stated elsewhere *looks*
harmless until one experiment changes the config and the re-stated copy
silently keeps the old value — the two halves of the protocol then run
different papers.  C601 flags a numeric literal whose *name* (parameter,
dataclass field, or keyword argument) matches a known paper constant and
whose *value* equals that constant; the fixer rewrites the literal to the
imported name.

Name+value matching keeps the rule precise: ``fall_damage_per_speed =
0.05`` shares the value but not the meaning of ``FRAME_SECONDS`` and is
not flagged; ``frame_seconds = 0.10`` is a deliberate override and is not
flagged either.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from pathlib import Path

from repro.lint.violations import Violation

__all__ = [
    "CONSTANT_ALIASES",
    "DriftSite",
    "extract_constants",
    "find_drift_sites",
    "run_configdrift_rules",
    "apply_fixes",
]

#: Repo-relative path of the constants module (also the exempt file).
CONFIG_REL = "src/repro/core/config.py"

#: parameter/field/keyword name -> constant in core/config.py.
CONSTANT_ALIASES: dict[str, str] = {
    "frame_seconds": "FRAME_SECONDS",
    "frequent_interval_frames": "FREQUENT_INTERVAL_FRAMES",
    "guidance_interval_frames": "FRAMES_PER_SECOND",
    "position_interval_frames": "FRAMES_PER_SECOND",
    "guidance_horizon_frames": "FRAMES_PER_SECOND",
    "horizon_frames": "FRAMES_PER_SECOND",
    "keyframe_interval_frames": "FRAMES_PER_SECOND",
    "frames_per_second": "FRAMES_PER_SECOND",
    "proxy_period_frames": "PROXY_PERIOD_FRAMES",
    "subscription_retention_frames": "PROXY_PERIOD_FRAMES",
    "retention_frames": "PROXY_PERIOD_FRAMES",
    "handoff_depth": "HANDOFF_DEPTH",
    "interest_size": "INTEREST_SET_SIZE",
    "vision_half_angle": "VISION_HALF_ANGLE",
    "vision_slack": "VISION_SLACK",
    "signature_bits": "SIGNATURE_BITS",
    "state_update_bits": "STATE_UPDATE_BITS",
    "max_useful_age": "MAX_USEFUL_AGE_FRAMES",
    "max_useful_age_frames": "MAX_USEFUL_AGE_FRAMES",
}

#: Packages C601 sweeps (repo-relative path prefixes under the root).
_SCOPE_PREFIXES = ("src/repro/core/", "src/repro/game/", "src/repro/net/")


@dataclass(frozen=True, slots=True)
class DriftSite:
    """One literal to flag (and, under ``--fix``, to rewrite)."""

    path: str
    line: int
    col: int
    end_line: int
    end_col: int
    alias: str  # the parameter/field/keyword name that matched
    constant: str  # the config constant it duplicates
    literal: str  # source text of the literal (for the message)


def _literal_value(node: ast.expr) -> float | None:
    """Evaluate a numeric literal or ``math.radians(<literal>)``; else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_value(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Call):
        func = node.func
        is_radians = (
            isinstance(func, ast.Attribute) and func.attr == "radians"
        ) or (isinstance(func, ast.Name) and func.id == "radians")
        if is_radians and len(node.args) == 1 and not node.keywords:
            inner = _literal_value(node.args[0])
            return None if inner is None else math.radians(inner)
    return None


def extract_constants(config_path: Path) -> dict[str, float]:
    """Module-level UPPER_CASE numeric constants defined in config.py."""
    constants: dict[str, float] = {}
    try:
        tree = ast.parse(config_path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return constants
    for node in tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        if not isinstance(target, ast.Name) or not target.id.isupper():
            continue
        assert value is not None
        evaluated = _literal_value(value)
        if evaluated is None and isinstance(value, ast.Name):
            evaluated = constants.get(value.id)  # alias of an earlier constant
        if evaluated is not None:
            constants[target.id] = evaluated
    return constants


def _matches(value: float, expected: float) -> bool:
    return math.isclose(value, expected, rel_tol=1e-9, abs_tol=1e-12)


def _site_for(
    path: str, alias: str, value_node: ast.expr, constants: dict[str, float]
) -> DriftSite | None:
    constant = CONSTANT_ALIASES.get(alias)
    if constant is None or constant not in constants:
        return None
    value = _literal_value(value_node)
    if value is None or not _matches(value, constants[constant]):
        return None
    return DriftSite(
        path=path,
        line=value_node.lineno,
        col=value_node.col_offset,
        end_line=value_node.end_lineno or value_node.lineno,
        end_col=value_node.end_col_offset or value_node.col_offset,
        alias=alias,
        constant=constant,
        literal=ast.unparse(value_node),
    )


def find_drift_sites(
    files: dict[str, ast.Module], constants: dict[str, float]
) -> list[DriftSite]:
    """Scan parsed in-scope files for alias-named literals."""
    sites: list[DriftSite] = []
    if not constants:
        return sites
    for rel in sorted(files):
        if rel == CONFIG_REL or not rel.startswith(_SCOPE_PREFIXES):
            continue
        tree = files[rel]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                positional = [*args.posonlyargs, *args.args]
                for arg, default in zip(
                    positional[len(positional) - len(args.defaults):],
                    args.defaults,
                ):
                    site = _site_for(rel, arg.arg, default, constants)
                    if site:
                        sites.append(site)
                for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                    if kw_default is not None:
                        site = _site_for(rel, arg.arg, kw_default, constants)
                        if site:
                            sites.append(site)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if (
                        isinstance(item, ast.AnnAssign)
                        and item.value is not None
                        and isinstance(item.target, ast.Name)
                    ):
                        site = _site_for(
                            rel, item.target.id, item.value, constants
                        )
                        if site:
                            sites.append(site)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    site = _site_for(rel, keyword.arg, keyword.value, constants)
                    if site:
                        sites.append(site)
    # A dataclass field default is found once via ClassDef and not again via
    # FunctionDef; keyword args inside defaults could double-report — dedup.
    unique: dict[tuple[str, int, int], DriftSite] = {}
    for site in sites:
        unique.setdefault((site.path, site.line, site.col), site)
    return sorted(unique.values(), key=lambda s: (s.path, s.line, s.col))


def run_configdrift_rules(
    files: dict[str, ast.Module],
    sources: dict[str, list[str]],
    config_path: Path,
) -> list[Violation]:
    constants = extract_constants(config_path)
    violations: list[Violation] = []
    for site in find_drift_sites(files, constants):
        lines = sources.get(site.path, [])
        context = (
            lines[site.line - 1].strip() if 1 <= site.line <= len(lines) else ""
        )
        violations.append(
            Violation(
                rule="C601",
                path=site.path,
                line=site.line,
                message=(
                    f"literal {site.literal} duplicates {site.constant} "
                    f"(core/config.py) for '{site.alias}'; import the "
                    "constant instead (repro lint --fix rewrites it)"
                ),
                context=context,
            )
        )
    return violations


# -- the --fix rewriter ------------------------------------------------------


def _offset_table(source: str) -> list[int]:
    """Absolute offset of the start of each 1-indexed line."""
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _ensure_import(source: str, names: set[str]) -> str:
    """Add/merge ``from repro.core.config import …`` into ``source``."""
    lines = source.splitlines(keepends=True)
    prefix = "from repro.core.config import "
    for index, line in enumerate(lines):
        if line.startswith(prefix) and "(" not in line:
            existing = {n.strip() for n in line[len(prefix):].split(",")}
            merged = sorted((existing | names) - {""})
            lines[index] = prefix + ", ".join(merged) + "\n"
            return "".join(lines)
    new_line = prefix + ", ".join(sorted(names)) + "\n"
    last_import = None
    for index, line in enumerate(lines):
        if line.startswith(("import ", "from ")):
            last_import = index
    if last_import is not None:
        lines.insert(last_import + 1, new_line)
        return "".join(lines)
    # No imports at all: insert after the module docstring, if any.
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return new_line + source
    insert_at = 0
    if (
        tree.body
        and isinstance(tree.body[0], ast.Expr)
        and isinstance(tree.body[0].value, ast.Constant)
        and isinstance(tree.body[0].value.value, str)
    ):
        insert_at = tree.body[0].end_lineno or 0
    lines.insert(insert_at, new_line)
    return "".join(lines)


def apply_fixes(
    sites: list[DriftSite], read_source: dict[str, str]
) -> dict[str, str]:
    """Rewrite every site to its constant name; returns path -> new source.

    Sites are replaced bottom-up per file so earlier offsets stay valid,
    then a single merged config import is ensured per touched file.
    """
    by_file: dict[str, list[DriftSite]] = {}
    for site in sites:
        by_file.setdefault(site.path, []).append(site)
    fixed: dict[str, str] = {}
    for rel, file_sites in by_file.items():
        source = read_source[rel]
        offsets = _offset_table(source)
        for site in sorted(
            file_sites, key=lambda s: (s.line, s.col), reverse=True
        ):
            start = offsets[site.line - 1] + site.col
            end = offsets[site.end_line - 1] + site.end_col
            source = source[:start] + site.constant + source[end:]
        fixed[rel] = _ensure_import(
            source, {site.constant for site in file_sites}
        )
    return fixed
