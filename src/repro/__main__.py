"""``python -m repro`` — the reproduction toolkit CLI."""

import sys

from repro.cli import main

sys.exit(main())
