"""``python -m repro`` — the reproduction toolkit CLI."""

import os
import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Output piped into a pager/head that exited early; not an error.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(0)
