"""Deterministic match record/replay: the ``.tape`` subsystem.

Records a full Watchmen session — scenario config, every RNG lane's
seed, the materialised fault schedule, per-frame player inputs, and the
complete wire-encoded message stream — into a versioned, fingerprinted
``.tape`` file.  Verify mode re-simulates from the recorded inputs and
reports the first divergent frame; replay mode drives consumers straight
from the recorded stream.  See ``docs/REPLAY.md`` for the format spec
and the CI replay gate built on top.
"""

from repro.replay.player import (
    Divergence,
    VerifyResult,
    compare_tapes,
    diff_tapes,
    iter_messages,
    verify_tape,
)
from repro.replay.recorder import TapeRecorder, record_session
from repro.replay.scenario import (
    CHEAT_FACTORIES,
    GOLDEN_PRESETS,
    CheatSpec,
    TapeScenario,
    make_cheat,
)
from repro.replay.tape import (
    TAPE_FORMAT,
    TAPE_VERSION,
    Tape,
    TapedMessage,
    TapeError,
    TapeFormatError,
    TapeFrame,
    TapeIntegrityError,
    config_hash,
    read_header,
    read_tape,
    write_tape,
)

__all__ = [
    "TAPE_FORMAT",
    "TAPE_VERSION",
    "Tape",
    "TapedMessage",
    "TapeFrame",
    "TapeError",
    "TapeFormatError",
    "TapeIntegrityError",
    "config_hash",
    "read_header",
    "read_tape",
    "write_tape",
    "TapeRecorder",
    "record_session",
    "TapeScenario",
    "CheatSpec",
    "CHEAT_FACTORIES",
    "GOLDEN_PRESETS",
    "make_cheat",
    "Divergence",
    "VerifyResult",
    "verify_tape",
    "compare_tapes",
    "diff_tapes",
    "iter_messages",
]
