"""The tape recorder: pure observation of a live Watchmen session.

:class:`TapeRecorder` attaches to a session through two hooks that exist
for exactly this purpose — ``session.on_frame_begin`` (frame boundaries)
and ``session.network.send_taps`` (every datagram offered to the
transport, with its local acceptance outcome).  Neither hook perturbs the
run: a taped session is bit-identical to an untapped one, which is what
lets verify mode compare streams byte for byte.

Recording is deliberately two-phase.  During the run the tap only appends
``(src, dst, payload, size, accepted)`` tuples — payloads are frozen
message dataclasses, so holding references is safe and costs one list
append per datagram.  The expensive part (canonical wire encoding of
every message, digest chaining) happens once in :meth:`finalize`, after
the frame loop has finished; that is how record mode stays within its
≤10 % frame-loop overhead budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.wire import encode_bytes
from repro.obs.registry import MetricsRegistry, get_registry
from repro.replay.scenario import TapeScenario
from repro.replay.tape import Tape, TapedMessage, TapeFrame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import WatchmenSession
    from repro.faults.schedule import FaultSchedule

__all__ = ["TapeRecorder", "record_session"]


class TapeRecorder:
    """Captures one session run into a :class:`~repro.replay.tape.Tape`."""

    def __init__(
        self,
        session: "WatchmenSession",
        scenario: TapeScenario,
        faults: "FaultSchedule | None" = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.session = session
        self.scenario = scenario
        self.faults = faults
        self._frames: list[tuple[int, list[tuple[int, int, object, int, bool]]]] = []
        self._current: list[tuple[int, int, object, int, bool]] = []
        self._attached = False
        self._finalized = False
        obs = registry if registry is not None else get_registry()
        self._ctr_messages = obs.counter("tape.messages")
        self._ctr_bytes = obs.counter("tape.bytes")
        self._gauge_frames = obs.gauge("tape.frames")
        self._hist_finalize = obs.histogram("tape.finalize_seconds")

    # ---- hooks -------------------------------------------------------------

    def attach(self) -> "TapeRecorder":
        """Hook into the session; idempotent, chains any existing hook."""
        if self._attached:
            return self
        previous = self.session.on_frame_begin

        def on_frame_begin(frame: int) -> None:
            self._begin_frame(frame)
            if previous is not None:
                previous(frame)

        self.session.on_frame_begin = on_frame_begin
        self.session.network.send_taps.append(self._tap)
        self._attached = True
        return self

    def detach(self) -> None:
        taps = self.session.network.send_taps
        if self._tap in taps:
            taps.remove(self._tap)
        self._attached = False

    def _begin_frame(self, frame: int) -> None:
        self._current = []
        self._frames.append((frame, self._current))

    def _tap(
        self, src: int, dst: int, payload: object, size_bytes: int, accepted: bool
    ) -> None:
        # Sends fired from delivery callbacks between ticks land on the
        # last-started frame — the same attribution record and verify use,
        # so frame-level comparison stays deterministic.
        self._current.append((src, dst, payload, size_bytes, accepted))

    # ---- finalisation ------------------------------------------------------

    def finalize(self) -> Tape:
        """Wire-encode the captured stream and fingerprint it."""
        if self._finalized:
            raise RuntimeError("recorder already finalized")
        self._finalized = True
        self.detach()
        frames: list[TapeFrame] = []
        total_messages = 0
        total_bytes = 0
        with self._hist_finalize.time():
            for frame_index, raw in self._frames:
                messages = [
                    TapedMessage(
                        src=src,
                        dst=dst,
                        size_bytes=size_bytes,
                        accepted=accepted,
                        payload=encode_bytes(payload),
                    )
                    for src, dst, payload, size_bytes, accepted in raw
                ]
                frames.append(TapeFrame(frame=frame_index, messages=messages))
                total_messages += len(messages)
                total_bytes += sum(m.size_bytes for m in messages)
        tape = Tape(
            scenario=self.scenario,
            trace=self.session.trace,
            frames=frames,
            faults=self.faults,
        )
        tape.fingerprint()
        self._ctr_messages.inc(total_messages)
        self._ctr_bytes.inc(total_bytes)
        self._gauge_frames.set(len(frames))
        return tape


def record_session(
    scenario: TapeScenario,
    registry: MetricsRegistry | None = None,
) -> Tape:
    """Simulate, run, and record one scenario end to end."""
    game_map = scenario.make_map()
    trace = scenario.make_trace(game_map)
    faults = scenario.make_faults(trace.player_ids())
    session = scenario.make_session(trace, faults=faults, game_map=game_map)
    recorder = TapeRecorder(session, scenario, faults=faults, registry=registry)
    recorder.attach()
    session.run()
    return recorder.finalize()
