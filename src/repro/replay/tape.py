"""The ``.tape`` format: a match recorded for byte-exact re-verification.

A tape is everything needed to reproduce one protocol run — the scenario
(player count, seeds for every RNG lane, network weather, fault schedule,
cheat roster), the per-frame player inputs (the embedded
:class:`~repro.game.trace.GameTrace`), and the full wire-encoded message
stream the run produced — in one fingerprinted artifact.

Layout (gzip-compressed JSONL, one JSON object per line):

1. **header** — ``format`` / ``version`` tags, the scenario, the
   materialised fault schedule, and ``config_hash`` (SHA-256 over the
   canonical scenario+faults JSON: two tapes with the same hash were
   recorded under identical configuration);
2. **trace rows** — the embedded game trace
   (:meth:`~repro.game.trace.GameTrace.to_json_rows` rows, verbatim);
3. **frame rows** — one per simulated frame, carrying every datagram the
   nodes *offered* to the transport that frame (src, dst, size, local
   acceptance, and the canonical binary wire frame, base64-armoured for
   the JSONL container) plus the running SHA-256 of all frame payloads
   so far;
4. **footer** — totals and the final digest.

Version 2 switched the taped payload from the JSON-dict envelope to the
binary wire frame (:func:`repro.core.wire.encode_bytes`): digests cover
the exact bytes the protocol ships, and the corpus shrinks with them.
Version-1 tapes are rejected — regenerate with ``make tapes``.

The running digest makes tampering localisable: flipping any byte of any
message breaks the digest of that frame and every later one, so integrity
checking reports the *first* corrupted frame.  All JSON is canonical
(sorted keys, compact separators) and gzip is written with ``mtime=0`` so
re-recording the same scenario on the same zlib yields identical bytes.

File I/O note: this module is the replay subsystem's persistence
boundary and is explicitly allowlisted for the ``D104`` lint rule (see
``repro.lint.determinism.FILE_IO_ALLOWLIST``).
"""

from __future__ import annotations

import base64
import binascii
import gzip
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.core.wire import MESSAGE_TAGS
from repro.faults.schedule import FaultSchedule
from repro.game.trace import GameTrace
from repro.replay.scenario import TapeScenario

__all__ = [
    "TAPE_FORMAT",
    "TAPE_VERSION",
    "TapeError",
    "TapeFormatError",
    "TapeIntegrityError",
    "TapedMessage",
    "TapeFrame",
    "Tape",
    "config_hash",
    "write_tape",
    "read_tape",
    "read_header",
]

TAPE_FORMAT = "repro.tape.v1"
TAPE_VERSION = 2

#: wire tag byte -> message type name, for the inspect histogram
_TAG_NAMES: dict[int, str] = {tag: name for name, tag in MESSAGE_TAGS.items()}


class TapeError(ValueError):
    """Base class for anything wrong with a tape artifact."""


class TapeFormatError(TapeError):
    """Unknown format tag, unsupported version, or malformed rows."""


class TapeIntegrityError(TapeError):
    """Stored fingerprints do not match the tape's own content."""

    def __init__(self, message: str, frame: int | None = None) -> None:
        super().__init__(message)
        #: first frame whose digest failed, when localisable
        self.frame = frame


def _canonical(data: Any) -> bytes:
    """Canonical JSON bytes: the only shape digests are computed over."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")


def config_hash(scenario: TapeScenario, faults: FaultSchedule | None) -> str:
    """Fingerprint of the recording configuration (not of the stream)."""
    payload = {
        "version": TAPE_VERSION,
        "scenario": scenario.to_json(),
        "faults": faults.to_json() if faults is not None else None,
    }
    return hashlib.sha256(_canonical(payload)).hexdigest()


@dataclass(frozen=True, slots=True)
class TapedMessage:
    """One datagram as offered to the transport."""

    src: int
    dst: int
    size_bytes: int
    #: False when the transport refused it locally (budget/NAT); the
    #: refusal is part of the run's observable behaviour, so it is taped.
    accepted: bool
    #: the canonical binary wire frame (:func:`repro.core.wire.encode_bytes`)
    payload: bytes

    def digest_bytes(self) -> bytes:
        """The canonical bytes this message contributes to digests: the
        routing envelope as canonical JSON, then the raw wire frame —
        exactly what a node would transmit."""
        return (
            _canonical([self.src, self.dst, self.size_bytes, int(self.accepted)])
            + b"|"
            + self.payload
        )

    def type_name(self) -> str:
        """Message type from the frame's leading tag byte ('?' if alien)."""
        if not self.payload:
            return "?"
        return _TAG_NAMES.get(self.payload[0], "?")


@dataclass(slots=True)
class TapeFrame:
    """Every message offered during one simulation frame."""

    frame: int
    messages: list[TapedMessage] = field(default_factory=list)
    #: cumulative SHA-256 over all frame payloads up to and including
    #: this one (hex) — filled by :func:`fingerprint_frames`
    digest: str = ""

    def payload_bytes(self) -> int:
        return sum(m.size_bytes for m in self.messages)


def fingerprint_frames(frames: list[TapeFrame]) -> str:
    """Fill each frame's cumulative digest; returns the final digest."""
    running = hashlib.sha256()
    for tape_frame in frames:
        for message in tape_frame.messages:
            running.update(message.digest_bytes())
            running.update(b"\n")
        running.update(b"frame:%d\n" % tape_frame.frame)
        tape_frame.digest = running.hexdigest()
    return running.hexdigest()


@dataclass(slots=True)
class Tape:
    """A complete recorded match."""

    scenario: TapeScenario
    trace: GameTrace
    frames: list[TapeFrame]
    faults: FaultSchedule | None = None
    #: final cumulative digest (hex); filled by fingerprint()/read_tape
    sha256: str = ""
    version: int = TAPE_VERSION

    def fingerprint(self) -> str:
        """(Re)compute all frame digests and the final fingerprint."""
        self.sha256 = fingerprint_frames(self.frames)
        return self.sha256

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def num_messages(self) -> int:
        return sum(len(f.messages) for f in self.frames)

    @property
    def payload_bytes(self) -> int:
        return sum(f.payload_bytes() for f in self.frames)

    def config_hash(self) -> str:
        return config_hash(self.scenario, self.faults)

    def messages_by_type(self) -> dict[str, int]:
        """Message-type histogram over the whole stream (for inspect)."""
        counts: dict[str, int] = {}
        for tape_frame in self.frames:
            for message in tape_frame.messages:
                kind = message.type_name()
                counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))


# ---- persistence -----------------------------------------------------------


def _header_row(tape: Tape) -> dict[str, Any]:
    return {
        "kind": "header",
        "format": TAPE_FORMAT,
        "version": tape.version,
        "config_hash": tape.config_hash(),
        "scenario": tape.scenario.to_json(),
        "faults": tape.faults.to_json() if tape.faults is not None else None,
    }


def write_tape(tape: Tape, path: str | Path) -> Path:
    """Serialize (recomputing fingerprints) to gzip JSONL at ``path``."""
    tape.fingerprint()
    lines: list[bytes] = [_canonical(_header_row(tape))]
    lines.extend(_canonical({"kind": "trace", "row": row})
                 for row in tape.trace.to_json_rows())
    for tape_frame in tape.frames:
        lines.append(_canonical({
            "kind": "frame",
            "frame": tape_frame.frame,
            "digest": tape_frame.digest,
            "messages": [
                [
                    m.src,
                    m.dst,
                    m.size_bytes,
                    int(m.accepted),
                    base64.b64encode(m.payload).decode("ascii"),
                ]
                for m in tape_frame.messages
            ],
        }))
    lines.append(_canonical({
        "kind": "end",
        "frames": tape.num_frames,
        "messages": tape.num_messages,
        "payload_bytes": tape.payload_bytes,
        "sha256": tape.sha256,
    }))
    body = b"\n".join(lines) + b"\n"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # mtime=0 keeps the gzip container deterministic across runs.
    path.write_bytes(gzip.compress(body, compresslevel=9, mtime=0))
    return path


def _iter_rows(path: Path) -> Iterator[dict[str, Any]]:
    try:
        raw = path.read_bytes()
    except OSError as error:
        # Unreadable path: an invocation problem, not a corrupt recording.
        raise TapeFormatError(f"{path}: cannot read tape: {error}") from error
    try:
        body = gzip.decompress(raw)
    except (OSError, EOFError, gzip.BadGzipFile) as error:
        raise TapeIntegrityError(f"{path}: not a readable tape: {error}") from error
    for lineno, line in enumerate(body.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as error:
            raise TapeIntegrityError(
                f"{path}: line {lineno} is not valid JSON: {error}"
            ) from error
        if not isinstance(row, dict) or "kind" not in row:
            raise TapeFormatError(f"{path}: line {lineno} has no 'kind' tag")
        yield row


def _check_header(path: Path, row: dict[str, Any]) -> None:
    if row.get("kind") != "header":
        raise TapeFormatError(f"{path}: first row must be the header")
    if row.get("format") != TAPE_FORMAT:
        raise TapeFormatError(
            f"{path}: unknown tape format {row.get('format')!r} "
            f"(expected {TAPE_FORMAT})"
        )
    if row.get("version") != TAPE_VERSION:
        raise TapeFormatError(
            f"{path}: unsupported tape version {row.get('version')!r} "
            f"(this reader speaks version {TAPE_VERSION})"
        )


def read_header(path: str | Path) -> dict[str, Any]:
    """Parse and validate only the header row (cheap inspection)."""
    path = Path(path)
    for row in _iter_rows(path):
        _check_header(path, row)
        return row
    raise TapeFormatError(f"{path}: empty tape")


def read_tape(path: str | Path, verify_integrity: bool = True) -> Tape:
    """Load a tape; with ``verify_integrity`` recompute every fingerprint.

    Raises :class:`TapeFormatError` for version/format problems and
    :class:`TapeIntegrityError` (carrying the first bad frame) when the
    stored digests do not match the content.
    """
    path = Path(path)
    header: dict[str, Any] | None = None
    trace_rows: list[dict[str, Any]] = []
    frames: list[TapeFrame] = []
    stored_digests: list[str] = []
    footer: dict[str, Any] | None = None
    for row in _iter_rows(path):
        if header is None:
            _check_header(path, row)
            header = row
            continue
        kind = row["kind"]
        if kind == "trace":
            trace_rows.append(row["row"])
        elif kind == "frame":
            try:
                messages = [
                    TapedMessage(
                        src=entry[0],
                        dst=entry[1],
                        size_bytes=entry[2],
                        accepted=bool(entry[3]),
                        payload=base64.b64decode(
                            entry[4].encode("ascii"), validate=True
                        ),
                    )
                    for entry in row["messages"]
                ]
                frames.append(TapeFrame(frame=row["frame"], messages=messages))
                stored_digests.append(row["digest"])
            except (
                KeyError,
                IndexError,
                TypeError,
                AttributeError,
                UnicodeEncodeError,
                binascii.Error,
            ) as error:
                raise TapeFormatError(
                    f"{path}: malformed frame row: {error}"
                ) from error
        elif kind == "end":
            footer = row
        else:
            raise TapeFormatError(f"{path}: unknown row kind {kind!r}")
    if header is None:
        raise TapeFormatError(f"{path}: empty tape")
    if footer is None:
        raise TapeIntegrityError(f"{path}: truncated tape (no footer)")

    try:
        scenario = TapeScenario.from_json(header["scenario"])
    except (KeyError, TypeError, ValueError) as error:
        raise TapeFormatError(f"{path}: bad scenario in header: {error}") from error
    faults = (
        FaultSchedule.from_json(header["faults"])
        if header.get("faults") is not None
        else None
    )
    try:
        trace = GameTrace.from_json_rows(trace_rows)
    except (ValueError, KeyError, TypeError) as error:
        raise TapeFormatError(f"{path}: bad embedded trace: {error!r}") from error

    tape = Tape(
        scenario=scenario,
        trace=trace,
        frames=frames,
        faults=faults,
        version=header["version"],
    )
    tape.fingerprint()

    if verify_integrity:
        expected_hash = header.get("config_hash")
        if expected_hash != tape.config_hash():
            raise TapeIntegrityError(
                f"{path}: config_hash mismatch — header says "
                f"{str(expected_hash)[:12]}…, content hashes to "
                f"{tape.config_hash()[:12]}…"
            )
        for index, (tape_frame, stored) in enumerate(zip(frames, stored_digests)):
            if tape_frame.digest != stored:
                raise TapeIntegrityError(
                    f"{path}: frame {tape_frame.frame} digest mismatch "
                    f"(stored {stored[:12]}…, recomputed "
                    f"{tape_frame.digest[:12]}…)",
                    frame=tape_frame.frame,
                )
            del index
        if footer.get("sha256") != tape.sha256:
            raise TapeIntegrityError(
                f"{path}: footer fingerprint mismatch (stored "
                f"{str(footer.get('sha256'))[:12]}…, recomputed "
                f"{tape.sha256[:12]}…)"
            )
        if footer.get("frames") != tape.num_frames:
            raise TapeIntegrityError(
                f"{path}: footer says {footer.get('frames')} frames, "
                f"tape carries {tape.num_frames}"
            )
    return tape
