"""Tape scenarios: the single construction path for recordable runs.

A :class:`TapeScenario` captures *everything* a tape needs to rebuild the
run that produced it — player count, frame count, every RNG lane's seed,
the map, the latency model, the network weather, the chaos scenario, and
the cheat roster.  Record and verify both go through
:func:`TapeScenario.make_session`, so a divergence between them can only
come from the protocol itself, never from construction drift.

Cheats are declared as :class:`CheatSpec` rows (kind + JSON-safe params)
and instantiated through :data:`CHEAT_FACTORIES`; the environment hooks
some cheats need (proxy lookup, rosters) are attached with the same
:func:`repro.analysis.detection.wire_cheat` used by the detection
experiments, keeping taped cheaters identical to studied ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.analysis.detection import wire_cheat
from repro.cheats.base import CheatBehaviour
from repro.cheats.state import (
    FakeKillCheat,
    GuidanceLieCheat,
    SpeedHack,
    TeleportCheat,
)
from repro.core.config import WatchmenConfig
from repro.core.protocol import WatchmenSession
from repro.faults.chaos import (
    ChaosScenario,
    build_schedule,
    byzantine_scenarios,
    default_scenarios,
)
from repro.faults.schedule import FaultSchedule
from repro.game.gamemap import GameMap, make_corridors, make_longest_yard
from repro.game.simulator import generate_trace
from repro.game.trace import GameTrace
from repro.net.latency import LatencyMatrix, king_like, peerwise_like, uniform_lan
from repro.net.transport import NetworkConfig

__all__ = [
    "CheatSpec",
    "TapeScenario",
    "CHEAT_FACTORIES",
    "GOLDEN_PRESETS",
    "make_cheat",
]

MAP_FACTORIES: dict[str, Callable[[], GameMap]] = {
    "longest-yard": make_longest_yard,
    "corridors": make_corridors,
}

#: cheat kinds a tape may declare; params must stay JSON-safe
CHEAT_FACTORIES: dict[str, Callable[..., CheatBehaviour]] = {
    "speed-hack": SpeedHack,
    "teleport": TeleportCheat,
    "fake-kill": FakeKillCheat,
    "guidance-lie": GuidanceLieCheat,
}


@dataclass(frozen=True, slots=True)
class CheatSpec:
    """One cheater: which player runs which cheat, with which knobs."""

    player_id: int
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in CHEAT_FACTORIES:
            raise ValueError(
                f"unknown cheat kind {self.kind!r} "
                f"(known: {', '.join(sorted(CHEAT_FACTORIES))})"
            )

    def to_json(self) -> dict[str, Any]:
        return {
            "player_id": self.player_id,
            "kind": self.kind,
            "params": dict(self.params),
        }

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "CheatSpec":
        return CheatSpec(
            player_id=data["player_id"],
            kind=data["kind"],
            params=dict(data.get("params", {})),
        )


def make_cheat(spec: CheatSpec) -> CheatBehaviour:
    """Instantiate a cheat from its declarative spec."""
    return CHEAT_FACTORIES[spec.kind](**spec.params)


@dataclass(frozen=True, slots=True)
class TapeScenario:
    """Everything needed to deterministically rebuild a recorded run."""

    players: int
    frames: int
    seed: int
    map_name: str = "longest-yard"
    npc_fraction: float = 0.0
    latency: str = "king"  # "king" | "peerwise" | "lan"
    loss_rate: float = 0.01
    jitter_ms: float = 3.0
    loss_model: str = "iid"  # "iid" | "gilbert-elliott"
    servers: int = 0
    #: chaos scenario name from :func:`repro.faults.chaos.default_scenarios`
    #: or :func:`repro.faults.chaos.byzantine_scenarios` (provenance only —
    #: the *materialised* schedule embedded in the tape is authoritative at
    #: verify time), or None for a fault-free run
    chaos: str | None = None
    failover: bool = True
    reliable: bool = True
    #: run with ``WatchmenConfig.byzantine_hardening`` enabled (adopted
    #: from the named chaos scenario by :meth:`with_chaos_flags`)
    hardening: bool = False
    cheats: tuple[CheatSpec, ...] = ()
    #: model-checker envelope (``repro mc`` counterexample tapes only):
    #: config overrides, controlled message types, decision window, fault
    #: budgets, and the violating delivery schedule.  ``None`` for every
    #: ordinary tape — and omitted from the JSON form so the golden
    #: corpus fingerprints are untouched.  See ``repro.mc.controller``.
    mc: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.map_name not in MAP_FACTORIES:
            raise ValueError(f"unknown map {self.map_name!r}")
        if self.latency not in ("king", "peerwise", "lan"):
            raise ValueError(f"unknown latency model {self.latency!r}")
        cheaters = [spec.player_id for spec in self.cheats]
        if len(cheaters) != len(set(cheaters)):
            raise ValueError("at most one cheat per player")
        for spec in self.cheats:
            if not 0 <= spec.player_id < self.players:
                raise ValueError(f"cheater {spec.player_id} outside roster")

    # ---- serialisation -----------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        data = {
            "players": self.players,
            "frames": self.frames,
            "seed": self.seed,
            "map_name": self.map_name,
            "npc_fraction": self.npc_fraction,
            "latency": self.latency,
            "loss_rate": self.loss_rate,
            "jitter_ms": self.jitter_ms,
            "loss_model": self.loss_model,
            "servers": self.servers,
            "chaos": self.chaos,
            "failover": self.failover,
            "reliable": self.reliable,
            "hardening": self.hardening,
            "cheats": [spec.to_json() for spec in self.cheats],
        }
        if self.mc is not None:
            data["mc"] = dict(self.mc)
        return data

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "TapeScenario":
        fields = dict(data)
        fields["cheats"] = tuple(
            CheatSpec.from_json(row) for row in fields.get("cheats", ())
        )
        return TapeScenario(**fields)

    # ---- construction ------------------------------------------------------

    def make_map(self) -> GameMap:
        return MAP_FACTORIES[self.map_name]()

    def make_trace(self, game_map: GameMap | None = None) -> GameTrace:
        """Simulate the deathmatch this tape records the protocol run of."""
        trace = generate_trace(
            num_players=self.players,
            num_frames=self.frames,
            seed=self.seed,
            npc_fraction=self.npc_fraction,
            game_map=game_map if game_map is not None else self.make_map(),
        )
        trace.map_name = self.map_name
        return trace

    def _chaos_entry(self) -> "ChaosScenario":
        by_name = {
            entry.name: entry
            for entry in default_scenarios() + byzantine_scenarios()
        }
        if self.chaos not in by_name:
            raise ValueError(
                f"unknown chaos scenario {self.chaos!r} "
                f"(known: {', '.join(sorted(by_name))})"
            )
        return by_name[self.chaos]

    def make_faults(self, roster: list[int]) -> FaultSchedule | None:
        """Materialise the chaos scenario's faults (record time only)."""
        if self.chaos is None:
            return None
        schedule, _ = build_schedule(
            self._chaos_entry(), roster, self.frames, self.seed
        )
        return schedule

    def with_chaos_flags(self) -> "TapeScenario":
        """Adopt the named chaos scenario's failover/reliability/hardening."""
        if self.chaos is None:
            return self
        entry = self._chaos_entry()
        return replace(
            self,
            failover=entry.failover,
            reliable=entry.reliable,
            hardening=entry.hardening,
        )

    def make_latency(self, size: int) -> LatencyMatrix:
        if self.latency == "king":
            return king_like(size, seed=self.seed)
        if self.latency == "peerwise":
            return peerwise_like(size, seed=self.seed)
        return uniform_lan(size)

    def make_config(self) -> WatchmenConfig:
        overrides: dict[str, Any] = {}
        if self.mc is not None:
            overrides = dict(self.mc.get("config", {}))
        overrides.setdefault("byzantine_hardening", self.hardening)
        return WatchmenConfig(
            proxy_failover=self.failover,
            reliable_delivery=self.reliable,
            **overrides,
        )

    def make_session(
        self,
        trace: GameTrace,
        faults: FaultSchedule | None = None,
        game_map: GameMap | None = None,
    ) -> WatchmenSession:
        """The one session-construction path record and verify share.

        ``trace`` is the embedded (or freshly simulated) deathmatch;
        ``faults`` is the *materialised* schedule — pass the tape's copy
        when verifying so a recorded chaos run replays the identical
        fault plan even if scenario-building logic changes later.
        """
        game_map = game_map if game_map is not None else self.make_map()
        config = self.make_config()
        behaviours: dict[int, CheatBehaviour] = {}
        for spec in self.cheats:
            cheat = make_cheat(spec)
            wire_cheat(cheat, spec.player_id, trace, game_map, config)
            behaviours[spec.player_id] = cheat
        session = WatchmenSession(
            trace,
            game_map=game_map,
            config=config,
            latency=self.make_latency(self.players + self.servers),
            network_config=NetworkConfig(
                loss_rate=self.loss_rate,
                jitter_ms=self.jitter_ms,
                loss_model=self.loss_model,
                seed=trace.seed,
            ),
            behaviours=behaviours or None,
            faults=faults,
            servers=self.servers,
        )
        if self.mc is not None:
            # Deferred import: repro.mc drives sessions through this module,
            # so a top-level import would be circular.  The controller must
            # install *here*, before any recorder hooks attach, so record
            # and verify chain the frame hooks in the same order.
            from repro.mc.controller import McController

            McController.from_json(self.mc).install(session)
        return session


#: the committed golden corpus (see ``tests/tapes/`` and ``make tapes``):
#: small, seeded, a few hundred frames — one honest baseline, one chaos
#: run with a materialised fault schedule, one Byzantine equivocation run
#: under hardening, one cheater-heavy match
GOLDEN_PRESETS: dict[str, TapeScenario] = {
    "normal": TapeScenario(players=8, frames=220, seed=42),
    "chaos": TapeScenario(
        players=10, frames=240, seed=7, chaos="proxy_kill_midepoch"
    ).with_chaos_flags(),
    "byzantine": TapeScenario(
        players=10, frames=240, seed=17, chaos="byz_equivocation"
    ).with_chaos_flags(),
    "cheater": TapeScenario(
        players=8,
        frames=220,
        seed=2013,
        cheats=(
            CheatSpec(1, "speed-hack", {"factor": 2.5, "cheat_rate": 0.2, "seed": 11}),
            CheatSpec(3, "fake-kill", {"victim_ids": [0, 2], "cheat_rate": 0.05,
                                       "seed": 12}),
            CheatSpec(5, "guidance-lie", {"cheat_rate": 0.5, "seed": 13}),
            CheatSpec(6, "teleport", {"distance": 500.0, "cheat_rate": 0.03,
                                      "seed": 14}),
        ),
    ),
}
