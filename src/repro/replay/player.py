"""The tape player: verify and replay modes.

**Verify** re-runs the protocol from the tape's own inputs — the embedded
trace, the materialised fault schedule, and the scenario's seeds — through
the exact construction path the recording used, records the fresh run,
and compares the two streams frame by frame.  The first divergent frame
is reported with a structured message-level diff, so a protocol change
that breaks determinism (or byte compatibility) is localised immediately.

**Replay** does no simulation at all: :func:`iter_messages` walks the
recorded stream in order so consumers (analysis, dashboards, decoders)
can be driven from a tape alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.core.wire import WireError, decode_bytes, encode_message
from repro.obs.registry import MetricsRegistry
from repro.replay.recorder import TapeRecorder
from repro.replay.tape import Tape, TapedMessage

__all__ = [
    "Divergence",
    "VerifyResult",
    "verify_tape",
    "compare_tapes",
    "diff_tapes",
    "iter_messages",
]


@dataclass(frozen=True, slots=True)
class Divergence:
    """The first point where two streams disagree."""

    frame: int
    #: index of the first differing message within the frame, or None
    #: when the frame's message *counts* differ
    index: int | None
    kind: str  # "message" | "count" | "frames"
    expected: dict[str, Any] | None
    actual: dict[str, Any] | None

    def describe(self) -> str:
        if self.kind == "frames":
            return (
                f"frame count mismatch: expected "
                f"{(self.expected or {}).get('frames')}, got "
                f"{(self.actual or {}).get('frames')}"
            )
        if self.kind == "count":
            return (
                f"frame {self.frame}: message count mismatch — expected "
                f"{(self.expected or {}).get('messages')}, got "
                f"{(self.actual or {}).get('messages')}"
            )
        return (
            f"frame {self.frame}, message {self.index}: expected "
            f"{self.expected}, got {self.actual}"
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "frame": self.frame,
            "index": self.index,
            "kind": self.kind,
            "expected": self.expected,
            "actual": self.actual,
        }


@dataclass(frozen=True, slots=True)
class VerifyResult:
    """Outcome of one tape verification."""

    clean: bool
    frames: int
    messages: int
    divergence: Divergence | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "clean": self.clean,
            "frames": self.frames,
            "messages": self.messages,
            "divergence": (
                self.divergence.to_json() if self.divergence is not None else None
            ),
        }


def _message_row(message: TapedMessage) -> dict[str, Any]:
    # Diffs are for humans (and JSON reports): decode the binary frame
    # back to the dict envelope; fall back to hex for alien bytes.
    try:
        payload: Any = encode_message(decode_bytes(message.payload))
    except WireError:
        payload = {"undecodable": message.payload.hex()}
    return {
        "src": message.src,
        "dst": message.dst,
        "size_bytes": message.size_bytes,
        "accepted": message.accepted,
        "payload": payload,
    }


def compare_tapes(expected: Tape, actual: Tape) -> VerifyResult:
    """Frame-by-frame comparison; stops at the first divergence.

    Digests are compared first (cheap); only the first mismatching frame
    pays for a message-level diff.
    """
    if expected.num_frames != actual.num_frames:
        return VerifyResult(
            clean=False,
            frames=actual.num_frames,
            messages=actual.num_messages,
            divergence=Divergence(
                frame=min(expected.num_frames, actual.num_frames),
                index=None,
                kind="frames",
                expected={"frames": expected.num_frames},
                actual={"frames": actual.num_frames},
            ),
        )
    for frame_expected, frame_actual in zip(expected.frames, actual.frames):
        if frame_expected.digest == frame_actual.digest:
            continue
        if len(frame_expected.messages) != len(frame_actual.messages):
            return VerifyResult(
                clean=False,
                frames=actual.num_frames,
                messages=actual.num_messages,
                divergence=Divergence(
                    frame=frame_expected.frame,
                    index=None,
                    kind="count",
                    expected={"messages": len(frame_expected.messages)},
                    actual={"messages": len(frame_actual.messages)},
                ),
            )
        for index, (msg_expected, msg_actual) in enumerate(
            zip(frame_expected.messages, frame_actual.messages)
        ):
            if msg_expected != msg_actual:
                return VerifyResult(
                    clean=False,
                    frames=actual.num_frames,
                    messages=actual.num_messages,
                    divergence=Divergence(
                        frame=frame_expected.frame,
                        index=index,
                        kind="message",
                        expected=_message_row(msg_expected),
                        actual=_message_row(msg_actual),
                    ),
                )
        # Digests differed but no row did: the digest chain itself was
        # perturbed upstream (a prior frame) — report the frame head-on.
        return VerifyResult(
            clean=False,
            frames=actual.num_frames,
            messages=actual.num_messages,
            divergence=Divergence(
                frame=frame_expected.frame,
                index=None,
                kind="message",
                expected={"digest": frame_expected.digest},
                actual={"digest": frame_actual.digest},
            ),
        )
    return VerifyResult(
        clean=expected.sha256 == actual.sha256,
        frames=actual.num_frames,
        messages=actual.num_messages,
    )


def verify_tape(
    tape: Tape, registry: MetricsRegistry | None = None
) -> VerifyResult:
    """Re-simulate from the tape's inputs and diff against its stream."""
    session = tape.scenario.make_session(tape.trace, faults=tape.faults)
    recorder = TapeRecorder(
        session, tape.scenario, faults=tape.faults, registry=registry
    )
    recorder.attach()
    session.run()
    fresh = recorder.finalize()
    return compare_tapes(tape, fresh)


def diff_tapes(a: Tape, b: Tape) -> VerifyResult:
    """Structural diff of two already-recorded tapes (no simulation)."""
    return compare_tapes(a, b)


def iter_messages(tape: Tape) -> Iterator[tuple[int, TapedMessage]]:
    """Replay mode: the recorded stream in order, no simulation."""
    for tape_frame in tape.frames:
        for message in tape_frame.messages:
            yield tape_frame.frame, message
