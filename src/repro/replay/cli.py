"""``repro tape`` — record, verify, inspect, and diff match tapes.

Exit codes follow the repo convention the CI replay gate relies on:

* ``0`` — success / verification clean;
* ``1`` — gate failure: a verified tape diverged or its integrity check
  failed (corruption, fingerprint mismatch);
* ``2`` — usage problems: unknown preset, unreadable path, malformed or
  wrong-version tape.

File I/O note: this module writes tapes and divergence reports, so it is
allowlisted for the ``D104`` lint rule next to the format module.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.replay.player import diff_tapes, verify_tape
from repro.replay.recorder import record_session
from repro.replay.scenario import GOLDEN_PRESETS, TapeScenario
from repro.replay.tape import (
    Tape,
    TapeFormatError,
    TapeIntegrityError,
    read_tape,
    write_tape,
)

__all__ = ["add_tape_arguments", "cmd_tape"]

EXIT_OK = 0
EXIT_DIVERGED = 1
EXIT_USAGE = 2


def add_tape_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``tape`` subcommands on the given subparser."""
    sub = parser.add_subparsers(dest="tape_command", required=True)

    record = sub.add_parser(
        "record", help="simulate a scenario and record it to a .tape"
    )
    record.add_argument(
        "--preset",
        choices=sorted(GOLDEN_PRESETS),
        help="use a golden-corpus scenario instead of explicit knobs",
    )
    record.add_argument("--players", type=int, default=8)
    record.add_argument("--frames", type=int, default=220)
    record.add_argument("--seed", type=int, default=42)
    record.add_argument(
        "--map", choices=("longest-yard", "corridors"), default="longest-yard"
    )
    record.add_argument(
        "--latency", choices=("king", "peerwise", "lan"), default="king"
    )
    record.add_argument("--loss", type=float, default=0.01)
    record.add_argument("--servers", type=int, default=0)
    record.add_argument(
        "--chaos",
        metavar="SCENARIO",
        help="materialise this chaos scenario's fault schedule into the run",
    )
    record.add_argument("--out", required=True, help="output .tape path")

    verify = sub.add_parser(
        "verify",
        help="re-simulate each tape from its recorded inputs and diff the "
        "streams; exit 1 on the first divergence or integrity failure",
    )
    verify.add_argument("tapes", nargs="+", help=".tape files to verify")
    verify.add_argument(
        "--diff-out",
        metavar="PATH",
        help="write a JSON divergence report here when verification fails",
    )

    inspect = sub.add_parser(
        "inspect", help="print a tape's header, totals, and message mix"
    )
    inspect.add_argument("tapes", nargs="+", help=".tape files to inspect")

    diff = sub.add_parser(
        "diff", help="structural diff of two tapes (no simulation)"
    )
    diff.add_argument("old", help="expected .tape")
    diff.add_argument("new", help="actual .tape")


def _load(path: str) -> Tape:
    """Read a tape, translating failures to the CLI exit convention."""
    try:
        return read_tape(path)
    except TapeIntegrityError:
        raise
    except (TapeFormatError, OSError) as error:
        raise _Usage(str(error)) from error


class _Usage(Exception):
    """A problem with the invocation, not with the recorded run."""


def _scenario_from_args(args: argparse.Namespace) -> TapeScenario:
    if args.preset is not None:
        return GOLDEN_PRESETS[args.preset]
    scenario = TapeScenario(
        players=args.players,
        frames=args.frames,
        seed=args.seed,
        map_name=args.map,
        latency=args.latency,
        loss_rate=args.loss,
        servers=args.servers,
        chaos=args.chaos,
    )
    return scenario.with_chaos_flags()


def _cmd_record(args: argparse.Namespace) -> int:
    try:
        scenario = _scenario_from_args(args)
    except ValueError as error:
        raise _Usage(str(error)) from error
    tape = record_session(scenario)
    path = write_tape(tape, args.out)
    print(
        f"recorded {scenario.players} players x {tape.num_frames} frames: "
        f"{tape.num_messages} messages, {tape.payload_bytes} payload bytes, "
        f"sha256 {tape.sha256[:12]}… -> {path}"
    )
    return EXIT_OK


def _write_diff(path: str, report: dict[str, Any]) -> None:
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    reports: list[dict[str, Any]] = []
    failed = False
    for tape_path in args.tapes:
        try:
            tape = _load(tape_path)
        except TapeIntegrityError as error:
            print(f"FAIL {tape_path}: {error}", file=sys.stderr)
            reports.append({
                "tape": tape_path,
                "clean": False,
                "error": str(error),
                "frame": error.frame,
            })
            failed = True
            continue
        result = verify_tape(tape)
        reports.append({"tape": tape_path, **result.to_json()})
        if result.clean:
            print(
                f"ok   {tape_path}: {result.frames} frames, "
                f"{result.messages} messages re-simulated byte-identically"
            )
        else:
            failed = True
            detail = (
                result.divergence.describe()
                if result.divergence is not None
                else "fingerprint mismatch"
            )
            print(f"FAIL {tape_path}: {detail}", file=sys.stderr)
    if failed and args.diff_out:
        _write_diff(args.diff_out, {"results": reports})
        print(f"divergence report -> {args.diff_out}", file=sys.stderr)
    return EXIT_DIVERGED if failed else EXIT_OK


def _cmd_inspect(args: argparse.Namespace) -> int:
    for tape_path in args.tapes:
        tape = _load(tape_path)
        scenario = tape.scenario
        print(f"{tape_path}:")
        print(f"  format        repro.tape.v1 (version {tape.version})")
        print(f"  config_hash   {tape.config_hash()}")
        print(f"  sha256        {tape.sha256}")
        print(
            f"  scenario      {scenario.players} players, {scenario.frames} "
            f"frames, seed {scenario.seed}, map {scenario.map_name}, "
            f"latency {scenario.latency}"
        )
        print(
            f"  chaos         {scenario.chaos or '-'} "
            f"(failover={scenario.failover}, reliable={scenario.reliable})"
        )
        cheats = ", ".join(
            f"{spec.player_id}:{spec.kind}" for spec in scenario.cheats
        )
        print(f"  cheats        {cheats or '-'}")
        print(
            f"  stream        {tape.num_frames} frames, {tape.num_messages} "
            f"messages, {tape.payload_bytes} payload bytes"
        )
        for kind, count in tape.messages_by_type().items():
            print(f"    {kind:<24} {count}")
    return EXIT_OK


def _cmd_diff(args: argparse.Namespace) -> int:
    old = _load(args.old)
    new = _load(args.new)
    result = diff_tapes(old, new)
    if result.clean:
        print(f"tapes identical: {result.frames} frames, {result.messages} messages")
        return EXIT_OK
    detail = (
        result.divergence.describe()
        if result.divergence is not None
        else "fingerprint mismatch"
    )
    print(f"tapes differ: {detail}", file=sys.stderr)
    return EXIT_DIVERGED


def cmd_tape(args: argparse.Namespace) -> int:
    handlers = {
        "record": _cmd_record,
        "verify": _cmd_verify,
        "inspect": _cmd_inspect,
        "diff": _cmd_diff,
    }
    try:
        return handlers[args.tape_command](args)
    except _Usage as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except TapeIntegrityError as error:
        print(f"FAIL {error}", file=sys.stderr)
        return EXIT_DIVERGED
