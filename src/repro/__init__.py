"""Watchmen: scalable cheat-resistant support for distributed multi-player
online games — a full reproduction of the ICDCS 2013 paper.

Packages:

- :mod:`repro.core` — the Watchmen protocol (subscriptions, proxies,
  verification, reputation, disclosure accounting);
- :mod:`repro.game` — the Quake-III-class deathmatch simulator and trace
  format that stand in for the paper's enhanced Quake III;
- :mod:`repro.net` — the discrete-event WAN (latency models, loss, NAT,
  bandwidth) that stands in for LAN/PlanetLab runs;
- :mod:`repro.crypto` — verifiable PRNG and lightweight signatures;
- :mod:`repro.cheats` — the Table I cheat-injection framework;
- :mod:`repro.baselines` — optimal client/server and Donnybrook;
- :mod:`repro.analysis` — one experiment harness per figure/table.

Quickstart::

    from repro.game import generate_trace
    from repro.core import WatchmenSession

    trace = generate_trace(num_players=16, num_frames=400, seed=1)
    report = WatchmenSession(trace).run()
    print(report.age_pdf(), report.mean_upload_kbps)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
