"""Text rendering of experiment results (the rows/series the paper reports)."""

from __future__ import annotations

from repro.analysis.cheat_matrix import CheatOutcome
from repro.analysis.churn import ChurnStats
from repro.analysis.detection import DetectionOutcome
from repro.analysis.exposure import ExposureResult
from repro.analysis.scalability import ScalabilityPoint
from repro.analysis.update_age import UpdateAgeResult
from repro.analysis.witnesses import WitnessResult
from repro.core.disclosure import ExposureCategory

__all__ = [
    "render_table",
    "render_exposure",
    "render_witnesses",
    "render_detection",
    "render_update_age",
    "render_scalability",
    "render_cheat_matrix",
    "render_churn",
]


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """A plain fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    separator = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), separator] + [fmt(row) for row in rows])


def render_exposure(results: list[ExposureResult]) -> str:
    """Figure 4 as text: per model/size, mean honest players per category."""
    headers = ["model", "coalition"] + list(ExposureCategory.ORDER)
    rows = []
    for result in sorted(results, key=lambda r: (r.model_name, r.coalition_size)):
        counts = result.counts()
        rows.append(
            [result.model_name, str(result.coalition_size)]
            + [f"{counts[c]:.1f}" for c in ExposureCategory.ORDER]
        )
    return render_table(headers, rows)


def render_witnesses(results: list[WitnessResult]) -> str:
    """Figure 5 as text."""
    headers = ["coalition", "honest proxy", "IS witnesses", "VS witnesses", "total"]
    rows = [
        [
            str(r.coalition_size),
            f"{r.avg_honest_proxies:.2f}",
            f"{r.avg_interest_witnesses:.2f}",
            f"{r.avg_vision_witnesses:.2f}",
            f"{r.total_witnesses:.2f}",
        ]
        for r in results
    ]
    return render_table(headers, rows)


def render_detection(outcomes: list[DetectionOutcome]) -> str:
    """Figure 6 as text."""
    headers = ["verification", "cheat", "success", "threshold", "honest flag rate"]
    rows = [
        [
            o.check,
            o.cheat_name,
            f"{o.success_rate:.0%}",
            f"{o.threshold:.1f}",
            f"{o.honest_flag_rate:.1%}",
        ]
        for o in outcomes
    ]
    return render_table(headers, rows)


def render_update_age(results: list[UpdateAgeResult], max_age: int = 6) -> str:
    """Figure 7 as text: the age PDF per latency set."""
    headers = ["latency set"] + [f"age {a}" for a in range(max_age + 1)] + [
        "stale (≥3)",
        "mean up kbps",
    ]
    rows = []
    for result in results:
        row = [result.latency_name]
        for age in range(max_age + 1):
            row.append(f"{result.pdf.get(age, 0.0):.1%}")
        row.append(f"{result.stale_fraction:.2%}")
        row.append(f"{result.mean_upload_kbps:.0f}")
        rows.append(row)
    return render_table(headers, rows)


def render_scalability(points: list[ScalabilityPoint]) -> str:
    headers = [
        "players",
        "watchmen mean kbps",
        "watchmen max kbps",
        "naive P2P kbps/node",
        "client-server kbps",
    ]
    rows = [
        [
            str(p.num_players),
            f"{p.watchmen_mean_kbps:.0f}",
            f"{p.watchmen_max_kbps:.0f}",
            f"{p.naive_p2p_node_kbps:.0f}",
            f"{p.client_server_kbps:.0f}",
        ]
        for p in points
    ]
    return render_table(headers, rows)


def render_cheat_matrix(outcomes: list[CheatOutcome]) -> str:
    headers = ["cheat", "category", "status", "paper", "evidence"]
    rows = [
        [
            o.cheat_name,
            o.category,
            o.status,
            o.paper_countermeasure[:38],
            o.evidence[:60],
        ]
        for o in outcomes
    ]
    return render_table(headers, rows)


def render_churn(stats: ChurnStats) -> str:
    rows = [
        [
            f"IS turnover after {stats.period} frames",
            f"{stats.turnover_after_period:.0%}",
            "~50% (paper)",
        ],
        [
            f"spells > {stats.long_cap} frames",
            f"{stats.spells_longer_than_cap:.0%}",
            "<10% (paper)",
        ],
        [
            "frame-to-frame IS stability",
            f"{stats.frame_stability:.0%}",
            "~88% (paper)",
        ],
        [
            "IS entries not instantly top-attention",
            f"{stats.slow_attention_centre:.0%}",
            "~83% (paper)",
        ],
    ]
    return render_table(["statistic", "measured", "reference"], rows)
