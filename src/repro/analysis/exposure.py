"""Figure 4: joint information available to coalitions of cheaters.

For each architecture (client/server, Donnybrook, Watchmen) and each
coalition size, average — over frames and over random coalitions — the
number of honest players in each exposure category
(:class:`~repro.core.disclosure.ExposureCategory`).  The paper's headline
numbers, which this harness regenerates:

- Watchmen, coalition of 4 (48 players): minimum information (infrequent
  only) for ~31 % of honest players, partial (DR or frequent) for ~48 %;
- Donnybrook, same coalition: DR-only for ~65 % and DR+frequent for the
  rest; frequent-alone < 1 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    ClientServerModel,
    DisseminationModel,
    DonnybrookModel,
    WatchmenModel,
)
from repro.cheats.collusion import Coalition, sample_coalitions
from repro.core.disclosure import ExposureCategory, ExposureHistogram
from repro.core.proxy import ProxySchedule
from repro.game.gamemap import GameMap
from repro.game.interest import InteractionRecency, InterestConfig
from repro.game.trace import GameTrace

__all__ = ["ExposureResult", "exposure_experiment", "default_models"]


@dataclass(frozen=True)
class ExposureResult:
    """Mean per-category honest-player counts for one (model, size) cell."""

    model_name: str
    coalition_size: int
    histogram: ExposureHistogram

    def counts(self) -> dict[str, float]:
        return dict(self.histogram.counts)

    def proportions(self) -> dict[str, float]:
        return self.histogram.normalized()


def default_models(
    trace: GameTrace,
    game_map: GameMap,
    interest: InterestConfig | None = None,
    proxy_period_frames: int = 40,
    common_seed: bytes = b"watchmen-session",
) -> list[DisseminationModel]:
    """The three Figure 4 architectures over one trace."""
    interest = interest or InterestConfig()
    recency = InteractionRecency()
    for shot in trace.shots:
        recency.record(shot.shooter_id, shot.target_id, shot.frame)
    schedule = ProxySchedule(
        trace.player_ids(),
        common_seed=common_seed,
        proxy_period_frames=proxy_period_frames,
    )
    return [
        ClientServerModel(game_map, pvs_radius=interest.vision_radius),
        DonnybrookModel(interest, recency),
        WatchmenModel(game_map, schedule, interest, recency),
    ]


def exposure_experiment(
    trace: GameTrace,
    game_map: GameMap,
    coalition_sizes: list[int],
    models: list[DisseminationModel] | None = None,
    coalitions_per_size: int = 8,
    frame_stride: int = 20,
    seed: int = 1,
) -> list[ExposureResult]:
    """Run the full Figure 4 sweep; returns one result per (model, size)."""
    if not coalition_sizes:
        raise ValueError("need at least one coalition size")
    models = models or default_models(trace, game_map)
    players = trace.player_ids()
    coalitions: dict[int, list[Coalition]] = {
        size: sample_coalitions(players, size, coalitions_per_size, seed + size)
        for size in coalition_sizes
    }
    sums: dict[tuple[str, int], ExposureHistogram] = {
        (model.name, size): ExposureHistogram.empty()
        for model in models
        for size in coalition_sizes
    }
    samples: dict[tuple[str, int], int] = {key: 0 for key in sums}

    frames = range(0, trace.num_frames, max(1, frame_stride))
    for frame in frames:
        snapshots = trace.frames[frame]
        for model in models:
            model.prepare_frame(frame, snapshots)
            for size in coalition_sizes:
                for coalition in coalitions[size]:
                    histogram = coalition.frame_histogram(model, players)
                    key = (model.name, size)
                    sums[key] = sums[key].merged(histogram)
                    samples[key] += 1

    results = []
    for model in models:
        for size in coalition_sizes:
            key = (model.name, size)
            count = max(1, samples[key])
            results.append(
                ExposureResult(
                    model_name=model.name,
                    coalition_size=size,
                    histogram=sums[key].scaled(1.0 / count),
                )
            )
    return results


def result_matrix(
    results: list[ExposureResult],
) -> dict[str, dict[int, dict[str, float]]]:
    """results → {model: {size: {category: mean count}}} for rendering."""
    matrix: dict[str, dict[int, dict[str, float]]] = {}
    for result in results:
        matrix.setdefault(result.model_name, {})[result.coalition_size] = (
            result.counts()
        )
    return matrix
