"""Figure 6: success rates of the verification mechanisms.

"we set up an experiment where a cheater sends up to 10 % invalid cheat
messages.  We measure the overall success ratio (high confidence detection
by one of the honest players) of different verifications, where false
positives ... are limited to a maximum of 5 %."

Procedure (mirroring the paper's calibration):

1. run an *honest* session and, per verification family, pick the
   detection threshold — over the confidence-weighted score
   rating × confidence, i.e. "high confidence detection" — as the smallest
   value that keeps the honest flag rate ≤ 5 % (the paper configured these
   "manually and through experiments"; we do it from the honest run, which
   is what their reputation system would converge to);
2. run a session with one cheater injecting the family's cheat;
3. success = fraction of ground-truth cheat actions for which at least one
   honest player scored ≥ threshold within a short window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cheats.base import CheatBehaviour
from repro.cheats.state import (
    BogusSubscriptionCheat,
    FakeKillCheat,
    GuidanceLieCheat,
    SpeedHack,
)
from repro.core.config import WatchmenConfig
from repro.core.messages import SUB_INTEREST, SUB_VISION
from repro.core.protocol import SessionReport, WatchmenSession
from repro.core.proxy import ProxySchedule
from repro.core.verification import CheckKind
from repro.game.gamemap import GameMap, eye_position
from repro.game.interest import in_vision_cone
from repro.game.trace import GameTrace
from repro.net.latency import LatencyMatrix

__all__ = [
    "DetectionOutcome",
    "calibrate_thresholds",
    "wire_cheat",
    "detection_experiment",
    "figure6_experiment",
    "FIGURE6_CHEATS",
]

#: Verification families of Figure 6 and the cheat that exercises each.
FIGURE6_CHEATS: dict[str, str] = {
    CheckKind.POSITION: "speed-hack",
    CheckKind.KILL: "fake-kill",
    CheckKind.GUIDANCE: "guidance-lie",
    CheckKind.IS_SUBSCRIPTION: "bogus-is-subscription",
    CheckKind.VS_SUBSCRIPTION: "bogus-vs-subscription",
}


@dataclass(frozen=True)
class DetectionOutcome:
    """Result of one verification-family detection run."""

    check: str
    cheat_name: str
    threshold: float
    cheat_actions: int
    detected_actions: int
    honest_flag_rate: float  # honest-subject flag rate at this threshold

    @property
    def success_rate(self) -> float:
        if self.cheat_actions == 0:
            return 0.0
        return self.detected_actions / self.cheat_actions


def calibrate_thresholds(
    honest_report: SessionReport,
    fp_budget: float = 0.05,
    floor: float = 3.0,
    ceiling: float = 9.5,
) -> dict[str, float]:
    """Per-check thresholds keeping the honest flag rate ≤ ``fp_budget``."""
    if not 0.0 < fp_budget < 1.0:
        raise ValueError("fp_budget must be in (0, 1)")
    thresholds: dict[str, float] = {}
    by_check: dict[str, list[float]] = {}
    for rating in honest_report.ratings:
        by_check.setdefault(rating.check, []).append(rating.score)
    for check in CheckKind.ALL:
        values = sorted(by_check.get(check, []))
        if not values:
            thresholds[check] = floor
            continue
        # Smallest threshold with ≤ fp_budget of honest ratings at/above it.
        budget_index = max(0, int(len(values) * (1.0 - fp_budget)) - 1)
        candidate = values[budget_index] + 0.25
        thresholds[check] = min(ceiling, max(floor, candidate))
    return thresholds


def honest_flag_rate(
    report: SessionReport, check: str, threshold: float, exclude: set[int]
) -> float:
    """Fraction of ratings about honest subjects at/above the threshold."""
    relevant = [
        r
        for r in report.ratings
        if r.check == check and r.subject_id not in exclude
    ]
    if not relevant:
        return 0.0
    flagged = sum(1 for r in relevant if r.score >= threshold)
    return flagged / len(relevant)


def wire_cheat(
    cheat: CheatBehaviour,
    cheater_id: int,
    trace: GameTrace,
    game_map: GameMap,
    config: WatchmenConfig,
) -> CheatBehaviour:
    """Attach the environment hooks some cheats need (proxies, targets)."""
    schedule = ProxySchedule(
        trace.player_ids(),
        common_seed=config.common_seed,
        proxy_period_frames=config.proxy_period_frames,
    )

    def proxy_lookup(frame: int) -> int:
        return schedule.proxy_of(cheater_id, config.epoch_of_frame(frame))

    def invisible_targets(frame: int) -> list[int]:
        frame = min(frame, trace.num_frames - 1)
        snapshots = trace.frames[frame]
        me = snapshots[cheater_id]
        result = []
        for other_id, other in snapshots.items():
            if other_id == cheater_id or not other.alive:
                continue
            visible = in_vision_cone(
                me, other, config.interest
            ) and game_map.line_of_sight(
                eye_position(me.position), eye_position(other.position)
            )
            if not visible:
                result.append(other_id)
        return result

    if hasattr(cheat, "player_id"):
        cheat.player_id = cheater_id
    if hasattr(cheat, "roster") and getattr(cheat, "roster") is None:
        cheat.roster = [p for p in trace.player_ids() if p != cheater_id]
    if hasattr(cheat, "proxy_lookup") and getattr(cheat, "proxy_lookup") is None:
        cheat.proxy_lookup = proxy_lookup
    if (
        hasattr(cheat, "invisible_targets")
        and getattr(cheat, "invisible_targets") is None
    ):
        cheat.invisible_targets = invisible_targets
    return cheat


def make_figure6_cheat(
    check: str, cheater_id: int, players: list[int], cheat_rate: float, seed: int
) -> CheatBehaviour:
    """The cheat behaviour exercising one verification family."""
    victims = [p for p in players if p != cheater_id]
    if check == CheckKind.POSITION:
        return SpeedHack(factor=2.0, cheat_rate=cheat_rate, seed=seed)
    if check == CheckKind.KILL:
        return FakeKillCheat(victims, cheat_rate=cheat_rate, seed=seed)
    if check == CheckKind.GUIDANCE:
        # Guidance flows at 1 Hz — one per 20 updates — so lying on every
        # guidance message still keeps invalid traffic ~5 % of the stream,
        # within the paper's "up to 10 %" budget (and gives the experiment
        # enough events to measure).
        return GuidanceLieCheat(cheat_rate=1.0, seed=seed)
    if check == CheckKind.IS_SUBSCRIPTION:
        return BogusSubscriptionCheat(SUB_INTEREST, cheat_rate=cheat_rate, seed=seed)
    if check == CheckKind.VS_SUBSCRIPTION:
        return BogusSubscriptionCheat(SUB_VISION, cheat_rate=cheat_rate, seed=seed)
    raise ValueError(f"no figure-6 cheat for check {check!r}")


def detection_experiment(
    trace: GameTrace,
    game_map: GameMap,
    check: str,
    cheater_id: int,
    thresholds: dict[str, float],
    config: WatchmenConfig | None = None,
    latency: LatencyMatrix | None = None,
    cheat_rate: float = 0.10,
    detection_window_frames: int = 30,
    seed: int = 11,
) -> DetectionOutcome:
    """Run one verification family's cheater and score detections."""
    config = config or WatchmenConfig()
    cheat = make_figure6_cheat(
        check, cheater_id, trace.player_ids(), cheat_rate, seed
    )
    wire_cheat(cheat, cheater_id, trace, game_map, config)
    session = WatchmenSession(
        trace,
        game_map=game_map,
        config=config,
        latency=latency,
        behaviours={cheater_id: cheat},
    )
    report = session.run()

    threshold = thresholds[check]
    detections = sorted(
        r.frame
        for r in report.ratings
        if r.subject_id == cheater_id
        and r.check == check
        and r.score >= threshold
        and r.verifier_id != cheater_id
    )
    cheat_frames = sorted(cheat.log.cheat_frames)
    detected = 0
    for frame in cheat_frames:
        window_end = frame + detection_window_frames
        if any(frame <= d <= window_end for d in detections):
            detected += 1
    return DetectionOutcome(
        check=check,
        cheat_name=cheat.name,
        threshold=threshold,
        cheat_actions=len(cheat_frames),
        detected_actions=detected,
        honest_flag_rate=honest_flag_rate(report, check, threshold, {cheater_id}),
    )


def figure6_experiment(
    trace: GameTrace,
    game_map: GameMap,
    config: WatchmenConfig | None = None,
    latency: LatencyMatrix | None = None,
    cheater_id: int | None = None,
    cheat_rate: float = 0.10,
    seed: int = 11,
) -> list[DetectionOutcome]:
    """The full Figure 6 sweep: calibrate, then run all five families."""
    config = config or WatchmenConfig()
    if cheater_id is None:
        cheater_id = trace.player_ids()[0]
    honest = WatchmenSession(
        trace, game_map=game_map, config=config, latency=latency
    ).run()
    # Calibrate below the 5 % budget: the operating flag rate is measured
    # on a *different* (cheat-bearing) run, so leave margin for variance.
    thresholds = calibrate_thresholds(honest, fp_budget=0.03)
    outcomes = []
    for check in (
        CheckKind.POSITION,
        CheckKind.KILL,
        CheckKind.GUIDANCE,
        CheckKind.IS_SUBSCRIPTION,
        CheckKind.VS_SUBSCRIPTION,
    ):
        outcomes.append(
            detection_experiment(
                trace,
                game_map,
                check,
                cheater_id,
                thresholds,
                config=config,
                latency=latency,
                cheat_rate=cheat_rate,
                seed=seed,
            )
        )
    return outcomes
