"""Interest-set churn statistics (the in-text numbers of Section VI).

The paper's subscriber-retention design rests on measured IS dynamics:

- "nearly 50 % of the players in the IS change after 40 frames, less than
  10 % last more than 300 frames" (membership spells);
- "in a frame, on average 88 % of the players in IS were already in IS in
  the previous frame" (frame-to-frame stability);
- "it normally (~83 % in our analysis) takes at least one or two frames to
  become the center of attention after entering the IS".

:func:`churn_statistics` recomputes all three from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.game.gamemap import GameMap
from repro.game.interest import (
    InteractionRecency,
    InterestConfig,
    attention_score,
    compute_all_sets,
)
from repro.game.trace import GameTrace

__all__ = ["ChurnStats", "churn_statistics", "interest_sets_over_trace"]


@dataclass(frozen=True)
class ChurnStats:
    """IS dynamics over one trace."""

    turnover_after_period: float  # fraction of IS changed after `period`
    spells_longer_than_cap: float  # fraction of spells > `long_cap` frames
    frame_stability: float  # mean fraction of IS already in previous IS
    slow_attention_centre: float  # fraction taking ≥ min_lag frames to top-1
    period: int
    long_cap: int
    mean_spell_frames: float


def interest_sets_over_trace(
    trace: GameTrace,
    game_map: GameMap,
    config: InterestConfig | None = None,
    recency: InteractionRecency | None = None,
    stride: int = 1,
) -> dict[int, list[frozenset[int]]]:
    """Per-player IS membership per sampled frame (ground-truth views)."""
    config = config or InterestConfig()
    if recency is None:
        recency = InteractionRecency()
        for shot in trace.shots:
            recency.record(shot.shooter_id, shot.target_id, shot.frame)
    player_ids = trace.player_ids()
    result: dict[int, list[frozenset[int]]] = {pid: [] for pid in player_ids}
    for frame in range(0, trace.num_frames, stride):
        snapshots = trace.frames[frame]
        # Batched: per-frame LOS cache + hoisted per-observer state, with
        # output identical to per-observer compute_sets calls.
        all_sets = compute_all_sets(
            snapshots, game_map, frame, config, recency, observers=player_ids
        )
        for player_id in player_ids:
            result[player_id].append(all_sets[player_id].interest)
    return result


def churn_statistics(
    trace: GameTrace,
    game_map: GameMap,
    config: InterestConfig | None = None,
    period: int = 40,
    long_cap: int = 300,
    attention_lag_min: int = 1,
) -> ChurnStats:
    """Recompute the three in-text IS-churn statistics from a trace."""
    config = config or InterestConfig()
    recency = InteractionRecency()
    for shot in trace.shots:
        recency.record(shot.shooter_id, shot.target_id, shot.frame)
    per_player = interest_sets_over_trace(trace, game_map, config, recency)

    # -- turnover after `period` frames ------------------------------------
    turnover_samples: list[float] = []
    for sets in per_player.values():
        for start in range(0, len(sets) - period, period):
            before, after = sets[start], sets[start + period]
            if not before:
                continue
            changed = len(before - after)
            turnover_samples.append(changed / len(before))
    turnover = (
        sum(turnover_samples) / len(turnover_samples) if turnover_samples else 0.0
    )

    # -- membership spell lengths ------------------------------------------
    spells: list[int] = []
    for sets in per_player.values():
        active: dict[int, int] = {}  # member -> spell start frame index
        for index, members in enumerate(sets):
            for member in members:
                active.setdefault(member, index)
            for member in list(active):
                if member not in members:
                    spells.append(index - active.pop(member))
        for member, start in active.items():
            spells.append(len(sets) - start)
    long_spells = sum(1 for s in spells if s > long_cap)
    spells_longer = long_spells / len(spells) if spells else 0.0
    mean_spell = sum(spells) / len(spells) if spells else 0.0

    # -- frame-to-frame stability --------------------------------------------
    stability_samples: list[float] = []
    for sets in per_player.values():
        for previous, current in zip(sets, sets[1:]):
            if not current:
                continue
            stability_samples.append(len(current & previous) / len(current))
    stability = (
        sum(stability_samples) / len(stability_samples)
        if stability_samples
        else 0.0
    )

    # -- lag from IS entry to becoming the attention centre -------------------
    slow, entries = _attention_centre_lags(
        trace, game_map, config, recency, per_player, attention_lag_min
    )
    slow_fraction = slow / entries if entries else 0.0

    return ChurnStats(
        turnover_after_period=turnover,
        spells_longer_than_cap=spells_longer,
        frame_stability=stability,
        slow_attention_centre=slow_fraction,
        period=period,
        long_cap=long_cap,
        mean_spell_frames=mean_spell,
    )


def _attention_centre_lags(
    trace: GameTrace,
    game_map: GameMap,
    config: InterestConfig,
    recency: InteractionRecency,
    per_player: dict[int, list[frozenset[int]]],
    min_lag: int,
) -> tuple[int, int]:
    """Count IS entries that took ≥ ``min_lag`` frames to reach top-1."""
    slow = 0
    entries = 0
    for player_id, sets in per_player.items():
        for index in range(1, len(sets)):
            newcomers = sets[index] - sets[index - 1]
            for member in newcomers:
                entries += 1
                became_top_immediately = False
                frame = index
                if frame < trace.num_frames:
                    snapshots = trace.frames[frame]
                    observer = snapshots[player_id]
                    scores = {
                        oid: attention_score(
                            observer, snapshots[oid], frame, config, recency
                        )
                        for oid in sets[index]
                    }
                    top = max(scores, key=scores.get) if scores else None
                    became_top_immediately = top == member
                if not became_top_immediately:
                    slow += 1
                del frame
        del player_id
    # ``min_lag`` kept for interface clarity: entry at lag 0 == immediate.
    del min_lag
    return slow, entries
