"""Figure 5: information about cheaters available to honest witnesses.

"we measure, for a given cheater, the average number of honest players
that: act as proxy for him, have him in their IS, or have him in their
VS" — plus the in-text honest-proxy probability ("even when a player
colludes with 3 other cheaters (out of 48 players), he is assigned an
honest proxy in 94 % of the cases (1 − 3/47) and 10 players on average
witness his actions").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.watchmen_model import WatchmenModel
from repro.cheats.collusion import sample_coalitions
from repro.core.proxy import ProxySchedule
from repro.game.gamemap import GameMap
from repro.game.interest import InteractionRecency, InterestConfig
from repro.game.trace import GameTrace

__all__ = ["WitnessResult", "witness_experiment", "honest_proxy_probability"]


@dataclass(frozen=True)
class WitnessResult:
    """Average honest-witness counts per cheater for one coalition size."""

    coalition_size: int
    avg_honest_proxies: float  # 0..1 (one proxy per player)
    avg_interest_witnesses: float  # honest players with the cheater in IS
    avg_vision_witnesses: float  # honest players with the cheater in VS

    @property
    def total_witnesses(self) -> float:
        return (
            self.avg_honest_proxies
            + self.avg_interest_witnesses
            + self.avg_vision_witnesses
        )


def honest_proxy_probability(num_players: int, coalition_size: int) -> float:
    """Analytic P[cheater gets an honest proxy]: 1 − (k−1)/(n−1)."""
    if num_players < 2:
        raise ValueError("need at least two players")
    if not 1 <= coalition_size <= num_players:
        raise ValueError("coalition size out of range")
    return 1.0 - (coalition_size - 1) / (num_players - 1)


def witness_experiment(
    trace: GameTrace,
    game_map: GameMap,
    coalition_sizes: list[int],
    interest: InterestConfig | None = None,
    coalitions_per_size: int = 8,
    frame_stride: int = 20,
    proxy_period_frames: int = 40,
    seed: int = 2,
) -> list[WitnessResult]:
    """Measure witness availability per coalition size over a trace."""
    interest = interest or InterestConfig()
    players = trace.player_ids()
    recency = InteractionRecency()
    for shot in trace.shots:
        recency.record(shot.shooter_id, shot.target_id, shot.frame)
    schedule = ProxySchedule(
        players, proxy_period_frames=proxy_period_frames
    )
    model = WatchmenModel(game_map, schedule, interest, recency)

    results = []
    for size in coalition_sizes:
        coalitions = sample_coalitions(players, size, coalitions_per_size, seed + size)
        proxy_sum = 0.0
        interest_sum = 0.0
        vision_sum = 0.0
        samples = 0
        for frame in range(0, trace.num_frames, max(1, frame_stride)):
            snapshots = trace.frames[frame]
            model.prepare_frame(frame, snapshots)
            for coalition in coalitions:
                honest = [p for p in players if p not in coalition.members]
                for cheater in coalition.members:
                    proxy = model.proxy_of(cheater)
                    proxy_sum += 1.0 if proxy not in coalition.members else 0.0
                    interest_count = 0
                    vision_count = 0
                    for observer in honest:
                        sets = model.sets_of(observer)
                        if cheater in sets.interest:
                            interest_count += 1
                        elif cheater in sets.vision:
                            vision_count += 1
                    interest_sum += interest_count
                    vision_sum += vision_count
                    samples += 1
        samples = max(1, samples)
        results.append(
            WitnessResult(
                coalition_size=size,
                avg_honest_proxies=proxy_sum / samples,
                avg_interest_witnesses=interest_sum / samples,
                avg_vision_witnesses=vision_sum / samples,
            )
        )
    return results
