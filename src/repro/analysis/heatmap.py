"""Figure 1: presence heatmaps of player positions.

"Heatmap of player positions in a Quake III deathmatch game in the q3dm17
map.  Darker colors show higher presence in a region ... color intensity
is normalized logarithmic values of presence in each region."  Human
players (1a) show diffuse hotspots around items; NPCs (1b) burn
ridge-like trails along their predetermined paths.

:func:`presence_heatmap` grid-bins a trace's positions and applies the
same log normalisation; :func:`hotspot_concentration` condenses the map
into the scalar the experiment actually asserts — presence is strongly
concentrated ("exponential presence in some areas"), which is what breaks
fixed-radius AOI filtering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.game.gamemap import GameMap
from repro.game.trace import GameTrace

__all__ = ["Heatmap", "presence_heatmap", "hotspot_concentration", "render_ascii"]


@dataclass(frozen=True)
class Heatmap:
    """A grid of normalised log-presence values in [0, 1]."""

    cells: tuple[tuple[float, ...], ...]  # rows (y) of columns (x)
    raw_counts: tuple[tuple[int, ...], ...]
    cell_size: float

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.cells), len(self.cells[0]) if self.cells else 0)

    def total_samples(self) -> int:
        return sum(sum(row) for row in self.raw_counts)


def presence_heatmap(
    trace: GameTrace,
    game_map: GameMap,
    grid: int = 24,
    player_ids: list[int] | None = None,
) -> Heatmap:
    """Bin all (selected) players' positions into a grid×grid heatmap."""
    if grid < 2:
        raise ValueError("grid must be at least 2")
    selected = set(player_ids) if player_ids is not None else None
    min_x, max_x = game_map.bounds_min.x, game_map.bounds_max.x
    min_y, max_y = game_map.bounds_min.y, game_map.bounds_max.y
    width = max_x - min_x
    height = max_y - min_y
    counts = [[0] * grid for _ in range(grid)]
    for snapshots in trace.frames:
        for player_id, snap in snapshots.items():
            if selected is not None and player_id not in selected:
                continue
            if not snap.alive:
                continue
            col = min(grid - 1, max(0, int((snap.position.x - min_x) / width * grid)))
            row = min(grid - 1, max(0, int((snap.position.y - min_y) / height * grid)))
            counts[row][col] += 1

    # Normalised log intensity, exactly the paper's colour scale.
    max_log = max(
        (math.log1p(c) for row in counts for c in row), default=1.0
    )
    if max_log <= 0:
        max_log = 1.0
    cells = tuple(
        tuple(math.log1p(c) / max_log for c in row) for row in counts
    )
    cell = width / grid
    return Heatmap(
        cells=cells,
        raw_counts=tuple(tuple(row) for row in counts),
        cell_size=cell,
    )


def hotspot_concentration(heatmap: Heatmap, top_fraction: float = 0.10) -> float:
    """Fraction of all presence held by the top ``top_fraction`` of cells.

    A uniform distribution gives ≈ ``top_fraction``; the paper's maps give
    several times that ("players show an exponential presence in some
    areas of the game ... rendering AOI filtering unusable").
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    flat = sorted(
        (c for row in heatmap.raw_counts for c in row), reverse=True
    )
    total = sum(flat)
    if total == 0:
        return 0.0
    top_cells = max(1, int(len(flat) * top_fraction))
    return sum(flat[:top_cells]) / total


def render_ascii(heatmap: Heatmap) -> str:
    """A terminal rendering (darker character = higher presence)."""
    shades = " .:-=+*#%@"
    lines = []
    for row in heatmap.cells:
        line = "".join(
            shades[min(len(shades) - 1, int(value * (len(shades) - 1)))]
            for value in row
        )
        lines.append(line)
    return "\n".join(lines)
