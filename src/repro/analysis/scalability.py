"""Bandwidth scalability (Section II/VI background numbers).

Three curves versus player count:

- **client/server**: the server uploads ≈ 120·n kbps (the documented
  Quake III average) — fine for a datacenter, fatal for a player-hosted
  server;
- **naive P2P**: every player sends every update to every other player —
  per-node upload grows linearly in n (total quadratic);
- **Watchmen**: per-node upload measured from real sessions — bounded by
  the interest model (IS capped at 5) plus 1 Hz guidance/position traffic
  and proxy forwarding, so it grows far slower than naive P2P.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import WatchmenConfig
from repro.core.protocol import WatchmenSession
from repro.game.gamemap import GameMap, make_longest_yard
from repro.game.simulator import generate_trace
from repro.net.latency import king_like

__all__ = [
    "ScalabilityPoint",
    "scalability_experiment",
    "client_server_kbps",
    "naive_p2p_node_kbps",
]

CENTRALIZED_KBPS_PER_PLAYER = 120.0  # "12n kbps" per [5] — 120·n in kbps


def client_server_kbps(num_players: int) -> float:
    """Server upload for a centralized deployment (≈120·n kbps)."""
    if num_players < 0:
        raise ValueError("num_players must be non-negative")
    return CENTRALIZED_KBPS_PER_PLAYER * num_players


def naive_p2p_node_kbps(
    num_players: int, config: WatchmenConfig | None = None
) -> float:
    """Per-node upload if every player streamed state to everyone."""
    config = config or WatchmenConfig()
    updates_per_second = 1.0 / (
        config.frame_seconds * config.frequent_interval_frames
    )
    bits_per_update = config.state_update_bits + config.header_bits
    return (num_players - 1) * updates_per_second * bits_per_update / 1000.0


@dataclass(frozen=True)
class ScalabilityPoint:
    """Measured and analytic bandwidth for one player count."""

    num_players: int
    watchmen_mean_kbps: float
    watchmen_max_kbps: float
    naive_p2p_node_kbps: float
    client_server_kbps: float


def scalability_experiment(
    player_counts: list[int],
    num_frames: int = 200,
    seed: int = 5,
    game_map: GameMap | None = None,
    config: WatchmenConfig | None = None,
) -> list[ScalabilityPoint]:
    """Measure Watchmen per-node upload across player counts."""
    if not player_counts:
        raise ValueError("need at least one player count")
    game_map = game_map or make_longest_yard()
    config = config or WatchmenConfig()
    points = []
    for count in player_counts:
        trace = generate_trace(
            num_players=count,
            num_frames=num_frames,
            seed=seed,
            game_map=game_map,
        )
        session = WatchmenSession(
            trace,
            game_map=game_map,
            config=config,
            latency=king_like(count, seed=seed),
        )
        report = session.run()
        points.append(
            ScalabilityPoint(
                num_players=count,
                watchmen_mean_kbps=report.mean_upload_kbps,
                watchmen_max_kbps=report.max_upload_kbps,
                naive_p2p_node_kbps=naive_p2p_node_kbps(count, config),
                client_server_kbps=client_server_kbps(count),
            )
        )
    return points
